"""Cross-protocol resilience benchmark (paper sections 2.2 / 6).

The paper's central fault-model claim is quantitative: crash protocols
need ``n = 2f + 1`` replicas while Byzantine protocols need
``n = 3f + 1``, so at equal cluster size the CFT quorum survives more
benign faults. This benchmark drives all six consensus protocols
through three deterministic fault regimes (crashes up to and beyond the
tolerated ``f``, a majority/minority partition window, and a message
loss window injected through the ``FaultPlan`` chaos engine) and
records time-to-recover and committed throughput for each.

Expected shape, asserted below and recorded in EXPERIMENTS.md:

* every protocol recovers from ``k <= crash_tolerance`` crashes and
  stalls — safely, never inconsistently — beyond it;
* at ``k = 3`` crashes (``N = 7``) the CFT protocols keep committing
  while every BFT protocol stalls: the ``2f + 1`` vs ``3f + 1`` gap;
* during a 4/3 partition the majority side is a CFT quorum but not a
  BFT one — Paxos/Raft decide through the window, the BFT protocols
  decide nothing until the heal, and everyone converges afterwards;
* message loss degrades committed throughput but never wedges a
  protocol once the window closes.

Writes ``BENCH_resilience.json`` at the repo root.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_resilience.py
"""

import json
from pathlib import Path

from repro.bench import print_table
from repro.bench.resilience import (
    TXS_BEFORE,
    TXS_DURING,
    resilience_cases,
    sweep_resilience,
)

TOTAL = TXS_BEFORE + TXS_DURING


def _check_shape(rows):
    """Assert the paper's qualitative predictions hold for every row."""
    by_case = {row["case"]: row for row in rows}
    protocols = sorted({row["protocol"] for row in rows})

    for row in rows:
        # Safety is unconditional: no fault regime here includes
        # equivocation, so no protocol may ever commit inconsistently.
        assert row["safety_ok"], f"safety violated in {row['case']}"

    for row in rows:
        if row["regime"] != "crash":
            continue
        if row["intensity"] <= row["crash_tolerance"]:
            assert row["recovered"], (
                f"{row['case']}: must recover from <= f crashes"
            )
            assert row["committed"] == TOTAL
        else:
            assert not row["recovered"], (
                f"{row['case']}: quorum is gone, progress is impossible"
            )
            # A stalled protocol holds what it had — it never rolls back.
            assert row["committed"] == TXS_BEFORE
            assert row["stall_reason"], "watchdog must name the stall"

    # The 2f+1 vs 3f+1 gap, measured at the largest crash count.
    for protocol in protocols:
        row = by_case[f"{protocol}/crash/3"]
        expect = row["fault_model"] == "crash"
        assert row["recovered"] == expect, (
            f"{row['case']}: CFT should survive 3 crashes at N=7, "
            f"BFT should not"
        )

    for row in rows:
        if row["regime"] != "partition":
            continue
        assert row["recovered"], f"{row['case']}: must converge after heal"
        assert row["committed"] == TOTAL
        if row["fault_model"] == "crash":
            assert row["decided_during_fault"] > 0, (
                f"{row['case']}: the 4-node majority is a CFT quorum"
            )
        else:
            assert row["decided_during_fault"] == 0, (
                f"{row['case']}: 4 of 7 is below the BFT quorum of 5"
            )

    for protocol in protocols:
        baseline = by_case[f"{protocol}/loss/0.0"]
        for row in rows:
            if row["protocol"] != protocol or row["regime"] != "loss":
                continue
            assert row["recovered"], (
                f"{row['case']}: retry machinery must recover once the "
                f"loss window closes"
            )
            assert row["committed"] == TOTAL
            if row["intensity"] > 0:
                assert row["throughput"] <= baseline["throughput"], (
                    f"{row['case']}: loss cannot improve throughput"
                )


def run_resilience(write_json: bool = True):
    rows = sweep_resilience(resilience_cases())
    _check_shape(rows)
    report = {
        "experiment": "cross-protocol resilience under injected faults",
        "cluster_size": 7,
        "workload": {"before_fault": TXS_BEFORE, "during_fault": TXS_DURING},
        "rows": rows,
    }
    if write_json:
        path = Path(__file__).resolve().parent.parent / "BENCH_resilience.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_resilience_shapes(run_once):
    report = run_once(run_resilience)
    display = [
        {
            "case": row["case"],
            "model": row["fault_model"],
            "recovered": row["recovered"],
            "t_recover": row["time_to_recover"] or "-",
            "committed": row["committed"],
            "during": row["decided_during_fault"],
            "tput": row["throughput"],
            "safe": row["safety_ok"],
        }
        for row in report["rows"]
    ]
    print_table(display, title="resilience: crash / partition / loss regimes")
    assert len(report["rows"]) == len(resilience_cases())


if __name__ == "__main__":
    report = run_resilience()
    print(json.dumps(report, indent=2))
