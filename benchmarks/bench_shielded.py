"""Experiment E14 — shielded transfers: anonymity set vs verification cost.

Paper anchor (section 2.3.2): privacy-enhanced cryptocurrencies (Zcash)
need nodes to "verify the transaction without knowing the sender,
receiver or transaction amount" — and the Discussion's general point
that cryptographic verifiability carries "considerable overhead".

Measured: LSAG ring-signature signing/verification cost and proof size
as the ring (the sender's anonymity set) grows — the privacy/overhead
dial, linear in the ring size, that ring-based designs expose.
"""

import time

from repro.bench import print_table
from repro.verifiability.shielded import ShieldedPool

RING_SIZES = [2, 4, 8, 16, 32]


def run_ring_sweep():
    rows = []
    for ring_size in RING_SIZES:
        pool = ShieldedPool(ring_size=ring_size)
        owners = []
        for _ in range(ring_size + 4):
            secret, public = pool.keygen()
            pool.deposit(public)
            owners.append(secret)
        _, receiver = pool.keygen()
        start = time.perf_counter()
        spend = pool.build_spend(0, owners[0], receiver)
        signed = time.perf_counter()
        assert pool.verify_spend(spend) is None
        verified = time.perf_counter()
        rows.append(
            {
                "ring_size": ring_size,
                "sign_ms": round(1000 * (signed - start), 2),
                "verify_ms": round(1000 * (verified - signed), 2),
                "signature_elements": 2 + ring_size,  # c0 + s_i + key image
            }
        )
    return rows


def test_e14_anonymity_set_vs_cost(run_once):
    rows = run_once(run_ring_sweep)
    print_table(rows, title="E14: LSAG ring size vs sign/verify cost")
    verify = [r["verify_ms"] for r in rows]
    # Cost is linear in the anonymity set: 32-ring costs an order of
    # magnitude more than 2-ring but buys 16x the sender privacy.
    assert verify == sorted(verify)
    assert verify[-1] > 5 * verify[0]


def test_e14b_double_spend_caught_regardless_of_ring(run_once):
    def run():
        rows = []
        for ring_size in (2, 8):
            pool = ShieldedPool(ring_size=ring_size)
            owners = []
            for _ in range(ring_size + 4):
                secret, public = pool.keygen()
                pool.deposit(public)
                owners.append(secret)
            _, receiver = pool.keygen()
            first = pool.build_spend(1, owners[1], receiver)
            pool.apply_spend(first)
            second = pool.build_spend(1, owners[1], receiver)
            rows.append(
                {
                    "ring_size": ring_size,
                    "second_spend_verdict": pool.verify_spend(second),
                }
            )
        return rows

    rows = run_once(run)
    print_table(rows, title="E14b: double-spend linkage across rings")
    assert all(r["second_spend_verdict"] == "double_spend" for r in rows)
