"""Experiment E23 — larger-than-RAM state: the paged read path gate.

Three grids over :mod:`repro.storage.paged`:

* **Equivalence grid** — a synthetic multi-run state (overwrites and
  tombstones across runs, like a life of spills) opened both ways:
  fully materialized (``SnapshotStore.load_state``, the oracle) and
  paged (``PagedStateStore``). Uniform and Zipf probe mixes; every
  probed key must return **byte-identical** canonical JSON (value and
  MVCC version) through both paths, on states well past the cache
  budget.
* **Cache sweep** — the same Zipf/uniform probe sequences against
  ascending block-cache budgets. Gate: hit rate strictly improving
  with budget on both mixes, resident bytes never exceeding the
  budget, and the budget actually binding (evictions happen below the
  largest cache).
* **Recovery grid** — a real chain committed on top of synthetic bulk
  state, power-failed, recovered both ways while the bulk grows 10x.
  Gate: paged recovery replays exactly the WAL tail at every size, its
  decode work (cache misses) stays bounded by a constant independent
  of state size, and at the largest size the paged restart is
  wall-clock faster than the materialized one (which must rebuild the
  whole state). Wall times are reported but only that one robust
  comparison is gated — the deterministic decode counters carry the
  O(WAL tail) claim.

Same-seed determinism: the equivalence grid is computed twice and the
wall-free fingerprints must match byte-for-byte.

``--smoke`` runs reduced sizes of every gate — the CI guard.
Run standalone::

    PYTHONPATH=src python benchmarks/bench_state_paging.py [--smoke]
"""

import json
import random
import sys
import time
from pathlib import Path

from repro.bench import print_table
from repro.execution.contracts import standard_registry
from repro.execution.serial import execute_block_serially
from repro.ledger.store import (
    STORE_COUNTERS,
    StateStore,
    Version,
    reset_store_counters,
)
from repro.storage import (
    BlockCache,
    DurableLedger,
    MemoryBackend,
    PagedStateStore,
    SnapshotStore,
    SpillBuffer,
    build_canonical_chain,
    state_root,
)
from repro.storage.codec import entry_to_row
from repro.storage.snapshots import RunWriter, run_name
from repro.workloads.openloop import ScalableZipfSampler

KEYS = 40_000
PROBES = 4_000
RUNS = 4
ZIPF_THETA = 0.9
CACHE_BUDGETS = [32 * 1024, 128 * 1024, 512 * 1024]
RECOVERY_BULK = [5_000, 50_000]  # 10x growth
#: 27 blocks at 2 txs each: snapshot_interval=4 leaves a 3-record WAL
#: tail, so the replay gate is never vacuous.
RECOVERY_TXS = 54

SMOKE_KEYS = 4_000
SMOKE_PROBES = 800
SMOKE_CACHES = [8 * 1024, 32 * 1024, 128 * 1024]
SMOKE_BULK = [1_000, 10_000]

#: Paged recovery + WAL replay must never decode more blocks than this,
#: whatever the snapshot size — the deterministic O(WAL tail) gate.
RECOVERY_DECODE_CAP = 64

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_state_paging.json"


# -- synthetic multi-run states ------------------------------------------------


def build_run_set(backend, keys: int, runs: int, seed: int) -> list[dict]:
    """A believable spill history: run 1 writes everything; later runs
    overwrite slices and delete a few keys (tombstones that must mask)."""
    rng = random.Random(seed)
    entries = []
    writer = RunWriter(backend, run_name(1), keys)
    for i in range(keys):
        writer.add(entry_to_row(f"key{i:07d}", f"v1-{i}", Version(1, i)))
    entries.append(writer.finish())
    for run_id in range(2, runs + 1):
        touched = sorted(
            rng.sample(range(keys), max(1, keys // (runs * 4)))
        )
        writer = RunWriter(backend, run_name(run_id), len(touched))
        for index, i in enumerate(touched):
            if rng.random() < 0.1:
                row = entry_to_row(f"key{i:07d}", None, Version(-1, -1))
            else:
                row = entry_to_row(
                    f"key{i:07d}", f"v{run_id}-{i}", Version(run_id, index)
                )
            writer.add(row)
        entries.append(writer.finish())
    return entries


def probe_keys(keys: int, probes: int, theta: float, seed: int) -> list[str]:
    sampler = ScalableZipfSampler(keys, theta, random.Random(seed))
    return [f"key{sampler.sample():07d}" for _ in range(probes)]


def entry_bytes(store, key: str) -> str:
    """Canonical JSON of one lookup — the byte-for-byte comparison unit."""
    entry = store.get_versioned(key)
    return json.dumps(
        [entry.value, entry.version.height, entry.version.tx_index],
        sort_keys=True, separators=(",", ":"),
    )


# -- equivalence grid ----------------------------------------------------------


def run_equivalence_cell(
    mix: str, theta: float, keys: int, probes: int, seed: int = 29
) -> dict:
    backend = MemoryBackend()
    entries = build_run_set(backend, keys, RUNS, seed)
    manifest = {"runs": entries, "next_run_id": RUNS + 1}
    oracle = SnapshotStore(backend).load_state(manifest)
    cache = BlockCache(CACHE_BUDGETS[0])  # smallest budget: max paging
    paged = PagedStateStore(backend, entries, cache)
    reset_store_counters()
    sequence = probe_keys(keys, probes, theta, seed + 1)
    mismatches = sum(
        entry_bytes(paged, key) != entry_bytes(oracle, key)
        for key in sequence
    )
    # Absent keys and tombstoned keys must agree too.
    tomb_agree = all(
        entry_bytes(paged, key) == entry_bytes(oracle, key)
        for key in [f"key{keys + i:07d}" for i in range(64)]
    )
    return {
        "mix": mix,
        "theta": theta,
        "keys": keys,
        "probes": probes,
        "state_bytes": sum(e["bytes"] for e in entries),
        "cache_bytes": cache.budget_bytes,
        "byte_mismatches": mismatches,
        "absent_keys_agree": tomb_agree,
        "filter_skips": STORE_COUNTERS["filter_skips"],
        "cache_evictions": STORE_COUNTERS["block_cache_evictions"],
        "oracle_len_matches": len(paged) == len(oracle),
    }


def run_equivalence_grid(keys: int = KEYS, probes: int = PROBES) -> list[dict]:
    return [
        run_equivalence_cell("uniform", 0.0, keys, probes),
        run_equivalence_cell("zipf", ZIPF_THETA, keys, probes),
    ]


def check_equivalence_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"equivalence[{row['mix']}]"
        if row["byte_mismatches"]:
            failures.append(
                f"{where}: {row['byte_mismatches']} probes returned "
                "different bytes through the paged path"
            )
        if not row["absent_keys_agree"]:
            failures.append(f"{where}: absent-key probes disagree")
        if not row["oracle_len_matches"]:
            failures.append(f"{where}: live-key counts diverge")
        if row["state_bytes"] <= row["cache_bytes"]:
            failures.append(
                f"{where}: state ({row['state_bytes']}B) does not exceed "
                f"the cache budget ({row['cache_bytes']}B) — not paging"
            )
        if row["cache_evictions"] == 0:
            failures.append(f"{where}: cache never evicted — not paging")
    return failures


# -- cache sweep ---------------------------------------------------------------


def run_cache_cell(
    mix: str, theta: float, budget: int, keys: int, probes: int,
    seed: int = 31,
) -> dict:
    backend = MemoryBackend()
    entries = build_run_set(backend, keys, RUNS, seed)
    paged = PagedStateStore(backend, entries, BlockCache(budget))
    sequence = probe_keys(keys, probes, theta, seed + 2)
    reset_store_counters()
    for key in sequence:
        paged.get(key)
    hits = STORE_COUNTERS["block_cache_hits"]
    misses = STORE_COUNTERS["block_cache_misses"]
    return {
        "mix": mix,
        "cache_bytes": budget,
        "probes": probes,
        "hits": hits,
        "misses": misses,
        "hit_rate": round(hits / (hits + misses), 4) if hits + misses else 0.0,
        "evictions": STORE_COUNTERS["block_cache_evictions"],
        "resident_bytes": paged.cache.resident_bytes,
        "within_budget": paged.cache.resident_bytes <= budget,
    }


def run_cache_grid(
    keys: int = KEYS, probes: int = PROBES, budgets=None
) -> list[dict]:
    rows = []
    for mix, theta in (("uniform", 0.0), ("zipf", ZIPF_THETA)):
        for budget in budgets or CACHE_BUDGETS:
            rows.append(run_cache_cell(mix, theta, budget, keys, probes))
    return rows


def check_cache_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        if not row["within_budget"]:
            failures.append(
                f"cache[{row['mix']}@{row['cache_bytes']}]: resident "
                f"{row['resident_bytes']}B exceeds the byte budget"
            )
    for mix in ("uniform", "zipf"):
        series = [row for row in rows if row["mix"] == mix]
        for prev, cur in zip(series, series[1:]):
            if cur["hit_rate"] <= prev["hit_rate"]:
                failures.append(
                    f"cache[{mix}]: hit rate not strictly improving "
                    f"({prev['cache_bytes']}B: {prev['hit_rate']} -> "
                    f"{cur['cache_bytes']}B: {cur['hit_rate']})"
                )
        if series and series[0]["evictions"] == 0:
            failures.append(
                f"cache[{mix}]: smallest budget never evicted — the sweep "
                "is not exercising the cache"
            )
    return failures


# -- recovery grid -------------------------------------------------------------


def run_recovery_cell(bulk_keys: int, txs: int, seed: int = 37) -> dict:
    """Bulk synthetic state + a real chain on top, crashed and recovered
    both ways. The bulk is installed *before* the chain commits, so the
    recorded per-block roots cover it and the WAL tail replays cleanly
    under the materialized path's root checks."""
    backend = MemoryBackend()
    ledger = DurableLedger(backend, policy="per-block", snapshot_interval=4)
    chain = build_canonical_chain(txs=txs, seed=seed)
    store, spill = StateStore(), SpillBuffer()
    for i in range(bulk_keys):
        key, value = f"bulk{i:07d}", f"b{i}"
        store.put(key, value, Version(0, i))
        spill.put(key, value, Version(0, i))
    registry = standard_registry()
    for block in chain:
        if block.height == 0:
            continue
        report = execute_block_serially(block, store, registry)
        for index, rwset in enumerate(report.rwsets):
            if rwset.ok:
                spill.apply_writes(rwset.writes, Version(block.height, index))
        root = state_root(store)
        ledger.commit_block(block, root)
        if ledger.maybe_snapshot(block, root, spill):
            spill = SpillBuffer()
    ledger.flush()
    backend.simulate_crash()

    tail = DurableLedger(
        backend, policy="per-block", snapshot_interval=4
    ).tail_record_count()

    started = time.perf_counter()
    materialized = DurableLedger(
        backend, policy="per-block", snapshot_interval=4
    ).recover(standard_registry)
    materialized_wall = time.perf_counter() - started

    reset_store_counters()
    started = time.perf_counter()
    paged = DurableLedger(
        backend, policy="per-block", snapshot_interval=4, paged=True
    ).recover(standard_registry)
    paged_wall = time.perf_counter() - started
    decoded = STORE_COUNTERS["block_cache_misses"]
    snapshot_blocks = sum(
        run.block_count() for run in paged.store._runs
    ) if isinstance(paged.store, PagedStateStore) else 0
    return {
        "bulk_keys": bulk_keys,
        "blocks": chain.height,
        "wal_tail_records": tail,
        "paged_replayed": paged.replayed,
        "materialized_replayed": materialized.replayed,
        "snapshot_blocks": snapshot_blocks,
        "recovery_blocks_decoded": decoded,
        "paged_wall_s": round(paged_wall, 4),
        "materialized_wall_s": round(materialized_wall, 4),
        "tips_match": paged.tail.tip_hash() == materialized.tail.tip_hash(),
        "heights_match": paged.tail.height
        == materialized.tail.height
        == chain.height,
        "is_paged_store": isinstance(paged.store, PagedStateStore),
    }


def run_recovery_grid(bulks=None, txs: int = RECOVERY_TXS) -> list[dict]:
    return [
        run_recovery_cell(bulk, txs) for bulk in (bulks or RECOVERY_BULK)
    ]


def check_recovery_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"recovery[bulk={row['bulk_keys']}]"
        if not row["is_paged_store"]:
            failures.append(f"{where}: paged=True did not return a "
                            "PagedStateStore")
        if not row["heights_match"] or not row["tips_match"]:
            failures.append(f"{where}: paged and materialized recoveries "
                            "disagree on the chain")
        if row["wal_tail_records"] == 0:
            failures.append(
                f"{where}: WAL tail is empty — the replay gate is vacuous "
                "(grow the chain past the last snapshot boundary)"
            )
        if row["paged_replayed"] != row["wal_tail_records"]:
            failures.append(
                f"{where}: paged replay ({row['paged_replayed']}) != WAL "
                f"tail ({row['wal_tail_records']})"
            )
        if row["recovery_blocks_decoded"] > RECOVERY_DECODE_CAP:
            failures.append(
                f"{where}: paged recovery decoded "
                f"{row['recovery_blocks_decoded']} blocks "
                f"(> cap {RECOVERY_DECODE_CAP}) — decode work is scaling "
                "with snapshot size"
            )
    if len(rows) >= 2:
        small, large = rows[0], rows[-1]
        if large["snapshot_blocks"] < 5 * small["snapshot_blocks"]:
            failures.append(
                "recovery grid: snapshot did not grow enough to test "
                f"independence ({small['snapshot_blocks']} -> "
                f"{large['snapshot_blocks']} blocks)"
            )
        # The one wall-clock gate, taken where the gap is widest: with
        # 10x the state, a restart that materializes everything cannot
        # beat one that opens footers only.
        if large["paged_wall_s"] >= large["materialized_wall_s"]:
            failures.append(
                "recovery grid: at the largest state the paged restart "
                f"({large['paged_wall_s']}s) was not faster than the "
                f"materialized one ({large['materialized_wall_s']}s)"
            )
    return failures


# -- same-seed determinism -----------------------------------------------------


def run_determinism(keys: int, probes: int) -> dict:
    first = run_equivalence_grid(keys, probes)
    second = run_equivalence_grid(keys, probes)
    return {
        "keys": keys,
        "replays_identical": first == second,
    }


def check_determinism(row: dict) -> list[str]:
    if not row["replays_identical"]:
        return [
            "determinism: same-seed equivalence grids diverged — the "
            "paged read path is not deterministic"
        ]
    return []


# -- full run + gate ----------------------------------------------------------


def run_state_paging(write_json: bool = True) -> dict:
    report = {
        "experiment": "E23",
        "keys": KEYS,
        "probes": PROBES,
        "zipf_theta": ZIPF_THETA,
        "cache_budgets": CACHE_BUDGETS,
        "recovery_bulk": RECOVERY_BULK,
        "equivalence_grid": run_equivalence_grid(),
        "cache_grid": run_cache_grid(),
        "recovery_grid": run_recovery_grid(),
        "determinism": run_determinism(KEYS // 4, PROBES // 4),
    }
    if write_json:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    return (
        check_equivalence_grid(report["equivalence_grid"])
        + check_cache_grid(report["cache_grid"])
        + check_recovery_grid(report["recovery_grid"])
        + check_determinism(report["determinism"])
    )


# -- smoke mode (CI guard) ----------------------------------------------------


def run_smoke() -> int:
    failures = check_equivalence_grid(
        run_equivalence_grid(SMOKE_KEYS, SMOKE_PROBES)
    )
    failures += check_cache_grid(
        run_cache_grid(SMOKE_KEYS, SMOKE_PROBES, SMOKE_CACHES)
    )
    failures += check_recovery_grid(
        run_recovery_grid(SMOKE_BULK, txs=30)
    )
    failures += check_determinism(
        run_determinism(SMOKE_KEYS // 4, SMOKE_PROBES // 4)
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "state-paging smoke: paged==materialized bytes (uniform+zipf), "
        "hit rate strictly improving with budget, recovery decode work "
        "flat across 10x state, same-seed replay identical OK"
    )
    return 0


def test_state_paging_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    def guard():
        return (
            check_equivalence_grid(
                run_equivalence_grid(SMOKE_KEYS, SMOKE_PROBES)
            )
            + check_cache_grid(
                run_cache_grid(SMOKE_KEYS, SMOKE_PROBES, SMOKE_CACHES)
            )
            + check_recovery_grid(run_recovery_grid(SMOKE_BULK, txs=30))
        )

    assert run_once(guard) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    started = time.perf_counter()
    report = run_state_paging()
    print_table(
        report["equivalence_grid"],
        title=f"E23 paged vs materialized equivalence ({KEYS} keys)",
    )
    print_table(
        report["cache_grid"],
        title="E23 block-cache sweep (hit rate vs byte budget)",
    )
    print_table(
        report["recovery_grid"],
        title="E23 recovery work vs snapshot size (10x growth)",
    )
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "state-paging gate: byte equivalence on uniform+zipf, strictly "
        "monotone hit rate, bounded recovery decode work, same-seed "
        f"determinism OK [{time.perf_counter() - started:.1f}s]"
    )
