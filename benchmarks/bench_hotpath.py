"""Experiment E18 — protocol hot-path scaling (COW snapshots + crypto caches).

The pre-overhaul state store copied every entry on ``snapshot()``, so
XOV-family endorsement — one snapshot per transaction — cost O(state)
per transaction and throughput degraded linearly with world-state size.
The copy-on-write store plus the FastFabric-style verification cache
and Merkle memoization make the hot path O(touched data) instead.

This file measures that end to end:

* **Throughput grid** — wall-clock tx/sec of the E1 (OX/OXII/XOV) and
  E2 (Fabric family) workloads with the state pre-populated to 1k, 10k
  and 100k keys; the pre-overhaul baseline is replayed through
  :class:`~repro.ledger.store.EagerCopyStateStore` on the same seeds.
  The gate: current / baseline >= 2x at 100k keys on both workloads.
* **Snapshot-cost probe** — per-snapshot wall time at each state size;
  copy-on-write must be flat (O(1)) while the eager baseline grows.
* **Per-subsystem counters** — snapshot entries copied, signature
  verifies performed vs. cached, Merkle nodes hashed vs. served from
  cache (``repro.bench.profiling.hotpath_counters``).

``--smoke`` runs the CI guard instead: E1/E2 paper-shape assertions,
serial-vs-parallel row identity, and the O(1)-snapshot counter check —
nonzero exit on any regression. Run standalone::

    PYTHONPATH=src python benchmarks/bench_hotpath.py [--smoke]
"""

import json
import os
import sys
import time
from pathlib import Path

from repro.bench import (
    hotpath_counters,
    print_table,
    reset_hotpath_counters,
    sweep,
    sweep_parallel,
)
from repro.core import SYSTEMS, SystemConfig
from repro.ledger.store import EagerCopyStateStore, StateStore, Version
from repro.workloads import KvWorkload

STATE_SIZES = [1_000, 10_000, 100_000]
N_TXS = 300

#: Architecture set per workload family (E1 / E2 definitions).
E1_SYSTEMS = ["ox", "oxii", "xov"]
E2_SYSTEMS = ["xov", "fastfabric", "fabricpp", "fabricsharp", "xox"]

#: Cells the >= 2x wall-clock gate is asserted on (the XOV-family
#: architectures whose per-transaction snapshot the overhaul removed).
GATE = [("E1", "xov"), ("E2", "fastfabric")]
GATE_SPEEDUP = 2.0
GATE_STATE = 100_000

#: Snapshot-probe repetitions per state size.
PROBE_SNAPSHOTS = 200


def _workload(family: str, n_keys: int):
    """The E1/E2 transaction mix over an ``n_keys`` key space."""
    if family == "E1":
        generator = KvWorkload(
            n_keys=n_keys, theta=0.6, read_fraction=0.2, rmw_fraction=0.7,
            seed=11,
        )
    else:
        generator = KvWorkload(
            n_keys=n_keys, theta=0.8, read_fraction=0.45, rmw_fraction=0.3,
            seed=13,
        )
    return generator.generate(N_TXS)


def _prepopulate(store, n_keys: int) -> None:
    """Install the workload's key space at a genesis version."""
    version = Version(height=0, tx_index=0)
    for i in range(n_keys + 1):
        store.put(f"k{i}", 0, version)
    store.snapshot()  # seal/compact so measurement starts from steady state


def run_cell(family: str, name: str, n_keys: int, eager: bool) -> dict:
    """One grid cell: run ``name`` over the family workload at ``n_keys``
    pre-populated keys, returning wall/modelled throughput + counters."""
    config = SystemConfig(block_size=50, seed=21 if family == "E1" else 23)
    system = SYSTEMS[name](config)
    system.store = EagerCopyStateStore() if eager else StateStore()
    _prepopulate(system.store, n_keys)
    for tx in _workload(family, n_keys):
        system.submit(tx)
    reset_hotpath_counters()
    start = time.perf_counter()
    result = system.run()
    wall = time.perf_counter() - start
    counters = hotpath_counters()
    return {
        "workload": family,
        "system": name,
        "state_keys": n_keys,
        "store": "eager" if eager else "cow",
        "committed": result.committed,
        "wall_seconds": round(wall, 4),
        "wall_tps": round(result.committed / wall, 1) if wall else 0.0,
        "modelled_tps": result.to_row()["throughput_tps"],
        "snapshot_entries_copied": counters["store.snapshot_entries_copied"],
        "snapshots_taken": counters["store.snapshots_taken"],
        "sig_verified": int(result.extra.get("exec.sig_verified", 0)),
        "sig_cached": int(result.extra.get("exec.sig_cached", 0)),
        "merkle_nodes_hashed": counters["merkle.nodes_hashed"],
        "merkle_root_cache_hits": counters["merkle.root_cache_hits"],
    }


def run_snapshot_probe() -> dict:
    """Per-snapshot wall cost at each state size, both store kinds.

    The copy-on-write numbers must be flat in state size (O(1)); the
    eager baseline grows roughly linearly. ``cow_copied`` must be 0 —
    the COW path never copies an entry on snapshot.
    """
    probe: dict = {"cow_ns": {}, "eager_ns": {}, "cow_copied": 0}
    for n_keys in STATE_SIZES:
        for eager in (False, True):
            store = EagerCopyStateStore() if eager else StateStore()
            _prepopulate(store, n_keys)
            reset_hotpath_counters()
            start = time.perf_counter()
            for _ in range(PROBE_SNAPSHOTS):
                store.snapshot()
            per_snap = (time.perf_counter() - start) / PROBE_SNAPSHOTS
            kind = "eager_ns" if eager else "cow_ns"
            probe[kind][str(n_keys)] = round(per_snap * 1e9, 1)
            if not eager:
                probe["cow_copied"] += hotpath_counters()[
                    "store.snapshot_entries_copied"
                ]
    return probe


def run_hotpath(write_json: bool = True) -> dict:
    """The full grid + probe; writes ``BENCH_hotpath.json`` at the root."""
    rows = []
    for family, systems in (("E1", E1_SYSTEMS), ("E2", E2_SYSTEMS)):
        for n_keys in STATE_SIZES:
            for name in systems:
                rows.append(run_cell(family, name, n_keys, eager=False))
    for family, name in GATE:
        for n_keys in STATE_SIZES:
            rows.append(run_cell(family, name, n_keys, eager=True))
    probe = run_snapshot_probe()

    def cell(family, name, n_keys, store):
        return next(
            r for r in rows
            if r["workload"] == family and r["system"] == name
            and r["state_keys"] == n_keys and r["store"] == store
        )

    gate = {}
    for family, name in GATE:
        for n_keys in STATE_SIZES:
            baseline = cell(family, name, n_keys, "eager")
            current = cell(family, name, n_keys, "cow")
            gate[f"{family}/{name}@{n_keys}"] = {
                "baseline_wall_tps": baseline["wall_tps"],
                "current_wall_tps": current["wall_tps"],
                "speedup": round(
                    current["wall_tps"] / max(baseline["wall_tps"], 1e-9), 2
                ),
            }
    report = {
        "n_txs": N_TXS,
        "state_sizes": STATE_SIZES,
        "gate_speedup_required": GATE_SPEEDUP,
        "gate": gate,
        "snapshot_cost": probe,
        "rows": rows,
    }
    if write_json:
        path = Path(__file__).resolve().parent.parent / "BENCH_hotpath.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    """Acceptance checks over a full report; returns failure messages."""
    failures = []
    for family, name in GATE:
        entry = report["gate"][f"{family}/{name}@{GATE_STATE}"]
        if entry["speedup"] < GATE_SPEEDUP:
            failures.append(
                f"{family}/{name}@{GATE_STATE}: wall speedup "
                f"{entry['speedup']}x < required {GATE_SPEEDUP}x"
            )
    probe = report["snapshot_cost"]
    if probe["cow_copied"] != 0:
        failures.append(
            f"COW snapshot copied {probe['cow_copied']} entries (expected 0)"
        )
    # O(1): the COW snapshot at 100k keys must not cost meaningfully more
    # than at 1k (generous 5x tolerance for timer noise on ~us probes).
    small = probe["cow_ns"][str(STATE_SIZES[0])]
    large = probe["cow_ns"][str(STATE_SIZES[-1])]
    if large > 5 * max(small, 200.0):
        failures.append(
            f"COW snapshot cost grew with state size: {small}ns -> {large}ns"
        )
    return failures


# -- smoke mode (CI guard) ----------------------------------------------------


def _benchmarks_dir_on_path() -> None:
    here = str(Path(__file__).resolve().parent)
    if here not in sys.path:
        sys.path.insert(0, here)


def check_e1_shapes() -> list[str]:
    """Re-assert E1's Discussion shapes (bench_architectures.run_e1)."""
    _benchmarks_dir_on_path()
    from bench_architectures import SKEWS, run_e1

    rows = run_e1()

    def pick(skew, system, field):
        return next(
            r[field] for r in rows if r["skew"] == skew and r["system"] == system
        )

    failures = []
    if not pick(0.0, "oxii", "throughput_tps") > pick(0.0, "ox", "throughput_tps"):
        failures.append("E1: OXII no longer beats OX at zero skew")
    for skew in SKEWS:
        if pick(skew, "ox", "abort_rate") != 0.0:
            failures.append(f"E1: OX aborts at skew {skew}")
        if pick(skew, "oxii", "abort_rate") != 0.0:
            failures.append(f"E1: OXII aborts at skew {skew}")
    if not pick(1.1, "xov", "abort_rate") > pick(0.0, "xov", "abort_rate"):
        failures.append("E1: XOV abort rate no longer grows with contention")
    if not pick(1.1, "xov", "abort_rate") > 0.2:
        failures.append("E1: XOV high-skew abort rate fell below 0.2")
    if not pick(1.1, "xov", "throughput_tps") < pick(1.1, "ox", "throughput_tps"):
        failures.append("E1: XOV goodput no longer falls below OX at high skew")
    return failures


def check_e2_shapes() -> list[str]:
    """Re-assert E2's Fabric-family shapes (bench_fabric_family.run_e2)."""
    _benchmarks_dir_on_path()
    from bench_fabric_family import SKEWS, run_e2

    rows = run_e2()

    def pick(skew, system, field):
        return next(
            r[field] for r in rows if r["skew"] == skew and r["system"] == system
        )

    failures = []
    if not pick(0.0, "fastfabric", "throughput_tps") > 1.5 * pick(
        0.0, "xov", "throughput_tps"
    ):
        failures.append("E2: FastFabric advantage over XOV fell below 1.5x")
    if not pick(1.1, "fabricpp", "abort_rate") <= pick(1.1, "xov", "abort_rate"):
        failures.append("E2: Fabric++ reordering no longer reduces aborts")
    for skew in SKEWS:
        if (
            pick(skew, "fabricsharp", "abort_rate")
            > pick(skew, "fabricpp", "abort_rate") + 0.02
        ):
            failures.append(f"E2: FabricSharp aborts more than Fabric++ at {skew}")
    if pick(1.1, "xox", "abort_rate") != 0.0:
        failures.append("E2: XOX no longer recovers every conflict casualty")
    return failures


def check_parallel_identity() -> list[str]:
    """Bench rows must be byte-identical serial vs. forked-parallel."""
    _benchmarks_dir_on_path()
    from bench_architectures import _workload as e1_workload

    def runner(theta):
        from repro.bench import run_architecture

        return run_architecture(
            "xov", e1_workload(theta), SystemConfig(block_size=50, seed=21)
        )

    thetas = [0.0, 0.9]
    saved = os.environ.pop("REPRO_BENCH_WORKERS", None)
    try:
        serial = sweep("skew", thetas, runner)
    finally:
        if saved is not None:
            os.environ["REPRO_BENCH_WORKERS"] = saved
    parallel = sweep_parallel("skew", thetas, runner, workers=2)
    if json.dumps(serial, sort_keys=True) != json.dumps(parallel, sort_keys=True):
        return ["serial and parallel sweeps produced different rows"]
    return []


def check_snapshot_counters() -> list[str]:
    """COW snapshots must copy zero entries at any state size."""
    failures = []
    for n_keys in (1_000, 10_000):
        row = run_cell("E1", "xov", n_keys, eager=False)
        if row["snapshot_entries_copied"] != 0:
            failures.append(
                f"COW run at {n_keys} keys copied "
                f"{row['snapshot_entries_copied']} snapshot entries"
            )
        if row["committed"] == 0:
            failures.append(f"COW run at {n_keys} keys committed nothing")
    return failures


def run_smoke() -> int:
    failures = (
        check_e1_shapes()
        + check_e2_shapes()
        + check_parallel_identity()
        + check_snapshot_counters()
    )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print("hotpath smoke: E1/E2 shapes, parallel identity, O(1) snapshots OK")
    return 0


def test_hotpath_smoke(run_once):
    """Pytest entry: the same guard CI runs via ``--smoke``."""
    failures = run_once(
        lambda: check_parallel_identity() + check_snapshot_counters()
    )
    assert failures == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    report = run_hotpath()
    print_table(report["rows"], title="E18: hot-path scaling grid")
    print(json.dumps({k: v for k, v in report.items() if k != "rows"}, indent=2))
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(f"hotpath gate: >= {GATE_SPEEDUP}x at {GATE_STATE} keys OK")
