"""Experiment E10 — Figure 1: a five-node permissioned blockchain.

The paper's only figure shows five known, identified nodes each
maintaining a copy of the blockchain ledger. Reproduced end to end: a
five-orderer PBFT network processes a client workload, and every
replica's decided sequence (hence ledger) is byte-identical — "a
consistent view of all user transactions by all participants".
"""

from repro.bench import print_table
from repro.common.types import Transaction
from repro.core import OxSystem, SystemConfig
from repro.crypto import MembershipService
from repro.ledger.chain import Blockchain

N_NODES = 5
N_TXS = 100


def run_figure1():
    # The identity layer: five a-priori known, registered nodes.
    membership = MembershipService()
    node_ids = [f"node{i}" for i in range(N_NODES)]
    for node_id in node_ids:
        membership.register(node_id)

    system = OxSystem(
        SystemConfig(orderers=N_NODES, protocol="pbft", block_size=20, seed=101)
    )
    for i in range(N_TXS):
        system.submit(Transaction.create("kv_set", (f"key{i}", i)))
    result = system.run()

    # Rebuild each replica's ledger from its decided block sequence —
    # the replication Figure 1 depicts.
    replicas = {}
    tx_by_id = {tx.tx_id: tx for tx in system._tx_by_id.values()}
    for rid, orderer in system.cluster.replicas.items():
        ledger = Blockchain()
        for payload in orderer.decided:
            batch = [tx_by_id[tx_id] for tx_id in payload]
            ledger.append(ledger.next_block(batch))
        ledger.verify_chain()
        replicas[rid] = ledger

    reference = replicas[node_ids[0].replace("node", "r")]
    rows = []
    for rid, ledger in sorted(replicas.items()):
        rows.append(
            {
                "node": rid,
                "member": membership.is_member(f"node{rid[1:]}"),
                "blocks": len(ledger),
                "tip_hash": ledger.tip_hash()[:16] + "…",
                "identical_to_r0": ledger.same_ledger_as(reference),
            }
        )
    return rows, result


def test_e10_figure1_five_node_network(run_once):
    rows, result = run_once(run_figure1)
    print_table(rows, title="E10 (Figure 1): five replicated ledgers")
    assert len(rows) == N_NODES
    assert all(row["identical_to_r0"] for row in rows)
    assert all(row["member"] for row in rows)
    assert result.committed == N_TXS
