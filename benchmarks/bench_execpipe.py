"""Experiment E19 — execution-pipeline overhaul gate (+ OX/OXII crossover).

The execution-layer overhaul replaced three hot paths:

* per-block dependency-graph rebuilds -> the incremental
  :class:`~repro.execution.conflict_index.BlockConflictIndex`,
* the O(n²) ``DependencyGraph.waves()`` layer-peeling and per-step
  scheduler set rebuilds -> one Kahn-style forward pass + cached
  adjacency + heap lanes,
* the strictly serial block-validation timeline -> the
  ``pipeline_depth``-deep :class:`~repro.execution.pipeline.ExecutionPipeline`
  (commit order preserved).

This file proves the overhaul end to end:

* **Micro grid** — wall seconds of depgraph-build + wave decomposition +
  parallel scheduling at block sizes 100/1k/10k under low/high
  contention, legacy algorithms (copied verbatim below) vs. the current
  path, with output-identity asserted cell by cell. The gate: >= 2x
  wall speedup at the 10k block on both contention levels.
* **Row identity** — the modelled OX/OXII/XOV/Fabric++/FabricSharp
  rows must be byte-identical to the pre-overhaul fixture
  (``benchmarks/data/execpipe_baseline.json``) at ``pipeline_depth=1``.
* **Depth sweep** — with ``pipeline_depth`` in {1, 2, 4} the XOV family
  commits the same transaction set and modelled throughput never drops;
  at depth 2 a crash + partition fault regime must leave the consensus
  monitors, ledger linkage, and serializability audit green.
* **E19 rows** — the OX-vs-OXII crossover: OXII's parallel execute
  phase wins at low contention and converges toward OX as the
  dependency graph serialises.

``--smoke`` runs the CI guard (small blocks, row identity,
serial-vs-parallel identity, depth safety) — nonzero exit on any
regression. Run standalone::

    PYTHONPATH=src python benchmarks/bench_execpipe.py [--smoke]
"""

import heapq
import json
import os
import sys
import time
from pathlib import Path

from repro.bench import print_table, run_architecture, sweep, sweep_parallel
from repro.consensus.monitors import MONITOR_REGISTRY
from repro.core import SYSTEMS, SystemConfig
from repro.execution.conflict_index import BlockConflictIndex
from repro.execution.depgraph import build_dependency_graph, schedule_parallel
from repro.execution.serial import verify_serializable_commit
from repro.ledger.audit import verify_ledger_linkage
from repro.sim.faults import FaultPlan
from repro.workloads import KvWorkload

BLOCK_SIZES = [100, 1_000, 10_000]
MICRO_CONTENTION = {"low": 0.1, "high": 0.9}
GATE_SPEEDUP = 2.0
GATE_BLOCK = 10_000
EXECUTORS = 8

#: The frozen pre-overhaul modelled rows (captured on the seed code).
BASELINE_PATH = Path(__file__).resolve().parent / "data" / "execpipe_baseline.json"
ROW_SYSTEMS = ["ox", "oxii", "xov", "fabricpp", "fabricsharp"]
ROW_CONTENTION = {"low": 0.1, "high": 1.1}

PIPELINE_DEPTHS = [1, 2, 4]
PIPELINE_SYSTEMS = ["xov", "fastfabric", "fabricpp", "fabricsharp"]

E19_SKEWS = [0.0, 0.3, 0.6, 0.9, 1.1]


# -- legacy algorithms (the replaced implementations, verbatim) ---------------


def _legacy_build(txs):
    """Pre-overhaul ``build_dependency_graph``: per-block rebuild."""
    from repro.execution.depgraph import DependencyGraph

    graph = DependencyGraph(txs=list(txs))
    writers: dict[str, list[int]] = {}
    readers: dict[str, list[int]] = {}
    for i, tx in enumerate(txs):
        for key in tx.write_keys:
            for earlier in writers.get(key, ()):
                graph.successors[earlier].add(i)
            for earlier in readers.get(key, ()):
                graph.successors[earlier].add(i)
            writers.setdefault(key, []).append(i)
        for key in tx.read_keys:
            for earlier in writers.get(key, ()):
                if earlier != i:
                    graph.successors[earlier].add(i)
            readers.setdefault(key, []).append(i)
    for i in graph.successors:
        graph.successors[i].discard(i)
    return graph


def _legacy_waves(graph):
    """Pre-overhaul ``waves()``: O(n²) predecessor scans per vertex."""
    level: dict[int, int] = {}
    for i in range(len(graph.txs)):
        preds = [p for p, succs in graph.successors.items() if i in succs]
        level[i] = 1 + max((level[p] for p in preds), default=-1)
    result: list[list[int]] = [
        [] for _ in range(max(level.values(), default=-1) + 1)
    ]
    for i, lvl in level.items():
        result[lvl].append(i)
    return result


def _legacy_schedule(graph, costs, executors):
    """Pre-overhaul ``schedule_parallel``: uncached predecessors, dict
    counters, and a ``sorted()`` per completion event."""
    n = len(graph.txs)
    if n == 0:
        return 0.0, []
    preds: dict[int, set[int]] = {i: set() for i in range(n)}
    for i, succs in graph.successors.items():
        for j in succs:
            preds[j].add(i)
    remaining = {i: len(preds[i]) for i in range(n)}
    ready = [i for i in range(n) if remaining[i] == 0]
    heapq.heapify(ready)
    running: list[tuple[float, int]] = []
    completion_order: list[int] = []
    now = 0.0
    free = executors
    while ready or running:
        while ready and free > 0:
            tx_index = heapq.heappop(ready)
            heapq.heappush(running, (now + costs[tx_index], tx_index))
            free -= 1
        finish, tx_index = heapq.heappop(running)
        now = finish
        free += 1
        completion_order.append(tx_index)
        for succ in sorted(graph.successors[tx_index]):
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, succ)
    return now, completion_order


# -- micro grid ---------------------------------------------------------------


def _micro_workload(block_size: int, theta: float):
    return KvWorkload(
        n_keys=2 * block_size, theta=theta, read_fraction=0.2,
        rmw_fraction=0.6, seed=41,
    ).generate(block_size)


def run_micro_cell(block_size: int, label: str) -> dict:
    """Time depgraph-build + waves + schedule, legacy vs. current, on one
    block; asserts the two paths produce identical output."""
    txs = _micro_workload(block_size, MICRO_CONTENTION[label])
    costs = [0.001] * block_size

    start = time.perf_counter()
    legacy_graph = _legacy_build(txs)
    legacy_wave_list = _legacy_waves(legacy_graph)
    legacy_sched = _legacy_schedule(legacy_graph, costs, EXECUTORS)
    legacy_wall = time.perf_counter() - start

    start = time.perf_counter()
    index = BlockConflictIndex()
    uids = [index.ingest(tx.read_keys, tx.write_keys) for tx in txs]
    graph = index.graph_for(uids, list(txs))
    wave_list = graph.waves()
    sched = schedule_parallel(graph, costs, EXECUTORS)
    current_wall = time.perf_counter() - start

    identical = (
        graph.successors == legacy_graph.successors
        and wave_list == legacy_wave_list
        and sched == legacy_sched
    )
    return {
        "block_size": block_size,
        "contention": label,
        "edges": graph.edge_count,
        "n_waves": len(wave_list),
        "legacy_seconds": round(legacy_wall, 4),
        "current_seconds": round(current_wall, 4),
        "speedup": round(legacy_wall / max(current_wall, 1e-9), 1),
        "identical": identical,
    }


def run_micro_grid(block_sizes=None) -> list[dict]:
    return [
        run_micro_cell(block_size, label)
        for block_size in (block_sizes or BLOCK_SIZES)
        for label in MICRO_CONTENTION
    ]


# -- modelled-row identity ----------------------------------------------------


def _row_workload(theta: float):
    return KvWorkload(
        n_keys=400, theta=theta, read_fraction=0.2, rmw_fraction=0.6, seed=31,
    ).generate(240)


def current_rows() -> str:
    """The modelled rows of the frozen fixture's grid, as canonical JSON."""
    rows = []
    for label, theta in ROW_CONTENTION.items():
        txs = _row_workload(theta)
        for system in ROW_SYSTEMS:
            result = run_architecture(
                system, txs, SystemConfig(block_size=40, seed=29)
            )
            row = {"contention": label, **result.to_row()}
            row["extra"] = {k: result.extra[k] for k in sorted(result.extra)}
            rows.append(row)
    return json.dumps({"rows": rows}, indent=2, sort_keys=True) + "\n"


def check_row_identity() -> list[str]:
    """Modelled rows must be byte-identical to the pre-overhaul fixture
    (``pipeline_depth`` defaults to 1 — the identity contract)."""
    if current_rows() != BASELINE_PATH.read_text():
        return [
            "modelled rows diverged from benchmarks/data/execpipe_baseline.json"
        ]
    return []


def check_parallel_identity() -> list[str]:
    """Bench rows must be byte-identical serial vs. forked-parallel."""

    def runner(theta):
        return run_architecture(
            "fabricsharp", _row_workload(theta),
            SystemConfig(block_size=40, seed=29),
        )

    thetas = list(ROW_CONTENTION.values())
    saved = os.environ.pop("REPRO_BENCH_WORKERS", None)
    try:
        serial = sweep("skew", thetas, runner)
    finally:
        if saved is not None:
            os.environ["REPRO_BENCH_WORKERS"] = saved
    parallel = sweep_parallel("skew", thetas, runner, workers=2)
    if json.dumps(serial, sort_keys=True) != json.dumps(parallel, sort_keys=True):
        return ["serial and parallel sweeps produced different rows"]
    return []


# -- pipeline-depth sweep -----------------------------------------------------


def run_depth_sweep() -> list[dict]:
    """Commit set + modelled throughput per (system, pipeline_depth)."""
    txs = _row_workload(ROW_CONTENTION["high"])
    rows = []
    for name in PIPELINE_SYSTEMS:
        for depth in PIPELINE_DEPTHS:
            system = SYSTEMS[name](SystemConfig(
                block_size=40, seed=29, pipeline_depth=depth
            ))
            for tx in txs:
                system.submit(tx)
            result = system.run()
            rows.append({
                "system": name,
                "pipeline_depth": depth,
                "committed": result.committed,
                "throughput_tps": result.to_row()["throughput_tps"],
                "commit_set": sorted(system.committed_tx_ids()),
            })
    return rows


def check_depth_sweep(rows: list[dict]) -> list[str]:
    failures = []
    for name in PIPELINE_SYSTEMS:
        mine = [r for r in rows if r["system"] == name]
        base = next(r for r in mine if r["pipeline_depth"] == 1)
        for row in mine:
            if row["commit_set"] != base["commit_set"]:
                failures.append(
                    f"{name}: depth {row['pipeline_depth']} changed the "
                    "committed transaction set"
                )
            if row["throughput_tps"] + 1e-6 < base["throughput_tps"]:
                failures.append(
                    f"{name}: depth {row['pipeline_depth']} throughput "
                    f"{row['throughput_tps']} fell below depth-1 "
                    f"{base['throughput_tps']}"
                )
    return failures


def check_fault_regimes() -> list[str]:
    """``pipeline_depth=2`` under a replica crash plus a partition window:
    consensus monitors, ledger linkage, and the serializability audit
    must all stay green."""
    failures = []
    txs = _row_workload(ROW_CONTENTION["high"])[:120]
    for name in ("fastfabric", "fabricpp"):
        system = SYSTEMS[name](SystemConfig(
            block_size=20, seed=13, pipeline_depth=2, max_time=120.0,
        ))
        monitors = [
            MONITOR_REGISTRY[m]()
            for m in ("prefix-consistency", "conflicting-commit")
        ]
        for monitor in monitors:
            system.cluster.add_monitor(monitor)
        replicas = system.cluster.config.replica_ids
        victim = replicas[-1]
        FaultPlan().crash(0.01, victim).recover(0.3, victim).partition_window(
            0.4, 0.6, [replicas[:-1], replicas[-1:]]
        ).apply(system.sim, system.cluster.network)
        for tx in txs:
            system.submit(tx)
        result = system.run()
        if result.committed == 0:
            failures.append(f"{name}@depth2+faults: nothing committed")
        for monitor in monitors:
            if not monitor.check():
                failures.append(
                    f"{name}@depth2+faults: {monitor.violations[0]}"
                )
        committed = system.committed_tx_ids()
        failures.extend(
            f"{name}@depth2+faults: {v}"
            for v in verify_ledger_linkage(system.ledger, committed)
        )
        failures.extend(
            f"{name}@depth2+faults: {v}"
            for v in verify_serializable_commit(
                system.ledger, system.store, system.registry, committed
            )
        )
    return failures


# -- E19: OX vs OXII crossover ------------------------------------------------


def run_e19() -> list[dict]:
    """OX vs OXII across contention over a small hot key space.

    End-to-end throughput is arrival-bound for both pessimistic
    architectures (neither ever aborts), so the crossover shows in the
    *commit latency*: OXII's parallel execute phase wins big at zero
    skew, and the win shrinks as the dependency graph serialises and
    the scheduled makespan (``exec.parallel_seconds``) approaches OX's
    serial sum (paper section 2.3.3)."""
    rows = []
    for skew in E19_SKEWS:
        txs = KvWorkload(
            n_keys=60, theta=skew, read_fraction=0.2, rmw_fraction=0.7,
            seed=17,
        ).generate(240)
        for name in ("ox", "oxii"):
            result = run_architecture(
                name, txs, SystemConfig(block_size=40, seed=19)
            )
            row = {"skew": skew, **result.to_row()}
            row["exec_seconds"] = round(
                result.extra.get("exec.parallel_seconds", 0.0), 4
            )
            rows.append(row)
    return rows


def check_e19(rows: list[dict]) -> list[str]:
    def pick(skew, system, field="mean_latency"):
        return next(
            r[field] for r in rows
            if r["skew"] == skew and r["system"] == system
        )

    failures = []
    if not pick(0.0, "oxii") < pick(0.0, "ox"):
        failures.append("E19: OXII no longer beats OX at zero skew")
    if not pick(1.1, "oxii") > pick(0.0, "oxii"):
        failures.append(
            "E19: OXII latency no longer grows with contention"
        )
    low_gap = pick(0.0, "ox") / pick(0.0, "oxii")
    high_gap = pick(1.1, "ox") / pick(1.1, "oxii")
    if not high_gap < low_gap:
        failures.append(
            "E19: OXII's latency advantage no longer shrinks with "
            f"contention (x{low_gap:.2f} at skew 0.0 vs x{high_gap:.2f} "
            "at 1.1)"
        )
    if not pick(1.1, "oxii", "exec_seconds") > pick(0.0, "oxii", "exec_seconds"):
        failures.append(
            "E19: OXII's scheduled makespan no longer grows as the "
            "dependency graph serialises"
        )
    return failures


# -- full run + gate ----------------------------------------------------------


def run_execpipe(write_json: bool = True) -> dict:
    micro = run_micro_grid()
    depth_rows = run_depth_sweep()
    e19_rows = run_e19()
    report = {
        "executors": EXECUTORS,
        "gate_speedup_required": GATE_SPEEDUP,
        "gate_block_size": GATE_BLOCK,
        "micro": micro,
        "depth_sweep": [
            {k: v for k, v in row.items() if k != "commit_set"}
            for row in depth_rows
        ],
        "e19": e19_rows,
        "row_identity_failures": check_row_identity(),
        "depth_failures": check_depth_sweep(depth_rows),
        "fault_failures": check_fault_regimes(),
        "e19_failures": check_e19(e19_rows),
    }
    if write_json:
        path = Path(__file__).resolve().parent.parent / "BENCH_execpipe.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    """Acceptance checks over a full report; returns failure messages."""
    failures = []
    for cell in report["micro"]:
        if not cell["identical"]:
            failures.append(
                f"micro {cell['block_size']}/{cell['contention']}: current "
                "path diverged from the legacy algorithms"
            )
        if (
            cell["block_size"] == report["gate_block_size"]
            and cell["speedup"] < report["gate_speedup_required"]
        ):
            failures.append(
                f"micro {cell['block_size']}/{cell['contention']}: speedup "
                f"{cell['speedup']}x < required "
                f"{report['gate_speedup_required']}x"
            )
    for key in (
        "row_identity_failures", "depth_failures",
        "fault_failures", "e19_failures",
    ):
        failures.extend(report[key])
    return failures


# -- smoke mode (CI guard) ----------------------------------------------------


def run_smoke() -> int:
    failures = []
    for cell in run_micro_grid(block_sizes=[100, 1_000]):
        if not cell["identical"]:
            failures.append(
                f"micro {cell['block_size']}/{cell['contention']}: current "
                "path diverged from the legacy algorithms"
            )
        if cell["block_size"] == 1_000 and cell["speedup"] < GATE_SPEEDUP:
            failures.append(
                f"micro 1000/{cell['contention']}: speedup "
                f"{cell['speedup']}x < required {GATE_SPEEDUP}x"
            )
    failures += check_row_identity()
    failures += check_parallel_identity()
    failures += check_depth_sweep(run_depth_sweep())
    failures += check_fault_regimes()
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "execpipe smoke: micro identity+speedup, frozen rows, "
        "parallel identity, pipeline depth safety OK"
    )
    return 0


def test_execpipe_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    def guard():
        failures = []
        for cell in run_micro_grid(block_sizes=[100]):
            if not cell["identical"]:
                failures.append(
                    f"micro {cell['block_size']}/{cell['contention']} diverged"
                )
        return failures + check_row_identity()

    assert run_once(guard) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    report = run_execpipe()
    print_table(report["micro"], title="E19 micro: depgraph+schedule wall time")
    print_table(report["depth_sweep"], title="pipeline-depth sweep")
    print_table(report["e19"], title="E19: OX vs OXII crossover")
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(
        f"execpipe gate: >= {GATE_SPEEDUP}x at {GATE_BLOCK}-tx blocks, "
        "frozen rows identical, pipeline depths safe OK"
    )
