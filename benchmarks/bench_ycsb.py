"""Experiment E15 — the Fabric family on the canonical YCSB profiles.

The optimisation papers the tutorial surveys (FastFabric, Fabric++,
FabricSharp) evaluate on YCSB mixes; this bench runs the same named
profiles (A: update-heavy, B: read-mostly, C: read-only, F:
read-modify-write) at the canonical Zipfian constant 0.99 so the
reproduction speaks the literature's language.

Expected shape: C aborts nothing (reads cannot conflict); A aborts more
than B (more writes, more conflicts); F is the worst for plain XOV
(every write is a read-modify-write — unreorderable cycles); XOX
recovers everything on every profile.
"""

from repro.bench import print_table, run_architecture
from repro.core import SystemConfig
from repro.workloads.ycsb import profiles, ycsb

SYSTEM_NAMES = ["xov", "fabricsharp", "xox"]
N_TXS = 250


def run_e15():
    rows = []
    for profile in profiles():
        for name in SYSTEM_NAMES:
            workload = ycsb(profile, n_keys=300, theta=0.99, seed=151)
            result = run_architecture(
                name, workload.generate(N_TXS),
                SystemConfig(block_size=50, seed=151),
            )
            rows.append(
                {
                    "ycsb": profile.upper(),
                    "system": name,
                    "committed": result.committed,
                    "abort_rate": round(result.abort_rate, 3),
                    "throughput_tps": round(result.throughput, 1),
                }
            )
    return rows


def test_e15_ycsb_profiles(run_once):
    rows = run_once(run_e15)
    print_table(rows, title="E15: Fabric family on YCSB A/B/C/F (theta=0.99)")

    def pick(profile, system, field):
        return next(
            r[field] for r in rows
            if r["ycsb"] == profile and r["system"] == system
        )

    # C (read-only): nothing can conflict.
    for name in SYSTEM_NAMES:
        assert pick("C", name, "abort_rate") == 0.0
    # More writes, more aborts: A > B for plain XOV.
    assert pick("A", "xov", "abort_rate") > pick("B", "xov", "abort_rate")
    # F's RMW cycles are unreorderable: FabricSharp cannot beat XOV by
    # much there, while on A (blind writes + reads) it can.
    assert (
        pick("A", "fabricsharp", "abort_rate")
        <= pick("A", "xov", "abort_rate")
    )
    # XOX recovers every conflict casualty on every profile.
    for profile in ("A", "B", "F"):
        assert pick(profile, "xox", "abort_rate") == 0.0
