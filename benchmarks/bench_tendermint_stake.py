"""Experiment E8 — Tendermint proof-of-stake voting power.

Paper anchor (section 2.3.3): "in Tendermint, validators do not have the
same 'weight' in the consensus protocol, and the voting power of a
validator corresponds to the number of its bounded coins. As a result,
one-third or two-thirds of the validators are defined based on the
proportions of the total voting power not the number of validators."

Reproduced: liveness as a function of the *stake* controlled by crashed
validators — crashing many low-stake validators is harmless while
crashing one high-stake validator halts consensus — plus proposer-slot
proportionality.
"""

from collections import Counter

from repro.bench import print_table
from repro.consensus import ConsensusCluster
from repro.consensus.tendermint import TendermintReplica, proposer_schedule

WEIGHTS = {"r0": 40, "r1": 30, "r2": 20, "r3": 5, "r4": 3, "r5": 2}


def run_stake_crash(crashed):
    cluster = ConsensusCluster(
        TendermintReplica, n=6, seed=81, weights=WEIGHTS
    )
    for rid in crashed:
        cluster.replicas[rid].crash()
    alive = next(
        rid for rid in cluster.config.replica_ids if rid not in crashed
    )
    for i in range(3):
        cluster.submit(f"stake-{'-'.join(crashed) or 'none'}-{i}", via=alive)
    ok = cluster.run_until_decided(3, timeout=20)
    dead_power = sum(WEIGHTS[r] for r in crashed)
    return {
        "crashed": ",".join(crashed) or "none",
        "validators_down": len(crashed),
        "stake_down_pct": round(100 * dead_power / sum(WEIGHTS.values()), 1),
        "live": ok,
    }


def run_e8():
    return [
        run_stake_crash([]),
        # Three validators down but only 10% of stake: must stay live.
        run_stake_crash(["r3", "r4", "r5"]),
        # One validator down holding 40% of stake: >1/3 power gone,
        # consensus must halt.
        run_stake_crash(["r0"]),
    ]


def test_e8_voting_power_not_headcount(run_once):
    rows = run_once(run_e8)
    print_table(rows, title="E8: Tendermint liveness vs crashed stake")
    by_crashed = {r["crashed"]: r for r in rows}
    assert by_crashed["none"]["live"]
    assert by_crashed["r3,r4,r5"]["live"]  # 3 validators, 10% stake
    assert not by_crashed["r0"]["live"]  # 1 validator, 40% stake


def test_e8b_proposer_slots_proportional_to_stake(run_once):
    def proportions():
        schedule = proposer_schedule(sorted(WEIGHTS), WEIGHTS)
        counts = Counter(schedule)
        total = sum(counts.values())
        return [
            {
                "validator": rid,
                "stake": WEIGHTS[rid],
                "proposer_share": round(counts[rid] / total, 3),
                "stake_share": round(WEIGHTS[rid] / sum(WEIGHTS.values()), 3),
            }
            for rid in sorted(WEIGHTS)
        ]

    rows = run_once(proportions)
    print_table(rows, title="E8b: proposer slots vs stake share")
    for row in rows:
        assert row["proposer_share"] == row["stake_share"]
