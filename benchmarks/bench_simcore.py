"""Simulator-core microbenchmarks — the repo's performance trajectory.

Unlike E1–E15, which reproduce paper *shapes*, this file tracks raw
speed of the hot paths every experiment funnels through: the event
heap, the network transport, and a representative harness sweep. It
writes ``BENCH_simcore.json`` at the repo root so successive PRs have
an events/sec trajectory to compare against.

``BASELINE`` holds the numbers measured at the pre-overhaul core (the
``@dataclass(order=True)`` event heap with lambda-per-send transport),
captured on the same machine class that produced the current numbers.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_simcore.py
"""

import json
import time
from pathlib import Path

from repro.bench import print_table, run_architecture, sweep
from repro.core import SystemConfig
from repro.sim.core import Simulation
from repro.sim.network import LanLatency, Network
from repro.sim.node import Node
from repro.workloads import KvWorkload

#: Measured at the pre-overhaul core (PR 1 parent commit); see docstring.
BASELINE = {
    "events_per_sec": 384178.7,
    "sends_per_sec": 373410.0,
    "sweep_wall_seconds": 0.0434,
}

EVENTS = 200_000
OUTSTANDING = 1_000
BROADCAST_ROUNDS = 4_000
FANOUT = 16
REPEATS = 3


def run_event_loop(n_events: int = EVENTS, outstanding: int = OUTSTANDING):
    """Event-loop microbench: ``outstanding`` live timers, each firing
    reschedules itself — a steady-state heap like a consensus cluster's
    timer population."""
    sim = Simulation(seed=1)
    rng = sim.rng
    schedule = sim.schedule

    def tick():
        schedule(rng.random() * 0.01, tick)

    for _ in range(outstanding):
        schedule(rng.random() * 0.01, tick)
    start = time.perf_counter()
    processed = sim.run(max_events=n_events)
    wall = time.perf_counter() - start
    return {"events": processed, "wall_seconds": wall,
            "events_per_sec": processed / wall}


class _Sink(Node):
    def on_message(self, src, message):
        pass


def run_network_broadcast(rounds: int = BROADCAST_ROUNDS, fanout: int = FANOUT):
    """Transport microbench: repeated all-node broadcasts, the dominant
    message pattern of the BFT protocols."""
    sim = Simulation(seed=2)
    net = Network(sim, latency=LanLatency())
    nodes = [_Sink(f"n{i}", sim, net) for i in range(fanout + 1)]
    total = rounds * fanout
    sent = [0]

    def blast():
        nodes[0].broadcast("payload")
        sent[0] += fanout
        if sent[0] < total:
            sim.schedule(0.01, blast)

    sim.schedule(0.0, blast)
    start = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - start
    return {"sends": total, "wall_seconds": wall,
            "sends_per_sec": total / wall}


def run_sweep_wall():
    """End-to-end harness bench: a small skew sweep over the OX system."""
    start = time.perf_counter()
    rows = sweep(
        "skew",
        [0.0, 0.5, 0.9, 0.99],
        lambda theta: run_architecture(
            "ox",
            KvWorkload(theta=theta, seed=11).generate(300),
            SystemConfig(block_size=30, seed=11),
        ),
    )
    wall = time.perf_counter() - start
    return {"rows": len(rows), "sweep_wall_seconds": wall}


def run_simcore(repeats: int = REPEATS, write_json: bool = True):
    """Run every microbench ``repeats`` times, keep the best, write
    ``BENCH_simcore.json`` next to the repo root."""
    best_loop = max((run_event_loop() for _ in range(repeats)),
                    key=lambda r: r["events_per_sec"])
    best_net = max((run_network_broadcast() for _ in range(repeats)),
                   key=lambda r: r["sends_per_sec"])
    best_sweep = min((run_sweep_wall() for _ in range(repeats)),
                     key=lambda r: r["sweep_wall_seconds"])
    current = {
        "events_per_sec": round(best_loop["events_per_sec"], 1),
        "sends_per_sec": round(best_net["sends_per_sec"], 1),
        "sweep_wall_seconds": round(best_sweep["sweep_wall_seconds"], 4),
    }
    report = {"baseline": BASELINE, "current": current}
    if BASELINE["events_per_sec"]:
        report["speedup"] = {
            "events_per_sec": round(
                current["events_per_sec"] / BASELINE["events_per_sec"], 2
            ),
            "sends_per_sec": round(
                current["sends_per_sec"] / BASELINE["sends_per_sec"], 2
            ),
            "sweep_wall_seconds": round(
                BASELINE["sweep_wall_seconds"]
                / max(current["sweep_wall_seconds"], 1e-9),
                2,
            ),
        }
    if write_json:
        path = Path(__file__).resolve().parent.parent / "BENCH_simcore.json"
        path.write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_simcore_microbench(run_once):
    report = run_once(run_simcore)
    rows = [
        {"metric": k, "baseline": report["baseline"][k] or "-",
         "current": v, "speedup": report.get("speedup", {}).get(k, "-")}
        for k, v in report["current"].items()
    ]
    print_table(rows, title="simulator core hot-path trajectory")
    assert report["current"]["events_per_sec"] > 0


if __name__ == "__main__":
    report = run_simcore()
    print(json.dumps(report, indent=2))
