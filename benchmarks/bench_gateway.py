"""Experiment E22 — end-to-end latency gate: percentiles vs offered load
through the front-door gateway.

Open-loop methodology (Geyer et al., arXiv:2311.15433): a Poisson
arrival schedule over a Zipf-skewed client population fires through the
:mod:`repro.gateway` admission tier into each architecture, at offered
loads swept from well below to well past capacity. Every transaction is
stamped submit/admit/order/commit, so the cells report *client-observed*
p50/p95/p99 latency and goodput, not a server-side counter.

Two grids:

* **Latency grid** — ``SYSTEMS_UNDER_TEST`` x ``LOADS``. Gate, per
  system: the lowest load is unsaturated (goodput tracks offered), the
  highest load sits past the saturation knee (goodput plateaus or
  declines while offered load keeps rising), the excess is *counted*
  (sheds/timeouts, never silent — terminal tallies sum back to the
  arrival count), and the bounded queues keep the p99 tail finite.
* **Determinism grid** — the same seeded cell run twice must produce
  byte-identical latency-ledger fingerprints, and a forked-parallel
  sweep must reproduce the serial sweep row for row.

``--smoke`` runs a reduced grid — the CI guard. Run standalone::

    PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke]
"""

import json
import sys
import time
from pathlib import Path

from repro.bench import print_table
from repro.bench.harness import sweep, sweep_parallel
from repro.core import SystemConfig
from repro.gateway import GatewayConfig, GatewayRun
from repro.workloads.openloop import (
    OpenLoopConfig,
    OpenLoopWorkload,
    ramp_steady_burst,
)

#: Three architectures with well-separated capacities (the modelled
#: contract cost pins OX near 1000 tps; XOV pays validation aborts;
#: FastFabric's pipelining roughly doubles OX).
SYSTEMS_UNDER_TEST = ["ox", "xov", "fastfabric"]
LOADS = [300, 600, 1200, 2400, 4800]
STEADY = 2.0
SEED = 11
#: The smoke grid's top two loads must both sit past every smoke
#: system's capacity (FastFabric's is ~2050 tps) so the plateau shows.
SMOKE_LOADS = [300, 2400, 4800]
SMOKE_STEADY = 1.0

#: Unsaturated when goodput >= this fraction of offered; saturated when
#: it falls below. The swept range must cross the boundary.
TRACKING_FRACTION = 0.7
SATURATED_FRACTION = 0.8
#: Bounded queues must keep the committed tail finite even past the
#: knee; this is generous against the modelled block/consensus delays.
P99_CEILING = 10.0

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_gateway.json"


def run_cell(system: str, load: float, steady: float = STEADY,
             seed: int = SEED) -> dict:
    """One (architecture, offered load) cell; returns a flat row."""
    workload = OpenLoopWorkload(OpenLoopConfig(
        clients=200_000,
        invalid_fraction=0.01,
        phases=ramp_steady_burst(load, steady=steady),
        seed=seed,
    ))
    run = GatewayRun(
        system,
        workload,
        gateway_config=GatewayConfig(
            rate=100.0,
            burst=10.0,
            queue_capacity=300,
            max_in_flight=600,
            batch_size=50,
        ),
        system_config=SystemConfig(
            block_size=50, seed=seed, max_time=workload.config.duration + 60.0
        ),
    )
    report = run.run()
    row = report.to_row()
    row["shed_reasons"] = report.sheds
    row["fingerprint"] = report.fingerprint
    row["sigcache_hits"] = report.extra["sigcache.hits"]
    return row


def run_latency_grid(
    systems=None, loads=None, steady: float = STEADY
) -> dict[str, list[dict]]:
    grid = {}
    for system in systems or SYSTEMS_UNDER_TEST:
        grid[system] = sweep(
            "offered", list(loads or LOADS),
            lambda load, system=system: run_cell(system, load, steady),
        )
    return grid


def find_knee(rows: list[dict]) -> float | None:
    """First offered load where goodput falls below the saturated
    fraction of offered — the knee of the latency/goodput curve."""
    for row in rows:
        if row["goodput_tps"] < SATURATED_FRACTION * row["offered"]:
            return row["offered"]
    return None


def check_latency_grid(grid: dict[str, list[dict]]) -> list[str]:
    failures = []
    for system, rows in grid.items():
        low, high = rows[0], rows[-1]
        if low["goodput_tps"] < TRACKING_FRACTION * low["offered"]:
            failures.append(
                f"{system}: unsaturated at {low['offered']} tx/s but "
                f"goodput is only {low['goodput_tps']}"
            )
        if high["goodput_tps"] >= SATURATED_FRACTION * high["offered"]:
            failures.append(
                f"{system}: top load {high['offered']} tx/s never "
                f"saturated (goodput {high['goodput_tps']}) — sweep past "
                "capacity or the knee is invisible"
            )
        best_below = max(row["goodput_tps"] for row in rows[:-1])
        if high["goodput_tps"] > 1.25 * best_below:
            failures.append(
                f"{system}: goodput still growing superlinearly at the "
                f"top load ({high['goodput_tps']} vs {best_below} below) "
                "— no plateau"
            )
        if high["shed"] + high["timeouts"] == 0:
            failures.append(
                f"{system}: saturated at {high['offered']} tx/s with "
                "zero sheds/timeouts — overload is being absorbed "
                "silently somewhere"
            )
        for row in rows:
            where = f"{system}@{row['offered']}"
            accounted = (
                row["committed"] + row["aborted"]
                + row["shed"] + row["timeouts"]
            )
            if accounted != row["arrivals"]:
                failures.append(
                    f"{where}: terminal tallies {accounted} != arrivals "
                    f"{row['arrivals']} — transactions silently lost"
                )
            if not 0 <= row["p50_latency"] <= row["p99_latency"]:
                failures.append(f"{where}: percentiles not ordered")
            if row["committed"] and row["p99_latency"] > P99_CEILING:
                failures.append(
                    f"{where}: p99 {row['p99_latency']}s exceeds the "
                    f"bounded-queue ceiling {P99_CEILING}s"
                )
        if find_knee(rows) is None:
            failures.append(f"{system}: no saturation knee in the sweep")
    return failures


def run_determinism(system: str = "ox", load: float = 1200,
                    steady: float = SMOKE_STEADY) -> dict:
    first = run_cell(system, load, steady)
    second = run_cell(system, load, steady)
    loads = [load / 2, load]
    serial = sweep(
        "offered", loads, lambda lo: run_cell(system, lo, steady)
    )
    parallel = sweep_parallel(
        "offered", loads, lambda lo: run_cell(system, lo, steady), workers=2
    )
    return {
        "system": system,
        "offered": load,
        "fingerprint": first["fingerprint"],
        "replays_identical": first == second,
        "serial_equals_parallel": serial == parallel,
    }


def check_determinism(row: dict) -> list[str]:
    failures = []
    if not row["replays_identical"]:
        failures.append(
            "determinism: same-seed gateway runs produced different "
            "latency ledgers"
        )
    if not row["serial_equals_parallel"]:
        failures.append(
            "determinism: forked-parallel sweep diverged from the serial "
            "sweep — a process-global leaked into the ledger"
        )
    return failures


# -- full run + gate ----------------------------------------------------------


def run_gateway_experiment(write_json: bool = True) -> dict:
    grid = run_latency_grid()
    report = {
        "experiment": "E22",
        "systems": SYSTEMS_UNDER_TEST,
        "loads": LOADS,
        "steady_seconds": STEADY,
        "seed": SEED,
        "latency_grid": grid,
        "knees": {system: find_knee(rows) for system, rows in grid.items()},
        "determinism": run_determinism(),
    }
    if write_json:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    return (
        check_latency_grid(report["latency_grid"])
        + check_determinism(report["determinism"])
    )


# -- smoke mode (CI guard) ----------------------------------------------------


def run_smoke() -> int:
    grid = run_latency_grid(
        systems=["ox", "fastfabric"], loads=SMOKE_LOADS, steady=SMOKE_STEADY
    )
    failures = check_latency_grid(grid)
    failures += check_determinism(run_determinism())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "gateway smoke: open-loop saturation knee visible, overload "
        "counted not silent, accounting conserved, same-seed ledgers "
        "byte-identical serial==parallel OK"
    )
    return 0


def test_gateway_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    def guard():
        grid = run_latency_grid(
            systems=["ox"], loads=SMOKE_LOADS, steady=SMOKE_STEADY
        )
        return check_latency_grid(grid) + check_determinism(
            run_determinism()
        )

    assert run_once(guard) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    started = time.perf_counter()
    report = run_gateway_experiment()
    for system, rows in report["latency_grid"].items():
        print_table(
            [
                {k: v for k, v in row.items()
                 if k not in ("fingerprint", "shed_reasons")}
                for row in rows
            ],
            title=f"E22 {system}: latency vs offered load "
            f"(knee at {report['knees'][system]} tx/s)",
        )
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "gateway gate: knee identified per system, overload counted, "
        "accounting conserved, byte-identical same-seed ledgers "
        f"serial==parallel OK [{time.perf_counter() - started:.1f}s]"
    )
