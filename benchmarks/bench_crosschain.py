"""Experiment E11 — disjoint chains + swaps vs a single shared blockchain.

Paper anchor (section 2.3.1): "each enterprise can maintain its own
independent disjoint blockchain and use techniques such as atomic
cross-chain transactions or Interledger protocol to support
cross-enterprise collaboration. Such techniques are often costly,
complex ... Techniques that support collaborative enterprises on a
single blockchain, on the other hand, either do not support internal
transactions ... or suffer from confidentiality issues."

Measured: the per-collaboration cost of an HTLC atomic swap between two
disjoint chains (on-chain transactions, protocol latency dominated by
timeout windows on the failure path) against the single-blockchain
alternative (one globally ordered cross-enterprise transaction in
Caper), plus the hybrid-cluster sizing table (E11b, SeeMoRe-style).
"""

from repro.bench import print_table
from repro.common.types import Operation, OpType, Transaction, TxType
from repro.confidentiality import AssetChain, AtomicSwap, CaperConfig, CaperSystem
from repro.consensus import hybrid_cluster_size, pure_byzantine_size
from repro.sim.core import Simulation
from repro.workloads.supply_chain import balance_key, supply_chain_registry

N_COLLABORATIONS = 20


def run_swaps():
    sim = Simulation(seed=111)
    chain_a = AssetChain("enterpriseA", sim)
    chain_b = AssetChain("enterpriseB", sim)
    chain_a.deposit("alice", 10_000)
    chain_b.deposit("bob", 10_000)
    start = sim.now
    txs = 0
    for _ in range(N_COLLABORATIONS):
        outcome = AtomicSwap(
            chain_a, chain_b, "alice", "bob", 10, 8, delta=1.0
        ).execute()
        assert outcome.completed
        txs += outcome.on_chain_txs
    # One failure case to expose the timeout-window cost.
    failed = AtomicSwap(
        chain_a, chain_b, "alice", "bob", 10, 8, delta=1.0
    ).execute(bob_cooperates=False)
    return {
        "approach": "disjoint-chains+swap",
        "onchain_txs_per_collab": txs / N_COLLABORATIONS,
        "happy_latency": round((sim.now - start) / N_COLLABORATIONS, 3),
        "failure_unwind_time": 2.0 + 1.0,  # 2*delta timeout + margin
        "needs_global_consensus": "no",
    }


def run_caper_equivalent():
    enterprises = ["enterpriseA", "enterpriseB"]
    system = CaperSystem(
        enterprises, supply_chain_registry(), CaperConfig(seed=112)
    )
    for enterprise in enterprises:
        system.submit(Transaction.create(
            "fund", (enterprise, 10_000),
            submitter=enterprise, tx_type=TxType.INTERNAL,
            declared_ops=(Operation(OpType.READ_WRITE, balance_key(enterprise)),),
            involved={enterprise},
        ))
    for _ in range(N_COLLABORATIONS):
        system.submit(Transaction.create(
            "pay", ("enterpriseA", "enterpriseB", 10),
            submitter="enterpriseA", tx_type=TxType.CROSS_ENTERPRISE,
            declared_ops=(
                Operation(OpType.READ_WRITE, balance_key("enterpriseA")),
                Operation(OpType.READ_WRITE, balance_key("enterpriseB")),
            ),
            involved=set(enterprises),
        ))
    result = system.run()
    cross_latencies = [
        result.latencies.samples[i] for i in range(len(result.latencies))
    ]
    return {
        "approach": "single-chain (caper)",
        "onchain_txs_per_collab": 1.0,
        "happy_latency": round(max(cross_latencies), 3),
        "failure_unwind_time": 0.0,
        "needs_global_consensus": "yes",
    }


def test_e11_crosschain_vs_single_chain(run_once):
    rows = run_once(lambda: [run_swaps(), run_caper_equivalent()])
    print_table(rows, title="E11: atomic swaps vs single shared blockchain")
    swap = next(r for r in rows if "swap" in r["approach"])
    caper = next(r for r in rows if "caper" in r["approach"])
    # The paper's "costly, complex" claim, quantified: a swap needs 4x
    # the on-chain transactions, and its failure path burns real time
    # waiting out hashlock timeouts; the single chain pays with global
    # consensus instead.
    assert swap["onchain_txs_per_collab"] >= 4
    assert caper["onchain_txs_per_collab"] == 1
    assert swap["failure_unwind_time"] > 0
    assert caper["needs_global_consensus"] == "yes"


def test_e11b_hybrid_cluster_sizing(run_once):
    def run():
        rows = []
        for b, c in ((1, 0), (1, 1), (1, 2), (2, 2)):
            rows.append(
                {
                    "byzantine_faults": b,
                    "crash_faults": c,
                    "hybrid_nodes": hybrid_cluster_size(b, c),
                    "all_byzantine_nodes": pure_byzantine_size(b + c),
                    "saved": pure_byzantine_size(b + c)
                    - hybrid_cluster_size(b, c),
                }
            )
        return rows

    rows = run_once(run)
    print_table(
        rows, title="E11b: hybrid (SeeMoRe-style) vs all-Byzantine sizing"
    )
    for row in rows:
        if row["crash_faults"] > 0:
            assert row["saved"] > 0
