"""Shared fixtures for the experiment benchmarks.

Each benchmark runs its experiment exactly once (``benchmark.pedantic``
with one round) — these are reproducibility experiments over a
deterministic simulator, not micro-benchmarks, so repeated timing adds
nothing. The printed tables are the paper-shape evidence recorded in
EXPERIMENTS.md.
"""

import pytest


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment function once under pytest-benchmark."""

    def runner(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return runner
