"""Experiment E1 — architecture comparison under contention.

Paper anchor (section 2.3.3, Discussion): "the OX architecture suffers
from low performance due to the sequential execution of all
transactions whereas both OXII and XOV architectures are able to
execute transactions in parallel. OXII also supports contentious
workloads ... while XOV validates read-write conflicts last resulting
in poor performance."

Reproduced series: throughput and abort rate of OX / OXII / XOV over a
Zipfian key-value workload as skew (contention) rises.
"""

from repro.bench import print_table, run_architecture
from repro.core import SystemConfig
from repro.workloads import KvWorkload

SKEWS = [0.0, 0.6, 0.9, 1.1]
N_TXS = 300
SYSTEM_NAMES = ["ox", "oxii", "xov"]


def _workload(theta, seed=11):
    return KvWorkload(
        n_keys=5000, theta=theta, read_fraction=0.2, rmw_fraction=0.7,
        seed=seed,
    ).generate(N_TXS)


def run_e1():
    rows = []
    for theta in SKEWS:
        for name in SYSTEM_NAMES:
            result = run_architecture(
                name, _workload(theta),
                SystemConfig(block_size=50, seed=21),
            )
            row = {"skew": theta}
            row.update(result.to_row())
            rows.append(row)
    return rows


def test_e1_architecture_comparison(run_once):
    rows = run_once(run_e1)
    print_table(rows, title="E1: OX vs OXII vs XOV across Zipfian skew")

    def pick(skew, system, field):
        return next(
            r[field] for r in rows if r["skew"] == skew and r["system"] == system
        )

    # Paper shape 1: OXII beats OX at low contention (parallel execution).
    assert pick(0.0, "oxii", "throughput_tps") > pick(0.0, "ox", "throughput_tps")
    # Paper shape 2: pessimistic architectures never abort on conflicts.
    for skew in SKEWS:
        assert pick(skew, "ox", "abort_rate") == 0.0
        assert pick(skew, "oxii", "abort_rate") == 0.0
    # Paper shape 3: XOV aborts grow with contention and dominate at
    # high skew.
    assert pick(1.1, "xov", "abort_rate") > pick(0.0, "xov", "abort_rate")
    assert pick(1.1, "xov", "abort_rate") > 0.2
    # Paper shape 4: under high contention XOV goodput falls below OX.
    assert pick(1.1, "xov", "throughput_tps") < pick(1.1, "ox", "throughput_tps")
