"""Experiment E24 — memory-bounded paged storage: the compaction gate.

Three grids over :mod:`repro.storage.snapshots` / :mod:`~.paged`:

* **Ledger grid** — one seeded write stream (overwrites, deletes,
  skewless churn over a bounded keyspace) driven through a
  :class:`SpillBuffer` + :class:`SnapshotStore` under every
  (compaction policy × overlay byte budget) cell. Budgeted cells spill
  the overlay as soon as its deterministic byte estimate crosses the
  budget; every cell also spills on a fixed interval (the stand-in for
  the snapshot interval). Gates: resident overlay bytes stay bounded
  by the budget (+ one entry of slack) under a sustained 10k+ write
  stream while the unbounded control's peak sails past every budget;
  tiered compaction's cumulative bytes written are strictly below the
  full-merge policy's **at byte-identical final state**; and the paged
  read path over each cell's final run set matches the materialized
  oracle key for key.
* **Scan grid** — synthetic multi-run states at 10x-apart sizes probed
  with fixed narrow key ranges through ``PagedStateStore.scan``.
  Gates: every range byte-identical to the materialized oracle's scan,
  and the block-decode count stays O(blocks-in-range) — flat within a
  constant cap while the total block count grows >= 10x.
* **Determinism** — the ledger grid computed twice must be
  byte-identical (wall-clock-free cells), per (policy, budget) cell.

``--smoke`` runs reduced sizes of every gate — the CI guard.
Run standalone::

    PYTHONPATH=src python benchmarks/bench_state_compaction.py [--smoke]
"""

import json
import random
import sys
import time
from pathlib import Path

from repro.bench import print_table
from repro.bench.profiling import reset_hotpath_counters
from repro.ledger.store import STORE_COUNTERS, StateStore, Version
from repro.storage import (
    STORAGE_TIER_COMPACTIONS,
    BlockCache,
    MemoryBackend,
    PagedStateStore,
    SnapshotStore,
    SpillBuffer,
    state_root,
)
from repro.storage.codec import entry_to_row
from repro.storage.snapshots import RunWriter, run_name

WRITES = 12_000
KEYSPACE = 3_000
BUDGETS = [8 * 1024, 32 * 1024]  # plus the unbounded (0) control
SPILL_INTERVAL = 2_000  # writes per interval spill (snapshot stand-in)
DELETE_RATE = 0.05
SCAN_BULK = [4_000, 40_000]  # 10x block growth
SCAN_RUNS = 4
SCAN_RANGE_WIDTH = 48

SMOKE_WRITES = 2_500
SMOKE_KEYSPACE = 800
SMOKE_BUDGETS = [4 * 1024, 16 * 1024]
SMOKE_INTERVAL = 800
SMOKE_BULK = [1_000, 10_000]

#: A budgeted cell may overshoot by at most the one write that tripped
#: the check — entry overhead + key + a short value, comfortably < 256B.
BUDGET_SLACK_BYTES = 256
#: Narrow-range scans decode at most a couple of blocks per run per
#: range, independent of total state size — the O(blocks-in-range) gate.
SCAN_DECODE_CAP_PER_RANGE = 4 * SCAN_RUNS

JSON_PATH = (
    Path(__file__).resolve().parent.parent / "BENCH_state_compaction.json"
)


# -- the seeded write stream ---------------------------------------------------


def write_stream(writes: int, keyspace: int, seed: int):
    """Deterministic churn: overwrites dominate, a few deletes."""
    rng = random.Random(seed)
    for i in range(writes):
        key = f"key{rng.randrange(keyspace):07d}"
        if rng.random() < DELETE_RATE:
            yield i, key, None
        else:
            yield i, key, f"v{i}-{'x' * (i % 13)}"


def entry_fingerprint(store, key: str) -> str:
    """Canonical JSON of one lookup — the byte-for-byte unit."""
    entry = store.get_versioned(key)
    return json.dumps(
        [entry.value, entry.version.height, entry.version.tx_index],
        sort_keys=True, separators=(",", ":"),
    )


# -- ledger grid: (policy x budget) cells --------------------------------------


def run_ledger_cell(
    policy: str, budget_bytes: int, writes: int, keyspace: int,
    interval: int, seed: int = 41,
) -> dict:
    """One write stream through spill + compaction under one cell."""
    backend = MemoryBackend()
    store = SnapshotStore(backend, policy=policy)
    reset_hotpath_counters()
    spill = SpillBuffer()
    manifest: dict = {"runs": [], "next_run_id": 1}
    budget_spills = interval_spills = 0
    since_spill = 0
    for i, key, value in write_stream(writes, keyspace, seed):
        if value is None:
            spill.mark_deleted(key)
        else:
            spill.put(key, value, Version(1, i))
        since_spill += 1
        over_budget = 0 < budget_bytes <= spill.resident_bytes
        due = since_spill >= interval
        if over_budget or due:
            manifest = store.spill(spill, manifest)
            spill = SpillBuffer()
            since_spill = 0
            if over_budget and not due:
                budget_spills += 1
            else:
                interval_spills += 1
    if since_spill:
        manifest = store.spill(spill, manifest)
    entries = list(manifest.get("runs", ()))
    oracle = store.load_state(manifest)
    paged = PagedStateStore(backend, entries, BlockCache(32 * 1024))
    paged_rows = [
        (key, entry.value, entry.version.height, entry.version.tx_index)
        for key, entry in paged.scan()
    ]
    oracle_rows = [
        (key, entry.value, entry.version.height, entry.version.tx_index)
        for key, entry in oracle.scan()
    ]
    return {
        "policy": policy,
        "budget_bytes": budget_bytes,
        "writes": writes,
        "runs": len(entries),
        "tiers": [int(e.get("tier", 0)) for e in entries],
        "budget_spills": budget_spills,
        "interval_spills": interval_spills,
        "overlay_peak_bytes": STORE_COUNTERS["overlay_resident_peak"],
        "spill_bytes": STORE_COUNTERS["spill_bytes_written"],
        "compaction_bytes": STORE_COUNTERS["compaction_bytes_written"],
        "tier_compactions": dict(sorted(STORAGE_TIER_COMPACTIONS.items())),
        "live_keys": len(oracle_rows),
        "state_root": state_root(oracle),
        "paged_matches": paged_rows == oracle_rows,
    }


def run_ledger_grid(
    writes: int = WRITES, keyspace: int = KEYSPACE,
    budgets=None, interval: int = SPILL_INTERVAL,
) -> list[dict]:
    rows = []
    for policy in ("full", "tiered"):
        for budget in [0] + list(budgets or BUDGETS):
            rows.append(
                run_ledger_cell(policy, budget, writes, keyspace, interval)
            )
    return rows


def check_ledger_grid(rows: list[dict]) -> list[str]:
    failures = []
    unbounded_peak = min(
        row["overlay_peak_bytes"] for row in rows if not row["budget_bytes"]
    )
    for row in rows:
        where = f"ledger[{row['policy']}@{row['budget_bytes']}]"
        if not row["paged_matches"]:
            failures.append(
                f"{where}: paged scan diverged from the materialized oracle"
            )
        if row["budget_bytes"]:
            cap = row["budget_bytes"] + BUDGET_SLACK_BYTES
            if row["overlay_peak_bytes"] > cap:
                failures.append(
                    f"{where}: overlay peak {row['overlay_peak_bytes']}B "
                    f"exceeds budget+slack ({cap}B) — not bounded"
                )
            if row["budget_spills"] == 0:
                failures.append(
                    f"{where}: the budget never forced a spill — the "
                    "bound is vacuous"
                )
            if unbounded_peak <= row["budget_bytes"]:
                failures.append(
                    f"{where}: the unbounded control peaked at only "
                    f"{unbounded_peak}B — the budget does not bind"
                )
    by_budget: dict[int, dict[str, dict]] = {}
    for row in rows:
        by_budget.setdefault(row["budget_bytes"], {})[row["policy"]] = row
    write_amp_pairs = 0
    for budget, pair in sorted(by_budget.items()):
        full, tiered = pair.get("full"), pair.get("tiered")
        if not full or not tiered:
            continue
        where = f"ledger[budget={budget}]"
        if full["state_root"] != tiered["state_root"]:
            failures.append(
                f"{where}: tiered and full final states diverge — the "
                "write-amp comparison is meaningless"
            )
        if full["compaction_bytes"] == 0:
            # The unbounded control spills too few runs for the full
            # policy to ever merge — no write-amp to compare there.
            continue
        write_amp_pairs += 1
        if tiered["compaction_bytes"] >= full["compaction_bytes"]:
            failures.append(
                f"{where}: tiered compaction wrote "
                f"{tiered['compaction_bytes']}B, not below full's "
                f"{full['compaction_bytes']}B — no write-amp win"
            )
        if not tiered["tier_compactions"]:
            failures.append(f"{where}: tiered cell ran no band merges")
    if not write_amp_pairs:
        failures.append(
            "ledger grid: no cell ever triggered a full-policy merge — "
            "the write-amp gate is vacuous"
        )
    return failures


# -- scan grid: decode work vs state size --------------------------------------


def build_scan_state(backend, keys: int, runs: int, seed: int) -> list[dict]:
    """A spill history: run 1 writes everything, later runs overwrite
    slices and tombstone a few keys (which scans must mask)."""
    rng = random.Random(seed)
    entries = []
    writer = RunWriter(backend, run_name(1), keys)
    for i in range(keys):
        writer.add(entry_to_row(f"key{i:07d}", f"v1-{i}", Version(1, i)))
    entries.append(writer.finish())
    for run_id in range(2, runs + 1):
        touched = sorted(rng.sample(range(keys), max(1, keys // 16)))
        writer = RunWriter(backend, run_name(run_id), len(touched))
        for index, i in enumerate(touched):
            if rng.random() < 0.1:
                row = entry_to_row(f"key{i:07d}", None, Version(-1, -1))
            else:
                row = entry_to_row(
                    f"key{i:07d}", f"v{run_id}-{i}", Version(run_id, index)
                )
            writer.add(row)
        entries.append(writer.finish())
    return entries


def scan_ranges(small_keys: int) -> list[tuple[str, str]]:
    """Fixed narrow ranges that exist at every bulk size (all bases
    land inside the smallest keyspace)."""
    bases = [0, small_keys // 3, small_keys - SCAN_RANGE_WIDTH - 1]
    return [
        (f"key{base:07d}", f"key{base + SCAN_RANGE_WIDTH:07d}")
        for base in bases
    ]


def run_scan_cell(
    keys: int, ranges: list[tuple[str, str]], seed: int = 43
) -> dict:
    backend = MemoryBackend()
    entries = build_scan_state(backend, keys, SCAN_RUNS, seed)
    manifest = {"runs": entries, "next_run_id": SCAN_RUNS + 1}
    oracle = SnapshotStore(backend).load_state(manifest)
    paged = PagedStateStore(backend, entries, BlockCache(64 * 1024))
    total_blocks = sum(run.block_count() for run in paged._runs)
    reset_hotpath_counters()
    mismatches = 0
    rows_scanned = 0
    for start, end in ranges:
        got = [
            (key, entry.value, entry.version.height, entry.version.tx_index)
            for key, entry in paged.scan(start, end)
        ]
        want = [
            (key, entry.value, entry.version.height, entry.version.tx_index)
            for key, entry in oracle.scan(start, end)
        ]
        rows_scanned += len(want)
        if got != want:
            mismatches += 1
    # Degenerate shapes must agree too: empty and point ranges.
    probe = ranges[0][0]
    empty_agree = (
        list(paged.scan("key9999998", "key9999999"))
        == list(oracle.scan("key9999998", "key9999999"))
    )
    point_agree = (
        [key for key, _ in paged.scan(probe, probe)]
        == [key for key, _ in oracle.scan(probe, probe)]
    )
    return {
        "keys": keys,
        "total_blocks": total_blocks,
        "ranges": len(ranges),
        "rows_scanned": rows_scanned,
        "range_mismatches": mismatches,
        "empty_and_point_agree": empty_agree and point_agree,
        "range_block_decodes": STORE_COUNTERS["range_block_decodes"],
        "decode_cap": SCAN_DECODE_CAP_PER_RANGE * len(ranges),
    }


def run_scan_grid(bulks=None) -> list[dict]:
    sizes = list(bulks or SCAN_BULK)
    ranges = scan_ranges(min(sizes))
    return [run_scan_cell(keys, ranges) for keys in sizes]


def check_scan_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"scan[keys={row['keys']}]"
        if row["range_mismatches"]:
            failures.append(
                f"{where}: {row['range_mismatches']} ranges returned "
                "different rows through the paged path"
            )
        if not row["empty_and_point_agree"]:
            failures.append(f"{where}: empty/point ranges disagree")
        if row["rows_scanned"] == 0:
            failures.append(f"{where}: the ranges matched no rows — the "
                            "scan gate is vacuous")
        if row["range_block_decodes"] > row["decode_cap"]:
            failures.append(
                f"{where}: {row['range_block_decodes']} block decodes "
                f"(> cap {row['decode_cap']}) — scan work is scaling "
                "with state size"
            )
    if len(rows) >= 2:
        small, large = rows[0], rows[-1]
        if large["total_blocks"] < 5 * small["total_blocks"]:
            failures.append(
                "scan grid: block count did not grow enough to test "
                f"independence ({small['total_blocks']} -> "
                f"{large['total_blocks']})"
            )
    return failures


# -- same-seed determinism -----------------------------------------------------


def run_determinism(
    writes: int, keyspace: int, budgets, interval: int
) -> dict:
    first = run_ledger_grid(writes, keyspace, budgets, interval)
    second = run_ledger_grid(writes, keyspace, budgets, interval)
    return {
        "writes": writes,
        "cells": len(first),
        "replays_identical": first == second,
    }


def check_determinism(row: dict) -> list[str]:
    if not row["replays_identical"]:
        return [
            "determinism: same-seed ledger grids diverged — spill or "
            "compaction is not deterministic"
        ]
    return []


# -- full run + gate ----------------------------------------------------------


def run_state_compaction(write_json: bool = True) -> dict:
    report = {
        "experiment": "E24",
        "writes": WRITES,
        "keyspace": KEYSPACE,
        "budgets": BUDGETS,
        "spill_interval": SPILL_INTERVAL,
        "scan_bulk": SCAN_BULK,
        "ledger_grid": run_ledger_grid(),
        "scan_grid": run_scan_grid(),
        "determinism": run_determinism(
            WRITES // 4, KEYSPACE // 4, [b // 4 for b in BUDGETS],
            SPILL_INTERVAL // 4,
        ),
    }
    if write_json:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    return (
        check_ledger_grid(report["ledger_grid"])
        + check_scan_grid(report["scan_grid"])
        + check_determinism(report["determinism"])
    )


# -- smoke mode (CI guard) ----------------------------------------------------


def smoke_failures() -> list[str]:
    failures = check_ledger_grid(run_ledger_grid(
        SMOKE_WRITES, SMOKE_KEYSPACE, SMOKE_BUDGETS, SMOKE_INTERVAL
    ))
    failures += check_scan_grid(run_scan_grid(SMOKE_BULK))
    return failures


def run_smoke() -> int:
    failures = smoke_failures()
    failures += check_determinism(run_determinism(
        SMOKE_WRITES // 2, SMOKE_KEYSPACE // 2, SMOKE_BUDGETS,
        SMOKE_INTERVAL // 2,
    ))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "state-compaction smoke: overlay bytes bounded by budget, tiered "
        "write-amp below full at identical state, range decodes flat "
        "across 10x blocks, same-seed replay identical OK"
    )
    return 0


def test_state_compaction_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    assert run_once(smoke_failures) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    started = time.perf_counter()
    report = run_state_compaction()
    ledger_view = [
        {k: v for k, v in row.items()
         if k not in ("tiers", "tier_compactions", "state_root")}
        for row in report["ledger_grid"]
    ]
    print_table(
        ledger_view,
        title=f"E24 spill + compaction grid ({WRITES} writes, "
        f"{KEYSPACE} keys)",
    )
    print_table(
        report["scan_grid"],
        title="E24 indexed range scans (decode work vs 10x block growth)",
    )
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "state-compaction gate: bounded overlay bytes, tiered < full "
        "write bytes at identical state, O(blocks-in-range) scans, "
        f"same-seed determinism OK [{time.perf_counter() - started:.1f}s]"
    )
