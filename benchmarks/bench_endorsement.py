"""Experiment E13 — endorsement policies and multi-enterprise execution.

Paper anchors: (2.3.1) "within a channel, each enterprise has its own
set of executor (endorser) nodes where the transactions of the
enterprise are executed by its endorser nodes"; (2.3.3) XOV "supports
non-deterministic execution of transactions by executing transactions
first and detecting any inconsistencies early on", and ParBlockchain
"is able to support multi-enterprise systems" with per-enterprise
executor sets.

Measured: (a) endorsement-policy strictness vs throughput and what a
lying endorser costs under each policy; (b) OXII shared-pool vs
per-enterprise pools over a supply-chain workload.
"""

from repro.bench import print_table
from repro.common.types import Transaction
from repro.core import OxiiSystem, SystemConfig, XovSystem
from repro.crypto.signatures import MembershipService
from repro.execution.contracts import standard_registry
from repro.execution.endorsement import (
    EndorsingPeerGroup,
    all_of,
    any_of,
    majority_of,
)
from repro.workloads import KvWorkload, SupplyChainWorkload, supply_chain_registry

ORGS = ["acme", "globex", "initech"]
POLICIES = {
    "any-of-3": any_of(*ORGS),
    "majority-of-3": majority_of(*ORGS),
    "all-of-3": all_of(*ORGS),
}


def run_policy(policy_name, liar=None):
    group = EndorsingPeerGroup(
        standard_registry(), MembershipService(), ORGS
    )
    if liar:
        group.faulty_orgs.add(liar)
    system = XovSystem(
        SystemConfig(block_size=40, seed=131),
        peer_group=group,
        policy=POLICIES[policy_name],
    )
    workload = KvWorkload(n_keys=5000, theta=0.0, seed=13)
    for tx in workload.generate(150):
        system.submit(tx)
    result = system.run()
    return {
        "policy": policy_name,
        "lying_org": liar or "-",
        "committed": result.committed,
        "mismatch_aborts": int(
            result.extra.get("abort.endorsement_mismatch", 0)
        ),
        "throughput_tps": round(result.throughput, 1),
    }


def test_e13a_endorsement_policies(run_once):
    def run():
        rows = []
        for name in POLICIES:
            rows.append(run_policy(name))
        for name in POLICIES:
            rows.append(run_policy(name, liar="initech"))
        return rows

    rows = run_once(run)
    print_table(rows, title="E13a: endorsement policy vs a lying endorser")

    def pick(policy, liar, field):
        return next(
            r[field] for r in rows
            if r["policy"] == policy and r["lying_org"] == liar
        )

    # Honest network: every policy commits (modulo the odd MVCC conflict
    # intrinsic to the workload).
    for name in POLICIES:
        assert pick(name, "-", "committed") >= 148
    # One liar: policies with honest-majority agreement outvote it;
    # all-of-3 detects the mismatch and aborts everything — the
    # non-determinism is caught pre-commit, never corrupting state.
    assert pick("majority-of-3", "initech", "committed") >= 148
    assert pick("any-of-3", "initech", "committed") >= 148
    assert pick("all-of-3", "initech", "committed") == 0
    assert pick("all-of-3", "initech", "mismatch_aborts") == 150


def test_e13b_per_enterprise_executors(run_once):
    def run():
        rows = []
        for internal_fraction in (0.9, 0.5):
            for mode, kwargs in (
                ("shared-pool", {}),
                ("per-enterprise", {
                    "per_enterprise": True,
                    "executors_per_enterprise": 1,
                    "cross_enterprise_latency": 0.005,
                }),
            ):
                workload = SupplyChainWorkload(
                    seed=14, internal_fraction=internal_fraction
                )
                system = OxiiSystem(
                    SystemConfig(block_size=40, seed=132, executors=4),
                    registry=supply_chain_registry(),
                    **kwargs,
                )
                for tx in (
                    workload.setup_transactions() + workload.generate(150)
                ):
                    system.submit(tx)
                result = system.run()
                rows.append(
                    {
                        "internal_fraction": internal_fraction,
                        "executors": mode,
                        "committed": result.committed,
                        "throughput_tps": round(result.throughput, 1),
                    }
                )
        return rows

    rows = run_once(run)
    print_table(rows, title="E13b: OXII shared pool vs per-enterprise pools")

    def pick(fraction, mode):
        return next(
            r["throughput_tps"] for r in rows
            if r["internal_fraction"] == fraction and r["executors"] == mode
        )

    # Cross-enterprise handoffs make the split deployment pay more as
    # the cross share grows (0.5 internal => half the work crosses).
    gap_mostly_internal = pick(0.9, "shared-pool") - pick(0.9, "per-enterprise")
    gap_mostly_cross = pick(0.5, "shared-pool") - pick(0.5, "per-enterprise")
    assert gap_mostly_cross >= gap_mostly_internal - 30  # tolerance
