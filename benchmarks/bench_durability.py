"""Experiment E21 — durability gate: fsync policy vs commit tps, and
recovery time vs WAL-tail length.

Three grids over the :mod:`repro.storage` tier:

* **Fsync-policy grid** (real files, :class:`OsBackend` in a temp
  directory) — the same canonical chain committed under ``per-block``,
  ``group:4`` and ``async``. Records wall commit tps and the measured
  fsync count per policy. Gate: fsync counts strictly ordered
  (per-block >= group >= async), and after a clean shutdown every
  policy recovers the identical tip hash and Merkle state root — the
  policy buys throughput by widening the *crash* loss window, never by
  corrupting what it does persist.
* **Recovery grid** (deterministic :class:`MemoryBackend`) — one chain,
  power-failed under ``per-block`` at several snapshot intervals, so
  the WAL tail a restart must replay grows from a few records to the
  whole chain. Gate: replayed records == tail length exactly, the
  modelled restart delay (the one the chaos engine charges as virtual
  time) grows monotonically with the tail, and every recovery lands on
  the serial oracle's exact root.
* **Determinism grid** — the same seeded chaos run (torn-disk profile,
  crash + recover mid-stream) executed twice; tips, state roots and
  recovery telemetry must be byte-identical.

``--smoke`` runs reduced sizes of all three gates — the CI guard.
Run standalone::

    PYTHONPATH=src python benchmarks/bench_durability.py [--smoke]
"""

import json
import sys
import tempfile
import time
from pathlib import Path

from repro.bench import print_table
from repro.consensus.monitors import MONITOR_REGISTRY
from repro.execution.contracts import standard_registry
from repro.execution.serial import execute_block_serially
from repro.ledger.store import StateStore, Version
from repro.simtest.plan import FaultSpec, PlanSpec
from repro.storage import (
    STORAGE_COUNTERS,
    DurableCluster,
    DurableLedger,
    MemoryBackend,
    OsBackend,
    SpillBuffer,
    build_canonical_chain,
    state_root,
)

POLICIES = ["per-block", "group:4", "async"]
POLICY_TXS = 400
RECOVERY_TXS = 80
RECOVERY_INTERVALS = [4, 8, 16, 64]
SMOKE_POLICY_TXS = 60
SMOKE_RECOVERY_TXS = 24
SMOKE_INTERVALS = [3, 6, 24]

#: The chaos engine's modelled restart cost (mirrors DurableNode).
BASE_RECOVERY_DELAY = 0.05
PER_RECORD_DELAY = 0.01

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_durability.json"


def commit_chain(ledger, chain):
    """The DurableNode commit path, inlined: execute serially, commit the
    record, spill on the interval. Returns the per-height state roots."""
    store, spill = StateStore(), SpillBuffer()
    registry = standard_registry()
    roots = {0: state_root(store)}
    for block in chain:
        if block.height == 0:
            continue
        report = execute_block_serially(block, store, registry)
        for index, rwset in enumerate(report.rwsets):
            if rwset.ok:
                spill.apply_writes(rwset.writes, Version(block.height, index))
        root = state_root(store)
        roots[block.height] = root
        ledger.commit_block(block, root)
        if ledger.maybe_snapshot(block, root, spill):
            spill = SpillBuffer()
    return roots


# -- fsync-policy grid (real files) -------------------------------------------


def run_policy_cell(policy: str, txs: int, seed: int = 21) -> dict:
    chain = build_canonical_chain(txs=txs, seed=seed)
    with tempfile.TemporaryDirectory(prefix="repro-dur-") as tmp:
        backend = OsBackend(tmp)
        ledger = DurableLedger(backend, policy=policy, snapshot_interval=8)
        fsyncs_before = STORAGE_COUNTERS["fsyncs"]
        started = time.perf_counter()
        roots = commit_chain(ledger, chain)
        wall = time.perf_counter() - started
        fsyncs = STORAGE_COUNTERS["fsyncs"] - fsyncs_before
        ledger.flush()  # clean shutdown: every policy persists its tail
        backend.simulate_crash()
        recovered = DurableLedger(
            OsBackend(tmp), policy=policy, snapshot_interval=8
        )
        result = recovered.recover(standard_registry)
        recovered.backend.close()
        backend.close()
        return {
            "policy": policy,
            "blocks": chain.height,
            "txs": txs,
            "fsyncs": fsyncs,
            "wall_seconds": round(wall, 4),
            "commit_tps": round(txs / wall, 1) if wall > 0 else 0.0,
            "recovered_height": result.tail.height,
            # Tx ids carry a process-global sequence number, so block
            # hashes are only comparable against the *same* chain —
            # never across cells. Fold the comparison in here.
            "tip_matches": result.tail.tip_hash() == chain.tip_hash(),
            "state_root": state_root(result.store),
            "oracle_root": roots[chain.height],
            "full_height": result.tail.height == chain.height,
        }


def run_policy_grid(txs: int = POLICY_TXS) -> list[dict]:
    return [run_policy_cell(policy, txs) for policy in POLICIES]


def check_policy_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"policy {row['policy']}"
        if not row["full_height"]:
            failures.append(
                f"{where}: clean shutdown recovered only height "
                f"{row['recovered_height']} of {row['blocks']}"
            )
        if row["state_root"] != row["oracle_root"]:
            failures.append(f"{where}: recovered root diverges from oracle")
        if not row["tip_matches"]:
            failures.append(f"{where}: recovered tip != canonical chain tip")
    if len({row["state_root"] for row in rows}) != 1:
        failures.append("policy grid: state roots differ across policies")
    by_policy = {row["policy"]: row["fsyncs"] for row in rows}
    if not (
        by_policy["per-block"] >= by_policy["group:4"] >= by_policy["async"]
    ):
        failures.append(
            f"policy grid: fsync counts not ordered "
            f"per-block({by_policy['per-block']}) >= "
            f"group:4({by_policy['group:4']}) >= async({by_policy['async']})"
        )
    if by_policy["per-block"] <= by_policy["async"]:
        failures.append(
            "policy grid: per-block did not fsync more than async — the "
            "policies are not being exercised"
        )
    return failures


# -- recovery-time grid (deterministic backend) --------------------------------


def run_recovery_cell(snapshot_interval: int, txs: int, seed: int = 23) -> dict:
    chain = build_canonical_chain(txs=txs, seed=seed)
    backend = MemoryBackend()
    ledger = DurableLedger(
        backend, policy="per-block", snapshot_interval=snapshot_interval
    )
    roots = commit_chain(ledger, chain)
    ledger.power_fail()
    expected_tail = ledger.tail_record_count()
    started = time.perf_counter()
    result = ledger.recover(standard_registry)
    wall = time.perf_counter() - started
    return {
        "snapshot_interval": snapshot_interval,
        "blocks": chain.height,
        "snapshot_height": result.snapshot_height,
        "wal_tail_records": expected_tail,
        "replayed": result.replayed,
        "modelled_delay_s": round(
            BASE_RECOVERY_DELAY + PER_RECORD_DELAY * result.replayed, 4
        ),
        "recover_wall_seconds": round(wall, 4),
        "recovered_height": result.tail.height,
        "root_matches_oracle": state_root(result.store)
        == roots[result.tail.height],
        "full_height": result.tail.height == chain.height,
    }


def run_recovery_grid(
    txs: int = RECOVERY_TXS, intervals=None
) -> list[dict]:
    return [
        run_recovery_cell(interval, txs)
        for interval in (intervals or RECOVERY_INTERVALS)
    ]


def check_recovery_grid(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"recovery@interval={row['snapshot_interval']}"
        if row["replayed"] != row["wal_tail_records"]:
            failures.append(
                f"{where}: replayed {row['replayed']} but the WAL tail "
                f"holds {row['wal_tail_records']} records"
            )
        if row["replayed"] != row["blocks"] - row["snapshot_height"]:
            failures.append(
                f"{where}: tail length is not blocks - snapshot_height"
            )
        if not row["full_height"]:
            failures.append(f"{where}: per-block recovery lost blocks")
        if not row["root_matches_oracle"]:
            failures.append(f"{where}: recovered root diverges from oracle")
    # Larger intervals leave longer tails: replay work and the modelled
    # restart delay must both grow monotonically.
    for prev, cur in zip(rows, rows[1:]):
        if cur["replayed"] < prev["replayed"]:
            failures.append(
                "recovery grid: replayed records not monotone in "
                "snapshot interval"
            )
        if cur["modelled_delay_s"] < prev["modelled_delay_s"]:
            failures.append("recovery grid: modelled delay not monotone")
    return failures


# -- same-seed determinism -----------------------------------------------------


def chaos_fingerprint(seed: int = 5, txs: int = 12) -> dict:
    cluster = DurableCluster(
        n=3, txs=txs, seed=seed,
        fault_profile={"partial_write": 0.35, "bit_flip": 0.25},
    )
    monitor = MONITOR_REGISTRY["durable-recovery"]()
    cluster.add_monitor(monitor)
    PlanSpec((
        FaultSpec(kind="crash", time=0.9, node="d0"),
        FaultSpec(kind="recover", time=1.6, node="d0"),
    )).build().apply(cluster.sim, cluster.network)
    decided = cluster.run(timeout=30.0, min_time=1.7)
    # Tx ids carry a process-global sequence, so raw hashes differ even
    # between identical runs; normalise every hash against this run's
    # own canonical chain. State roots are hash-free and compare as-is.
    return {
        "decided": decided,
        "violations": monitor.violations + cluster.durable_audit(),
        "tips_canonical": {
            node_id: node.tail.tip_hash() == cluster.chain.tip_hash()
            for node_id, node in sorted(cluster.nodes.items())
        },
        "roots": {
            node_id: state_root(node.store)
            for node_id, node in sorted(cluster.nodes.items())
        },
        "recoveries": [
            {
                **{k: v for k, v in event.items() if k != "tip_hash"},
                "tip_canonical": event["tip_hash"]
                == cluster.chain.block(event["height"]).block_hash,
            }
            for event in monitor.recoveries
        ],
    }


def run_determinism(seed: int = 5, txs: int = 12) -> dict:
    first = chaos_fingerprint(seed, txs)
    second = chaos_fingerprint(seed, txs)
    return {
        "seed": seed,
        "decided": first["decided"],
        "violations": first["violations"],
        "tips_canonical": first["tips_canonical"],
        "recoveries": first["recoveries"],
        "replays_identical": first == second,
    }


def check_determinism(row: dict) -> list[str]:
    failures = []
    if not row["decided"]:
        failures.append("determinism: chaos run did not catch up")
    if row["violations"]:
        failures.append(f"determinism: violations {row['violations']}")
    if not row["replays_identical"]:
        failures.append(
            "determinism: same-seed chaos replays diverged — the storage "
            "fault injection is not deterministic"
        )
    return failures


# -- full run + gate ----------------------------------------------------------


def run_durability(write_json: bool = True) -> dict:
    report = {
        "experiment": "E21",
        "policies": POLICIES,
        "policy_txs": POLICY_TXS,
        "recovery_txs": RECOVERY_TXS,
        "recovery_intervals": RECOVERY_INTERVALS,
        "policy_grid": run_policy_grid(),
        "recovery_grid": run_recovery_grid(),
        "determinism": run_determinism(),
    }
    if write_json:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    return (
        check_policy_grid(report["policy_grid"])
        + check_recovery_grid(report["recovery_grid"])
        + check_determinism(report["determinism"])
    )


# -- smoke mode (CI guard) ----------------------------------------------------


def run_smoke() -> int:
    failures = check_policy_grid(run_policy_grid(SMOKE_POLICY_TXS))
    failures += check_recovery_grid(
        run_recovery_grid(SMOKE_RECOVERY_TXS, SMOKE_INTERVALS)
    )
    failures += check_determinism(run_determinism(txs=10))
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "durability smoke: fsync ordering + clean-shutdown equivalence, "
        "recovery replay == WAL tail with monotone modelled delay, "
        "same-seed chaos replay identical OK"
    )
    return 0


def test_durability_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    def guard():
        return (
            check_recovery_grid(
                run_recovery_grid(SMOKE_RECOVERY_TXS, SMOKE_INTERVALS)
            )
            + check_determinism(run_determinism(txs=10))
        )

    assert run_once(guard) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    started = time.perf_counter()
    report = run_durability()
    print_table(
        [
            {k: v for k, v in row.items()
             if k not in ("state_root", "oracle_root")}
            for row in report["policy_grid"]
        ],
        title=f"E21 fsync policy vs commit tps ({POLICY_TXS}-tx chain, "
        "real files)",
    )
    print_table(
        report["recovery_grid"],
        title=f"E21 recovery time vs WAL-tail length ({RECOVERY_TXS}-tx "
        "chain, per-block)",
    )
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    print(
        "durability gate: fsync ordering, clean-shutdown equivalence "
        "across policies, replay == tail, monotone modelled delay, "
        f"same-seed determinism OK [{time.perf_counter() - started:.1f}s]"
    )
