"""Experiment E4 — confidentiality techniques compared.

Paper anchor (section 2.3.1, Discussion): "view-based techniques are
costly in managing views ... processing public transactions requires
establishing consensus among all involved views. ... Cryptographic
techniques ... result in the overhead of maintaining data in the
blockchain ledger and blockchain state of irrelevant enterprises."

Reproduced series: Caper vs multi-channel Fabric over the supply-chain
workload as the cross-enterprise share rises (throughput, cross-view
consensus work, confidentiality audits), plus the private-data-
collection storage overhead table.
"""

from repro.bench import print_table
from repro.common.types import TxType
from repro.confidentiality import (
    CaperConfig,
    CaperSystem,
    ChannelConfig,
    MultiChannelFabric,
    PrivateDataChannel,
)
from repro.workloads import SupplyChainWorkload, supply_chain_registry

CROSS_FRACTIONS = [0.1, 0.3, 0.5]
N_TXS = 150


def _txs(cross_fraction, seed=41):
    workload = SupplyChainWorkload(
        seed=seed, internal_fraction=1.0 - cross_fraction
    )
    return workload, workload.setup_transactions() + workload.generate(N_TXS)


def run_caper(cross_fraction):
    workload, txs = _txs(cross_fraction)
    system = CaperSystem(
        workload.enterprises, supply_chain_registry(), CaperConfig(seed=42)
    )
    for tx in txs:
        system.submit(tx)
    result = system.run()
    assert system.leakage_report() == {}
    row = {"cross_fraction": cross_fraction, "system": "caper"}
    row.update(
        {
            "committed": result.committed,
            "throughput_tps": round(result.throughput, 1),
            "mean_latency": round(result.latencies.mean(), 4),
            "global_consensus": int(result.extra["global_decisions"]),
            "messages": result.messages,
        }
    )
    return row


def run_channels(cross_fraction):
    workload, txs = _txs(cross_fraction)
    channels = {e: {e} for e in workload.enterprises}
    system = MultiChannelFabric(
        channels, supply_chain_registry(), ChannelConfig(seed=42)
    )
    for tx in txs:
        if tx.tx_type is TxType.INTERNAL:
            system.submit(tx, [tx.submitter])
        else:
            system.submit(tx, sorted(tx.involved))
    result = system.run()
    row = {"cross_fraction": cross_fraction, "system": "channels"}
    row.update(
        {
            "committed": result.committed,
            "throughput_tps": round(result.throughput, 1),
            "mean_latency": round(result.latencies.mean(), 4),
            "global_consensus": int(
                result.extra.get("channels.2pc_prepares", 0)
                + result.extra.get("channels.cross_commits", 0)
            ),
            "messages": result.messages,
        }
    )
    return row


def run_e4():
    rows = []
    for fraction in CROSS_FRACTIONS:
        rows.append(run_caper(fraction))
        rows.append(run_channels(fraction))
    return rows


def test_e4_view_based_confidentiality(run_once):
    rows = run_once(run_e4)
    print_table(rows, title="E4: Caper vs multi-channel Fabric")

    def pick(fraction, system, field):
        return next(
            r[field]
            for r in rows
            if r["cross_fraction"] == fraction and r["system"] == system
        )

    # Cross-view consensus work grows with the cross-enterprise share
    # for BOTH view-based techniques — the Discussion's cost driver.
    for system in ("caper", "channels"):
        assert pick(0.5, system, "global_consensus") > pick(
            0.1, system, "global_consensus"
        )
    # Channels pay 2PC on every cross tx, so their cross work is at
    # least Caper's single global ordering per cross tx.
    assert pick(0.5, "channels", "mean_latency") > pick(
        0.1, "channels", "mean_latency"
    )


def run_pdc_storage():
    channel = PrivateDataChannel({"a", "b", "c", "d"})
    channel.define_collection("ab", {"a", "b"})
    for i in range(50):
        channel.put_private("ab", "a", f"k{i}", i)
    rows = []
    for member in sorted({"a", "b", "c", "d"}):
        values, hashes = channel.bytes_stored_by(member)
        rows.append(
            {"peer": member, "private_values": values, "ledger_hashes": hashes}
        )
    return rows


def test_e4b_private_data_collection_overhead(run_once):
    rows = run_once(run_pdc_storage)
    print_table(rows, title="E4b: private data collections storage per peer")
    by_peer = {r["peer"]: r for r in rows}
    # Members hold values; irrelevant peers still hold every hash —
    # exactly the overhead the Discussion attributes to the technique.
    assert by_peer["a"]["private_values"] == 50
    assert by_peer["c"]["private_values"] == 0
    assert by_peer["c"]["ledger_hashes"] == 50
