"""Experiment E2 — the Fabric optimisation family.

Paper anchors (section 2.3.3): FastFabric "parallelizes the transaction
validation pipeline to increase Fabric's throughput for conflict-free
transaction workloads"; Fabric++ reorders "to reconcile the potential
conflicts"; FabricSharp "eliminates unnecessary aborts"; XOX re-executes
"transactions that are invalidated due to read-write conflicts".

Reproduced series: goodput + abort rate of XOV, FastFabric, Fabric++,
FabricSharp and XOX over rising contention.
"""

from repro.bench import print_table, run_architecture
from repro.core import SystemConfig
from repro.workloads import KvWorkload

SKEWS = [0.0, 0.8, 1.1]
N_TXS = 300
FAMILY = ["xov", "fastfabric", "fabricpp", "fabricsharp", "xox"]


def _workload(theta, seed=13):
    # Mixed readers and writers: the asymmetric conflicts reordering can
    # actually fix (pure RMW cycles are unfixable by any order).
    return KvWorkload(
        n_keys=2000, theta=theta, read_fraction=0.45, rmw_fraction=0.3,
        seed=seed,
    ).generate(N_TXS)


def run_e2():
    rows = []
    for theta in SKEWS:
        for name in FAMILY:
            result = run_architecture(
                name, _workload(theta), SystemConfig(block_size=50, seed=23)
            )
            row = {"skew": theta}
            row.update(result.to_row())
            rows.append(row)
    return rows


def test_e2_fabric_family(run_once):
    rows = run_once(run_e2)
    print_table(rows, title="E2: Fabric optimisation family across skew")

    def pick(skew, system, field):
        return next(
            r[field] for r in rows if r["skew"] == skew and r["system"] == system
        )

    # FastFabric's gain where the paper claims it: conflict-free workloads.
    assert pick(0.0, "fastfabric", "throughput_tps") > 1.5 * pick(
        0.0, "xov", "throughput_tps"
    )
    # Reordering reduces aborts under contention.
    assert pick(1.1, "fabricpp", "abort_rate") <= pick(1.1, "xov", "abort_rate")
    # FabricSharp never aborts more than Fabric++.
    for skew in SKEWS:
        assert (
            pick(skew, "fabricsharp", "abort_rate")
            <= pick(skew, "fabricpp", "abort_rate") + 0.02
        )
    # XOX recovers every deterministic conflict casualty.
    assert pick(1.1, "xox", "abort_rate") == 0.0
    # ... but pays for it in latency relative to plain XOV.
    assert pick(1.1, "xox", "mean_latency") >= pick(1.1, "xov", "mean_latency")
