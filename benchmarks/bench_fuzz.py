"""E17 — deterministic simulation testing as an experiment.

Two claims are measured, in the DST tradition of FoundationDB's
simulator and TigerBeetle's VOPR:

* **Hardened protocols**: a seeded random-walk fuzz campaign over all
  six consensus protocols — within-budget crash/recover schedules, one
  healing partition window, bounded message-level faults — finds zero
  safety or liveness violations. This is the end state after the DST
  engine found (and the fixes for) five real liveness bugs in the
  seed implementations: PBFT view-timer starvation, PBFT sequence
  holes across view changes, Paxos leadership non-demotion, Paxos slot
  holes with no no-op fill, and a Tendermint round-skew livelock (see
  ``tests/capsules/*.json``, one hardened schedule per bug).
* **Detection power**: re-introducing a known kernel bug (the
  "ghost timer": crash epochs not invalidating pre-crash timers) via a
  behaviour flag, the same campaigns find it again and shrink every
  failure to a crash/recover pair — two faults — that replays exactly.

Both campaigns are pure functions of their master seeds: the report is
byte-identical run to run, which is what lets CI pin a fuzz job to a
seed range and treat any diff as a regression.

Writes ``BENCH_fuzz.json`` at the repo root.

Run standalone (no pytest needed)::

    PYTHONPATH=src python benchmarks/bench_fuzz.py
"""

import json
import time
from pathlib import Path

from repro.bench import print_table
from repro.consensus import PROTOCOLS
from repro.simtest import FuzzConfig, ScenarioSpec, run_fuzz

CLEAN_RUNS = 15
GHOST_RUNS = 12
MASTER_SEED = 7

#: Protocols whose recovery paths the ghost-timer bug wedges (the bug
#: needs a replica that crashes, recovers, and then trusts a timer).
GHOST_DETECTORS = ("pbft", "tendermint", "ibft")


def fuzz_campaigns():
    rows = []
    for protocol in sorted(PROTOCOLS):
        scenario = ScenarioSpec(protocol=protocol, n=4, txs=4, seed=0)
        started = time.perf_counter()
        report = run_fuzz(FuzzConfig(
            scenario=scenario, runs=CLEAN_RUNS, seed=MASTER_SEED,
        ))
        rows.append({
            "campaign": "clean",
            "protocol": protocol,
            "runs": report.runs,
            "faults_injected": report.faults_injected,
            "violations": report.violations,
            "shrunk_sizes": [f["shrunk_faults"] for f in report.failures],
            "wall_seconds": round(time.perf_counter() - started, 2),
        })
    for protocol in GHOST_DETECTORS:
        scenario = ScenarioSpec(
            protocol=protocol, n=4, txs=4, seed=0, flags=("ghost-timers",),
        )
        started = time.perf_counter()
        report = run_fuzz(FuzzConfig(
            scenario=scenario, runs=GHOST_RUNS, seed=MASTER_SEED,
        ))
        rows.append({
            "campaign": "ghost-timers",
            "protocol": protocol,
            "runs": report.runs,
            "faults_injected": report.faults_injected,
            "violations": report.violations,
            "shrunk_sizes": [f["shrunk_faults"] for f in report.failures],
            "wall_seconds": round(time.perf_counter() - started, 2),
        })
    return rows


def _check_shape(rows):
    for row in rows:
        if row["campaign"] == "clean":
            assert row["violations"] == 0, (
                f"{row['protocol']}: hardened protocol failed clean fuzz: "
                f"{row['violations']} violation(s)"
            )
        else:
            assert row["violations"] >= 1, (
                f"{row['protocol']}: ghost-timer bug went undetected"
            )
            assert all(size <= 2 for size in row["shrunk_sizes"]), (
                f"{row['protocol']}: shrinker left >2 faults: "
                f"{row['shrunk_sizes']}"
            )


def run_fuzz_experiment():
    rows = fuzz_campaigns()
    _check_shape(rows)
    report = {
        "experiment": "E17-simulation-testing",
        "master_seed": MASTER_SEED,
        "clean_runs_per_protocol": CLEAN_RUNS,
        "ghost_runs_per_protocol": GHOST_RUNS,
        "rows": rows,
    }
    Path("BENCH_fuzz.json").write_text(json.dumps(report, indent=2) + "\n")
    return report


def test_fuzz_experiment(run_once):
    report = run_once(run_fuzz_experiment)
    display = [
        {
            "campaign": row["campaign"],
            "protocol": row["protocol"],
            "runs": row["runs"],
            "faults": row["faults_injected"],
            "violations": row["violations"],
            "shrunk_to": ",".join(map(str, row["shrunk_sizes"])) or "-",
            "wall_s": row["wall_seconds"],
        }
        for row in report["rows"]
    ]
    print_table(display, title="E17: DST fuzz campaigns (clean + ghost)")
    assert len(report["rows"]) == len(PROTOCOLS) + len(GHOST_DETECTORS)


if __name__ == "__main__":
    report = run_fuzz_experiment()
    print(json.dumps(report, indent=2))
