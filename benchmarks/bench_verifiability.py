"""Experiment E5 — verifiability: ZKP (Quorum) vs tokens (Separ).

Paper anchor (section 2.3.2, Discussion): "cryptographic techniques are
truly decentralized ... Zero-knowledge proofs, however, have
considerable overhead. ... Token-based techniques ... require a
centralized authority ... There is, however, no need to replicate all
transactions on every node resulting in improved performance."

Reproduced series: (a) real proof generation/verification cost versus
range-proof bit width; (b) end-to-end throughput of Quorum private
transfers vs Separ tokenized claims on equivalent volume.
"""

import time

from repro.bench import print_table
from repro.crypto.commitments import PedersenParams
from repro.crypto.group import simulation_group
from repro.verifiability import (
    PrivateWallet,
    QuorumConfig,
    QuorumSystem,
    RangeProof,
    SeparConfig,
    SeparSystem,
    TokenAuthority,
)
from repro.workloads import CrowdworkWorkload

N_OPS = 40


def run_proof_costs():
    params = PedersenParams.create(simulation_group())
    rows = []
    for bits in (4, 8, 16, 32):
        r = params.random_blinding()
        value = (1 << bits) - 1
        commitment = params.commit(value, r)
        start = time.perf_counter()
        proof = RangeProof.prove(params, value, r, bits=bits, context="e5")
        proved = time.perf_counter()
        assert proof.verify(params, commitment, "e5")
        verified = time.perf_counter()
        rows.append(
            {
                "range_bits": bits,
                "prove_ms": round(1000 * (proved - start), 2),
                "verify_ms": round(1000 * (verified - proved), 2),
                "proof_elements": 2 * bits + bits * 4,
            }
        )
    return rows


def test_e5a_zkp_overhead_scales_with_statement(run_once):
    rows = run_once(run_proof_costs)
    print_table(rows, title="E5a: range proof cost vs bit width (real crypto)")
    costs = [r["verify_ms"] for r in rows]
    assert costs == sorted(costs)  # linear growth in bits
    assert rows[-1]["verify_ms"] > 4 * rows[0]["verify_ms"]


def run_quorum_side():
    system = QuorumSystem(QuorumConfig(seed=51, range_bits=8))
    alice = PrivateWallet("alice", system.params)
    bob = PrivateWallet("bob", system.params)
    # Balance must fit the 8-bit range proofs used for new balances.
    system.register_account(
        "acc:alice", alice.open_account("acc:alice", 250), alice.public_key
    )
    system.register_account(
        "acc:bob", bob.open_account("acc:bob", 0), bob.public_key
    )
    wall_start = time.perf_counter()
    for _ in range(N_OPS):
        transfer, amount, blinding = alice.build_transfer(
            "acc:alice", "acc:bob", 3, bits=8
        )
        bob.receive("acc:bob", amount, blinding)
        system.submit_private(transfer)
    proving_wall = time.perf_counter() - wall_start
    result = system.run()
    return {
        "system": "quorum-zkp",
        "committed": result.committed,
        "throughput_tps": round(result.throughput, 1),
        "mean_latency": round(result.latencies.mean(), 4),
        "client_proof_wall_s": round(proving_wall, 3),
        "trusted_authority": "no",
    }


def run_separ_side():
    authority = TokenAuthority()
    workload = CrowdworkWorkload(workers=20, platforms=3, seed=51)
    system = SeparSystem(
        workload.platform_ids, authority, SeparConfig(seed=51)
    )
    wallets = {w: authority.issue(w, 0, 40) for w in workload.worker_ids}
    wall_start = time.perf_counter()
    submitted = 0
    while submitted < N_OPS:
        claim = workload.next_claim(0)
        wallet = wallets[claim.worker]
        if len(wallet) < claim.hours:
            continue
        tokens = [wallet.pop() for _ in range(claim.hours)]
        system.submit(SeparSystem.tokenize(claim, tokens))
        submitted += 1
    token_wall = time.perf_counter() - wall_start
    result = system.run()
    return {
        "system": "separ-tokens",
        "committed": result.committed,
        "throughput_tps": round(result.throughput, 1),
        "mean_latency": round(result.latencies.mean(), 4),
        "client_proof_wall_s": round(token_wall, 3),
        "trusted_authority": "yes",
    }


def test_e5b_zkp_vs_tokens_end_to_end(run_once):
    rows = run_once(lambda: [run_quorum_side(), run_separ_side()])
    print_table(rows, title="E5b: Quorum private txs vs Separ token claims")
    quorum = next(r for r in rows if r["system"] == "quorum-zkp")
    separ = next(r for r in rows if r["system"] == "separ-tokens")
    # The paper's trade-off: tokens outperform ZKPs but need the
    # trusted authority; ZKPs carry real per-transaction crypto cost.
    assert separ["throughput_tps"] > quorum["throughput_tps"]
    assert separ["mean_latency"] < quorum["mean_latency"]
    assert quorum["trusted_authority"] == "no"
    assert separ["trusted_authority"] == "yes"
