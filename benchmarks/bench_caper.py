"""Experiment E9 — Caper's local ordering of internal transactions.

Paper anchor (section 2.3.1): "each enterprise orders and executes its
internal transactions locally while cross-enterprise transactions are
public ... ordering cross-enterprise transactions requires global
agreement among all enterprises."

Reproduced series: local vs global consensus invocations and mean
latency as the internal share of the supply-chain workload varies —
internal transactions must never touch global consensus, and internal
commit latency must beat cross-enterprise commit latency.
"""

from repro.bench import print_table
from repro.common.types import TxType
from repro.confidentiality import CaperConfig, CaperSystem
from repro.workloads import SupplyChainWorkload, supply_chain_registry

INTERNAL_FRACTIONS = [1.0, 0.8, 0.5, 0.2]
N_TXS = 120


def run_point(internal_fraction, seed=91):
    workload = SupplyChainWorkload(
        seed=seed, internal_fraction=internal_fraction
    )
    system = CaperSystem(
        workload.enterprises, supply_chain_registry(), CaperConfig(seed=seed)
    )
    txs = workload.setup_transactions() + workload.generate(N_TXS)
    for tx in txs:
        system.submit(tx)
    result = system.run()
    internal_lat, cross_lat = [], []
    for tx in txs:
        if tx.tx_id not in system._commit_times:
            continue
        latency = (
            system._commit_times[tx.tx_id] - system._submit_times[tx.tx_id]
        )
        if tx.tx_type is TxType.INTERNAL:
            internal_lat.append(latency)
        else:
            cross_lat.append(latency)
    return {
        "internal_fraction": internal_fraction,
        "committed": result.committed,
        "local_decisions": int(result.extra["local_decisions"]),
        "global_decisions": int(result.extra["global_decisions"]),
        "internal_latency": round(
            sum(internal_lat) / len(internal_lat), 4
        ) if internal_lat else 0.0,
        "cross_latency": round(
            sum(cross_lat) / len(cross_lat), 4
        ) if cross_lat else 0.0,
        "leaks": len(system.leakage_report()),
    }


def run_e9():
    return [run_point(fraction) for fraction in INTERNAL_FRACTIONS]


def test_e9_caper_local_vs_global(run_once):
    rows = run_once(run_e9)
    print_table(rows, title="E9: Caper local vs global consensus load")
    by_fraction = {r["internal_fraction"]: r for r in rows}
    # All-internal workload never invokes global consensus.
    assert by_fraction[1.0]["global_decisions"] == 0
    # Global consensus load tracks the cross-enterprise share.
    assert (
        by_fraction[0.2]["global_decisions"]
        > by_fraction[0.8]["global_decisions"]
    )
    # Confidentiality holds at every mix.
    assert all(r["leaks"] == 0 for r in rows)
    # Cross-enterprise commits are slower than enterprise-local ones
    # (global agreement among all enterprises).
    mixed = by_fraction[0.5]
    assert mixed["cross_latency"] > mixed["internal_latency"]
