"""Experiment E7 — AHL committee sizes and the trusted-hardware effect.

Paper anchor (section 2.3.4): "To ensure safety with a high probability,
each committee must include at least 80 nodes (instead of ~600 nodes in
OmniLedger). To decrease the number of required nodes within each
committee, AHL employs trusted hardware that restricts the malicious
behavior of a node."

Reproduced: the hypergeometric committee-failure calculation, the
minimum committee size with and without trusted hardware (resilience
1/3 vs 1/2), and the quorum-size effect inside a committee.
"""

from repro.bench import print_table
from repro.consensus.base import ClusterConfig
from repro.sharding import committee_failure_probability, min_committee_size

POPULATION = 2000
BYZ_FRACTION = 0.2  # 20% of all nodes are malicious


def run_failure_curve():
    byzantine = int(POPULATION * BYZ_FRACTION)
    rows = []
    for size in (20, 40, 60, 80, 120, 200):
        plain = committee_failure_probability(
            POPULATION, byzantine, size, resilience=1 / 3
        )
        attested = committee_failure_probability(
            POPULATION, byzantine, size, resilience=1 / 2
        )
        rows.append(
            {
                "committee_size": size,
                "p_fail_resilience_1/3": f"{plain:.2e}",
                "p_fail_resilience_1/2": f"{attested:.2e}",
            }
        )
    return rows


def test_e7a_committee_failure_probability(run_once):
    rows = run_once(run_failure_curve)
    print_table(
        rows,
        title=f"E7a: committee failure probability "
        f"(N={POPULATION}, {BYZ_FRACTION:.0%} Byzantine)",
    )
    probabilities = [float(r["p_fail_resilience_1/3"]) for r in rows]
    assert probabilities == sorted(probabilities, reverse=True)


def run_min_sizes():
    rows = []
    for epsilon_exp in (10, 16, 20):
        plain = min_committee_size(
            POPULATION, BYZ_FRACTION, epsilon=2**-epsilon_exp, resilience=1 / 3
        )
        attested = min_committee_size(
            POPULATION, BYZ_FRACTION, epsilon=2**-epsilon_exp, resilience=1 / 2
        )
        rows.append(
            {
                "epsilon": f"2^-{epsilon_exp}",
                "min_size_no_hardware": plain,
                "min_size_trusted_hw": attested,
                "saving": f"{1 - attested / plain:.0%}",
            }
        )
    return rows


def test_e7b_trusted_hardware_shrinks_committees(run_once):
    rows = run_once(run_min_sizes)
    print_table(rows, title="E7b: min committee size, 1/3 vs 1/2 resilience")
    for row in rows:
        assert row["min_size_trusted_hw"] < row["min_size_no_hardware"]
    # The paper's ballpark: with ~2^-20 safety the plain committee is in
    # the tens-of-nodes range (cf. "at least 80 nodes"), far below
    # OmniLedger's ~600.
    final = rows[-1]
    assert 40 <= final["min_size_no_hardware"] <= 300


def run_quorum_table():
    rows = []
    for n in (4, 7, 10):
        plain = ClusterConfig(
            replica_ids=[f"r{i}" for i in range(n)], byzantine=True
        )
        attested = ClusterConfig(
            replica_ids=[f"r{i}" for i in range(n)],
            byzantine=True,
            trusted_hardware=True,
        )
        rows.append(
            {
                "committee_size": n,
                "f_plain": plain.f,
                "quorum_plain": plain.quorum,
                "f_trusted_hw": attested.f,
                "quorum_trusted_hw": attested.quorum,
            }
        )
    return rows


def test_e7c_quorum_reduction_inside_committee(run_once):
    rows = run_once(run_quorum_table)
    print_table(rows, title="E7c: 3f+1 vs 2f+1 committees (trusted hardware)")
    for row in rows:
        assert row["f_trusted_hw"] >= row["f_plain"]
        assert row["quorum_trusted_hw"] <= row["quorum_plain"]
