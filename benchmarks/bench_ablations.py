"""Experiment E12 — ablations of the design choices DESIGN.md calls out.

Each ablation switches one modelling decision off to show it is
load-bearing:

* (a) **signature cost** — FastFabric's advantage exists only because
  validation verifies signatures; with free crypto, parallel validation
  buys nothing.
* (b) **executor pool size** — OXII's makespan scheduling actually uses
  the pool; throughput scales with executors until the dependency
  structure binds.
* (c) **reordering algorithm** — FabricSharp's exact minimum feedback
  vertex set never aborts more than Fabric++'s greedy heuristic, and
  the gap is real on dense conflict graphs.
* (d) **WAN latency** — the sharded systems' cross-shard penalty comes
  from the network model; on a LAN-only deployment it nearly vanishes.
"""

import random

from repro.bench import print_table, run_architecture
from repro.common.types import Operation, OpType, Transaction
from repro.core import SystemConfig
from repro.execution.contracts import standard_registry
from repro.execution.mvcc import endorse
from repro.execution.reorder import reorder_fabricpp, reorder_fabricsharp
from repro.ledger.store import StateStore
from repro.sharding import ShardedConfig, SharPerSystem
from repro.workloads import KvWorkload, SmallBankWorkload, smallbank_registry


def test_e12a_fastfabric_gain_requires_crypto_cost(run_once):
    def run():
        rows = []
        for verify_cost in (0.0, 0.0005, 0.002):
            for name in ("xov", "fastfabric"):
                workload = KvWorkload(n_keys=5000, theta=0.0, seed=5)
                result = run_architecture(
                    name,
                    workload.generate(200),
                    SystemConfig(
                        block_size=50, seed=15, verify_cost=verify_cost
                    ),
                )
                rows.append(
                    {
                        "verify_cost": verify_cost,
                        "system": name,
                        "throughput_tps": round(result.throughput, 1),
                    }
                )
        return rows

    rows = run_once(run)
    print_table(rows, title="E12a: FastFabric speedup vs signature cost")

    def speedup(cost):
        xov = next(r for r in rows if r["verify_cost"] == cost
                   and r["system"] == "xov")["throughput_tps"]
        fast = next(r for r in rows if r["verify_cost"] == cost
                    and r["system"] == "fastfabric")["throughput_tps"]
        return fast / xov

    # With free crypto the two systems are nearly identical; the gap
    # widens as verification gets more expensive.
    assert speedup(0.0) < 1.2
    assert speedup(0.002) > speedup(0.0005) > speedup(0.0)


def test_e12b_oxii_scales_with_executor_pool(run_once):
    def run():
        rows = []
        for executors in (1, 2, 4, 8):
            workload = KvWorkload(n_keys=5000, theta=0.0, seed=6)
            result = run_architecture(
                "oxii",
                workload.generate(200),
                SystemConfig(
                    block_size=50, seed=16, executors=executors,
                    arrival_rate=None,
                ),
            )
            rows.append(
                {
                    "executors": executors,
                    "throughput_tps": round(result.throughput, 1),
                }
            )
        return rows

    rows = run_once(run)
    print_table(rows, title="E12b: OXII throughput vs executor pool")
    tps = [r["throughput_tps"] for r in rows]
    assert tps[1] > 1.5 * tps[0]  # 2 executors ~2x one
    assert tps == sorted(tps)


def test_e12c_exact_reordering_beats_greedy_on_dense_graphs(run_once):
    def run():
        registry = standard_registry()
        rng = random.Random(17)
        total_pp = total_sharp = blocks = 0
        for _ in range(40):
            store = StateStore()
            txs = []
            for _ in range(10):
                key = f"hot{rng.randrange(3)}"
                if rng.random() < 0.5:
                    tx = Transaction.create(
                        "increment", (key,),
                        declared_ops=(Operation(OpType.READ_WRITE, key),),
                    )
                else:
                    tx = Transaction.create(
                        "kv_get", (key,),
                        declared_ops=(Operation(OpType.READ, key),),
                    )
                txs.append(tx)
            endorsed = [endorse(t, store.snapshot(), registry) for t in txs]
            pp = reorder_fabricpp(endorsed)
            sharp = reorder_fabricsharp(endorsed, store)
            total_pp += len(pp.aborted)
            total_sharp += len(sharp.aborted) + len(sharp.early_aborted)
            blocks += 1
        return [
            {
                "algorithm": "fabricpp-greedy",
                "aborts_per_block": round(total_pp / blocks, 2),
            },
            {
                "algorithm": "fabricsharp-exact",
                "aborts_per_block": round(total_sharp / blocks, 2),
            },
        ]

    rows = run_once(run)
    print_table(rows, title="E12c: greedy vs exact cycle-breaking aborts")
    greedy = rows[0]["aborts_per_block"]
    exact = rows[1]["aborts_per_block"]
    assert exact <= greedy


def test_e12d_cross_shard_penalty_is_the_wan(run_once):
    def run():
        rows = []
        for wan_latency in (0.001, 0.05):
            workload = SmallBankWorkload(
                n_customers=200, n_shards=4, cross_shard_fraction=0.4, seed=7
            )

            def shard_of_key(key, wl=workload):
                return wl.shard_of(key.split(":")[1])

            system = SharPerSystem(
                smallbank_registry(), shard_of_key,
                ShardedConfig(n_clusters=4, seed=18, wan_latency=wan_latency),
            )
            for tx in workload.setup_transactions() + workload.generate(150):
                system.submit(tx)
            result = system.run()
            rows.append(
                {
                    "wan_latency_s": wan_latency,
                    "intra_latency": round(
                        result.extra["intra_mean_latency"], 4
                    ),
                    "cross_latency": round(
                        result.extra["cross_mean_latency"], 4
                    ),
                    "cross_penalty_x": round(
                        result.extra["cross_mean_latency"]
                        / max(result.extra["intra_mean_latency"], 1e-9),
                        1,
                    ),
                }
            )
        return rows

    rows = run_once(run)
    print_table(rows, title="E12d: SharPer cross-shard penalty vs WAN latency")
    lan, wan = rows
    assert wan["cross_penalty_x"] > 3 * lan["cross_penalty_x"]
