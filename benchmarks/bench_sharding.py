"""Experiment E6 — scalability: single-ledger vs sharded-ledger designs.

Paper anchors (section 2.3.4, Discussion): centralized cross-shard
processing (AHL) needs "a large number of intra- and cross-cluster
communication phases"; the decentralized approach (SharPer) "processes
transactions in less number of phases"; Saguaro's LCA coordination
yields "lower latency"; single-ledger ResilientDB avoids cross-shard
latency "by replicating the entire data on every cluster. However,
exchanging messages between all clusters for every single transaction
still results in high latency."

Reproduced series: (a) throughput vs number of clusters at a fixed
cross-shard ratio; (b) cross-shard ratio sweep at a fixed cluster count.
"""

from repro.bench import print_table
from repro.sharding import (
    AhlSystem,
    ResilientDbSystem,
    SaguaroConfig,
    SaguaroSystem,
    ShardedConfig,
    SharPerSystem,
)
from repro.workloads import SmallBankWorkload, smallbank_registry

SYSTEMS = {
    "sharper": SharPerSystem,
    "ahl": AhlSystem,
    "saguaro": SaguaroSystem,
    "resilientdb": ResilientDbSystem,
}
N_TXS = 200


def run_system(name, n_clusters, cross_fraction, seed=61):
    workload = SmallBankWorkload(
        n_customers=400,
        n_shards=n_clusters,
        cross_shard_fraction=cross_fraction,
        seed=seed,
    )

    def shard_of_key(key):
        return workload.shard_of(key.split(":")[1])

    config_cls = SaguaroConfig if name == "saguaro" else ShardedConfig
    # Saturating arrival rate: per-shard execution capacity (1 ms/tx)
    # must be the bottleneck for scale-out to be observable.
    system = SYSTEMS[name](
        smallbank_registry(), shard_of_key,
        config_cls(n_clusters=n_clusters, seed=seed, arrival_rate=20_000.0),
    )
    for tx in workload.setup_transactions() + workload.generate(N_TXS):
        system.submit(tx)
    result = system.run()
    return {
        "system": name,
        "clusters": n_clusters,
        "cross_fraction": cross_fraction,
        "committed": result.committed,
        "throughput_tps": round(result.throughput, 1),
        "intra_latency": round(result.extra["intra_mean_latency"], 4),
        "cross_latency": round(result.extra["cross_mean_latency"], 4),
        "messages": result.messages,
    }


def run_e6_scaleout():
    rows = []
    for n_clusters in (2, 4, 8):
        for name in SYSTEMS:
            rows.append(run_system(name, n_clusters, cross_fraction=0.1))
    return rows


def test_e6a_scaleout_with_clusters(run_once):
    rows = run_once(run_e6_scaleout)
    print_table(rows, title="E6a: throughput vs cluster count (10% cross)")

    def pick(name, clusters, field):
        return next(
            r[field]
            for r in rows
            if r["system"] == name and r["clusters"] == clusters
        )

    # Sharded designs gain throughput with more clusters (mostly-intra
    # workload); ResilientDB executes everything everywhere, so each
    # transaction still pays the global exchange.
    assert pick("sharper", 8, "throughput_tps") > pick(
        "sharper", 2, "throughput_tps"
    )
    # ResilientDB has no cross-shard latency penalty at all...
    assert pick("resilientdb", 4, "cross_latency") == 0.0
    # ...but its per-transaction latency carries the WAN multicast the
    # sharded designs only pay on cross-shard transactions.
    assert pick("resilientdb", 4, "intra_latency") > pick(
        "sharper", 4, "intra_latency"
    )


def run_e6_cross_sweep():
    rows = []
    for fraction in (0.0, 0.2, 0.5):
        for name in ("sharper", "ahl", "saguaro"):
            rows.append(run_system(name, 4, fraction, seed=62))
    return rows


def test_e6b_cross_shard_ratio_sweep(run_once):
    rows = run_once(run_e6_cross_sweep)
    print_table(rows, title="E6b: cross-shard ratio sweep (4 clusters)")

    def pick(name, fraction, field):
        return next(
            r[field]
            for r in rows
            if r["system"] == name and r["cross_fraction"] == fraction
        )

    # Cross-shard work costs every sharded design throughput.
    for name in ("sharper", "ahl", "saguaro"):
        assert pick(name, 0.5, "throughput_tps") < pick(
            name, 0.0, "throughput_tps"
        )
    # Who wins on cross-shard latency, per the Discussion:
    # AHL (reference committee, most phases) is the slowest; SharPer's
    # flattened protocol has the fewest phases; Saguaro sits between on
    # a uniform WAN but beats AHL through LCA coordination.
    assert pick("ahl", 0.5, "cross_latency") > pick(
        "saguaro", 0.5, "cross_latency"
    )
    assert pick("ahl", 0.5, "cross_latency") > pick(
        "sharper", 0.5, "cross_latency"
    )
