"""Experiment E20 — multi-core wave execution gate (process-pool backend).

The :mod:`repro.execution.parallel_backend` executor fans conflict-free
dependency-graph waves across forked worker processes — the first path
in this repository whose throughput is *wall-clock*, not modelled. This
file is its acceptance gate:

* **Scaling grid** — one 10k-transaction block of compute-heavy KV
  contracts executed at 1/2/4 workers. Every cell must be byte-identical
  (same ``block_effects_digest``, same commit set, serial oracle green,
  zero degraded waves). Wall tps must rise monotonically with the
  worker count **for counts the host can actually run in parallel**:
  the gate enforces scaling only up to ``len(os.sched_getaffinity(0))``
  cores — on a single-core container 2- and 4-worker cells are recorded
  but not gated (the pool adds IPC without adding CPUs), while a >= 4
  core CI runner enforces the full 1 -> 2 -> 4 curve. The
  machine-independent ``modelled_parallel_seconds`` curve must be
  strictly decreasing everywhere, on any host.
* **Equivalence grid** — 10k-transaction KV and SmallBank blocks at
  every worker count, each compared row by row
  (:meth:`~repro.execution.rwsets.RWSet.digest`) and state by state
  against :func:`~repro.execution.serial.execute_block_serially` on a
  twin store.

``--smoke`` is the CI guard: 1k-transaction equivalence at 2 workers on
both workloads plus the ``REPRO_BENCH_WORKERS`` validation contract —
nonzero exit on any failure. Run standalone::

    PYTHONPATH=src python benchmarks/bench_parallel_exec.py [--smoke]
"""

import hashlib
import json
import os
import sys
import time
from pathlib import Path

from repro.bench import print_table
from repro.common.errors import ConfigError
from repro.execution import ParallelExecutor, block_effects_digest, resolve_workers
from repro.execution.contracts import ContractRegistry, standard_registry
from repro.execution.rwsets import execute_with_capture
from repro.execution.serial import execute_block_serially
from repro.ledger.block import Block, GENESIS_PREV_HASH
from repro.ledger.store import StateStore, Version
from repro.workloads import KvWorkload, SmallBankWorkload, smallbank_registry

WORKER_COUNTS = [1, 2, 4]
SCALE_TXS = 10_000
EQUIV_TXS = 10_000
SMOKE_TXS = 1_000
REPS = 3
#: sha256 iterations per contract call — enough compute per transaction
#: (~25 us) that worker CPU, not IPC, dominates the pooled wall time.
SPIN = 60

JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_parallel.json"


def available_cores() -> int:
    """CPUs this process may actually run on (the scaling-gate bound)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


# -- workloads ----------------------------------------------------------------


def _spin(token) -> int:
    """Deterministic busy work (identical in workers and the oracle)."""
    digest = repr(token).encode()
    for _ in range(SPIN):
        digest = hashlib.sha256(digest).digest()
    return digest[0]


def heavy_registry() -> ContractRegistry:
    """The stock KV contracts with a deterministic sha256 spin bolted on,
    so the scaling grid measures compute fan-out rather than IPC."""
    registry = ContractRegistry()

    def kv_set(ctx, key, value):
        _spin((key, value))
        ctx.put(key, value)
        return value

    def kv_get(ctx, key):
        _spin(key)
        return ctx.get(key)

    def increment(ctx, key, amount=1):
        _spin((key, amount))
        updated = ctx.get(key, 0) + amount
        ctx.put(key, updated)
        return updated

    def read_many(ctx, *keys):
        for key in keys:
            _spin(key)
        return [ctx.get(key) for key in keys]

    registry.register("kv_set", kv_set)
    registry.register("kv_get", kv_get)
    registry.register("increment", increment)
    registry.register("read_many", read_many)
    return registry


def kv_block(n_txs: int, theta: float = 0.2, seed: int = 71) -> Block:
    txs = KvWorkload(
        n_keys=4 * n_txs, theta=theta, read_fraction=0.2, rmw_fraction=0.6,
        seed=seed,
    ).generate(n_txs)
    return Block.create(
        height=1, prev_hash=GENESIS_PREV_HASH, transactions=txs
    )


def smallbank_case(n_txs: int, seed: int = 73):
    """A SmallBank block plus a factory for stores seeded with its
    setup deposits (each run needs its own, identically seeded store)."""
    workload = SmallBankWorkload(n_customers=max(2, n_txs // 5), seed=seed)
    setup = workload.setup_transactions()
    block = Block.create(
        height=1, prev_hash=GENESIS_PREV_HASH,
        transactions=workload.generate(n_txs),
    )

    def seeded_store() -> StateStore:
        store = StateStore()
        registry = smallbank_registry()
        for index, tx in enumerate(setup):
            rwset = execute_with_capture(registry, tx, store)
            if rwset.ok:
                store.apply_writes(rwset.writes, Version(0, index))
        return store

    return block, seeded_store


# -- scaling grid -------------------------------------------------------------


def run_scaling_cell(block: Block, workers: int, reps: int = REPS) -> dict:
    """Best-of-``reps`` wall time at ``workers``, plus one oracle-checked
    verification run (the oracle replay is the checker, not the
    workload, so it stays out of the timed reps)."""
    n = len(block.transactions)
    best = None
    for _ in range(reps):
        with ParallelExecutor(
            heavy_registry(), StateStore(), workers, check_oracle=False
        ) as executor:
            timed = executor.execute_block(block)
        if best is None or timed.wall_seconds < best.wall_seconds:
            best = timed
    with ParallelExecutor(
        heavy_registry(), StateStore(), workers, check_oracle=True
    ) as executor:
        verified = executor.execute_block(block)
    return {
        "workers": workers,
        "backend": best.backend,
        "n_waves": best.n_waves,
        "wall_seconds": round(best.wall_seconds, 4),
        "wall_tps": round(n / best.wall_seconds, 1),
        "modelled_parallel_seconds": round(
            best.modelled_parallel_seconds, 4
        ),
        "committed": verified.committed,
        "failed": verified.failed,
        "fallback_waves": best.fallback_waves + verified.fallback_waves,
        "oracle_matches": verified.oracle_matches,
        "state_digest": verified.state_digest,
    }


def run_scaling(n_txs: int = SCALE_TXS, reps: int = REPS) -> list[dict]:
    block = kv_block(n_txs)
    return [run_scaling_cell(block, workers, reps) for workers in WORKER_COUNTS]


def check_scaling(rows: list[dict], cores: int) -> list[str]:
    """Equivalence everywhere; wall scaling where the host has cores."""
    failures = []
    for row in rows:
        where = f"scaling@{row['workers']}w"
        if not row["oracle_matches"]:
            failures.append(f"{where}: serial oracle mismatch")
        if row["fallback_waves"]:
            failures.append(
                f"{where}: {row['fallback_waves']} wave(s) degraded to "
                "inline execution on a healthy run"
            )
    if len({row["state_digest"] for row in rows}) != 1:
        failures.append(
            "scaling: state digests differ across worker counts — the "
            "backend is not equivalent to itself"
        )
    if len({(row["committed"], row["failed"]) for row in rows}) != 1:
        failures.append(
            "scaling: commit/abort counts differ across worker counts"
        )
    for prev, cur in zip(rows, rows[1:]):
        if cur["modelled_parallel_seconds"] >= prev["modelled_parallel_seconds"]:
            failures.append(
                f"scaling: modelled makespan did not shrink from "
                f"{prev['workers']} to {cur['workers']} workers"
            )
    gated = [row for row in rows if row["workers"] <= cores]
    for prev, cur in zip(gated, gated[1:]):
        if cur["wall_tps"] <= prev["wall_tps"]:
            failures.append(
                f"scaling: wall tps fell from {prev['wall_tps']} at "
                f"{prev['workers']}w to {cur['wall_tps']} at "
                f"{cur['workers']}w ({cores} cores available)"
            )
    return failures


# -- equivalence grid ---------------------------------------------------------


def run_equivalence_cell(
    label: str, block: Block, store_factory, registry_factory, workers: int
) -> dict:
    """Serial engine vs. the parallel backend on twin stores: row-by-row
    digest identity, identical end state, oracle green."""
    serial_store = store_factory()
    serial = execute_block_serially(block, serial_store, registry_factory())
    parallel_store = store_factory()
    with ParallelExecutor(
        registry_factory(), parallel_store, workers
    ) as executor:
        report = executor.execute_block(block)
    rows_identical = [r.digest() for r in serial.rwsets] == [
        r.digest() for r in report.rwsets
    ]
    return {
        "workload": label,
        "txs": len(block.transactions),
        "workers": workers,
        "backend": report.backend,
        "committed": report.committed,
        "serial_committed": serial.committed,
        "rows_identical": rows_identical,
        "state_identical": serial_store.as_dict() == parallel_store.as_dict(),
        "digest_identical": report.state_digest
        == block_effects_digest(serial.rwsets, block.height),
        "oracle_matches": report.oracle_matches,
        "fallback_waves": report.fallback_waves,
    }


def run_equivalence(
    n_txs: int = EQUIV_TXS, worker_counts=None
) -> list[dict]:
    counts = worker_counts or WORKER_COUNTS
    kv = kv_block(n_txs, seed=79)
    sb_block, sb_store = smallbank_case(n_txs)
    rows = []
    for workers in counts:
        rows.append(run_equivalence_cell(
            "kv", kv, StateStore, standard_registry, workers
        ))
        rows.append(run_equivalence_cell(
            "smallbank", sb_block, sb_store, smallbank_registry, workers
        ))
    return rows


def check_equivalence(rows: list[dict]) -> list[str]:
    failures = []
    for row in rows:
        where = f"equivalence {row['workload']}@{row['workers']}w"
        for flag in (
            "rows_identical", "state_identical", "digest_identical",
            "oracle_matches",
        ):
            if not row[flag]:
                failures.append(f"{where}: {flag} is false")
        if row["committed"] != row["serial_committed"]:
            failures.append(
                f"{where}: committed {row['committed']} parallel vs "
                f"{row['serial_committed']} serial"
            )
        if row["fallback_waves"]:
            failures.append(
                f"{where}: {row['fallback_waves']} degraded wave(s)"
            )
    return failures


# -- env-knob contract --------------------------------------------------------


def check_workers_env() -> list[str]:
    """``REPRO_BENCH_WORKERS`` must be honored, and garbage rejected."""
    failures = []
    saved = os.environ.get("REPRO_BENCH_WORKERS")
    try:
        os.environ["REPRO_BENCH_WORKERS"] = "3"
        if resolve_workers() != 3:
            failures.append("REPRO_BENCH_WORKERS=3 was not honored")
        for bad in ("0", "-2", "two", "2.5"):
            os.environ["REPRO_BENCH_WORKERS"] = bad
            try:
                resolve_workers()
            except ConfigError:
                pass
            else:
                failures.append(
                    f"REPRO_BENCH_WORKERS={bad!r} was not rejected"
                )
    finally:
        if saved is None:
            os.environ.pop("REPRO_BENCH_WORKERS", None)
        else:
            os.environ["REPRO_BENCH_WORKERS"] = saved
    return failures


# -- full run + gate ----------------------------------------------------------


def run_parallel_exec(write_json: bool = True) -> dict:
    cores = available_cores()
    scaling = run_scaling()
    equivalence = run_equivalence()
    report = {
        "experiment": "E20",
        "cores": cores,
        "worker_counts": WORKER_COUNTS,
        "scale_txs": SCALE_TXS,
        "spin_iterations": SPIN,
        #: Worker counts whose wall-tps ordering the gate enforces on
        #: this host; counts above the core budget are recorded only.
        "wall_gate_enforced_counts": [
            w for w in WORKER_COUNTS if w <= cores
        ],
        "scaling": scaling,
        "equivalence": equivalence,
        "workers_env_failures": check_workers_env(),
    }
    if write_json:
        JSON_PATH.write_text(json.dumps(report, indent=2) + "\n")
    return report


def check_gate(report: dict) -> list[str]:
    failures = check_scaling(report["scaling"], report["cores"])
    failures += check_equivalence(report["equivalence"])
    failures += report["workers_env_failures"]
    return failures


# -- smoke mode (CI guard) ----------------------------------------------------


def run_smoke() -> int:
    failures = check_equivalence(run_equivalence(SMOKE_TXS, [2]))
    failures += check_workers_env()
    scaling = run_scaling(n_txs=SMOKE_TXS, reps=1)
    failures += check_scaling(scaling, available_cores())
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(
        "parallel-exec smoke: serial==parallel on KV+SmallBank at 2 "
        "workers, env knob validated, scaling cells equivalent OK"
    )
    return 0


def test_parallel_smoke(run_once):
    """Pytest entry: the cheap core of the ``--smoke`` CI guard."""
    def guard():
        return (
            check_equivalence(run_equivalence(200, [2]))
            + check_workers_env()
        )

    assert run_once(guard) == []


if __name__ == "__main__":
    if "--smoke" in sys.argv[1:]:
        raise SystemExit(run_smoke())
    started = time.perf_counter()
    report = run_parallel_exec()
    print_table(
        report["scaling"],
        title=f"E20 scaling: {SCALE_TXS}-tx heavy-KV block "
        f"({report['cores']} core(s) available)",
    )
    print_table(
        [
            {k: v for k, v in row.items() if k != "serial_committed"}
            for row in report["equivalence"]
        ],
        title="E20 equivalence: serial engine vs process-pool backend",
    )
    problems = check_gate(report)
    if problems:
        for problem in problems:
            print(f"FAIL: {problem}", file=sys.stderr)
        raise SystemExit(1)
    enforced = report["wall_gate_enforced_counts"]
    print(
        f"parallel-exec gate: equivalence at every worker count, wall "
        f"scaling enforced for {enforced} (host has {report['cores']} "
        f"core(s)), modelled curve strictly decreasing OK "
        f"[{time.perf_counter() - started:.1f}s]"
    )
