"""Experiment E3 — consensus protocol comparison.

Paper anchor (section 2.2 / 2.3.3): permissioned blockchains order
through crash (Paxos, Raft) or Byzantine (PBFT, HotStuff, Tendermint,
IBFT) fault-tolerant protocols; the fault model dictates cluster size
(2f+1 vs 3f+1) and the protocols differ in message complexity.

Reproduced series: messages per decision and decision latency for all
six protocols as the cluster grows, plus leader-crash recovery.
"""

from repro.bench import print_table
from repro.consensus import PROTOCOLS, ConsensusCluster

SIZES = [4, 7, 10]
DECISIONS = 20


def run_protocol(name, n, seed=31):
    cls, byzantine = PROTOCOLS[name]
    if not byzantine and n == 4:
        n = 3
    cluster = ConsensusCluster(cls, n=n, byzantine=byzantine, seed=seed)
    for i in range(DECISIONS):
        cluster.submit(f"{name}-{n}-{i}")
    done = cluster.run_until_decided(DECISIONS, timeout=120)
    assert done and cluster.agreement_holds(), f"{name} n={n} failed"
    return {
        "protocol": name,
        "n": n,
        "fault_model": "byzantine" if byzantine else "crash",
        "quorum": cluster.config.quorum,
        "msgs_per_decision": round(cluster.message_count() / DECISIONS, 1),
        "latency_last": round(cluster.decision_latency(DECISIONS - 1), 4),
    }


def run_e3():
    rows = []
    for n in SIZES:
        for name in sorted(PROTOCOLS):
            rows.append(run_protocol(name, n))
    return rows


def test_e3_consensus_comparison(run_once):
    rows = run_once(run_e3)
    print_table(rows, title="E3: consensus protocols vs cluster size")

    def pick(name, n):
        return next(
            r for r in rows if r["protocol"] == name and r["n"] in (n, 3)
        )

    # Crash protocols need smaller quorums than Byzantine ones.
    assert pick("raft", 7)["quorum"] < pick("pbft", 7)["quorum"]
    # PBFT's all-to-all phases cost more messages than Raft's
    # leader-centric replication at the same size.
    assert (
        pick("pbft", 10)["msgs_per_decision"]
        > pick("raft", 10)["msgs_per_decision"]
    )
    # Message cost grows with cluster size for the BFT protocols.
    assert (
        pick("pbft", 10)["msgs_per_decision"]
        > pick("pbft", 4)["msgs_per_decision"]
    )


def run_leader_crash(name, seed=33):
    cls, byzantine = PROTOCOLS[name]
    n = 4 if byzantine else 3
    cluster = ConsensusCluster(cls, n=n, byzantine=byzantine, seed=seed)
    cluster.replicas[cluster.config.replica_ids[0]].crash()
    cluster.submit("recovery-probe", via=cluster.config.replica_ids[1])
    ok = cluster.run_until_decided(1, timeout=120)
    return {
        "protocol": name,
        "recovered": ok,
        "recovery_time": round(cluster.decision_latency(0), 3) if ok else None,
    }


def test_e3_leader_crash_recovery(run_once):
    rows = run_once(lambda: [run_leader_crash(p) for p in sorted(PROTOCOLS)])
    print_table(rows, title="E3b: recovery from initial-leader crash")
    assert all(r["recovered"] for r in rows)
