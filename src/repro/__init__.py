"""repro — a full reproduction of "Permissioned Blockchains: Properties,
Techniques and Applications" (Amiri, Agrawal, El Abbadi — SIGMOD 2021).

The tutorial surveys the techniques permissioned blockchain systems use
to meet four requirements of large-scale data management; this library
implements every surveyed system on a deterministic discrete-event
simulator:

* **consensus** (section 2.2) — PBFT, Paxos, Raft, HotStuff,
  Tendermint, Istanbul BFT: ``repro.consensus``
* **performance architectures** (section 2.3.3) — OX, OXII
  (ParBlockchain), XOV (Fabric), FastFabric, Fabric++, FabricSharp,
  XOX: ``repro.core``
* **confidentiality** (section 2.3.1) — Caper, multi-channel Fabric,
  private data collections: ``repro.confidentiality``
* **verifiability** (section 2.3.2) — zero-knowledge proofs, Quorum
  private transactions, Separ tokens: ``repro.verifiability``
* **scalability** (section 2.3.4) — ResilientDB, AHL, SharPer,
  Saguaro: ``repro.sharding``
* **applications** (section 2.1) — supply chain, crowdworking, sharded
  database: ``repro.apps``

Quickstart (Figure 1 — a five-node permissioned blockchain):

    >>> from repro.core import OxSystem, SystemConfig
    >>> from repro.common.types import Transaction
    >>> system = OxSystem(SystemConfig(orderers=5, protocol="pbft"))
    >>> system.submit(Transaction.create("kv_set", ("greeting", "hello")))
    >>> result = system.run()
    >>> result.committed
    1
"""

__version__ = "1.0.0"

__all__ = [
    "apps",
    "bench",
    "common",
    "confidentiality",
    "consensus",
    "core",
    "crypto",
    "execution",
    "ledger",
    "sharding",
    "sim",
    "verifiability",
    "workloads",
]
