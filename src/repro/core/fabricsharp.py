"""FabricSharp (Ruan et al., SIGMOD 2020).

"Presents an algorithm to early filter out transactions that can never
be reordered and also presents a reordering technique that eliminates
unnecessary aborts" (paper section 2.3.3).

Modelled as XOV plus ``reorder_fabricsharp``: transactions whose reads
are already stale against committed state are dropped before analysis
(they cannot be saved by any intra-block order), and cycle-breaking uses
an exact minimum feedback vertex set for small components — never
aborting more than Fabric++'s greedy heuristic on the same block.
Constraint edges come from the XOV family's incremental
:class:`~repro.execution.conflict_index.ConstraintIndex`; the exact-FVS
component-size cap can be tuned per instance via
``reorder_exact_limit`` (the pruned search makes components up to ~20
vertices tractable, versus 12 for the old brute-force subset sweep).
"""

from __future__ import annotations

from repro.core.xov import XovSystem


class FabricSharpSystem(XovSystem):
    """FabricSharp: XOV with minimal-abort block reordering."""

    name = "fabricsharp"
    reorder = "fabricsharp"
