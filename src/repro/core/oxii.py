"""Order-Parallel-Execute (OXII): ParBlockchain (Amiri et al., ICDCS 2019).

Like OX, transactions are ordered before execution (pessimistic), but
"once a block is constructed, orderer nodes generate a dependency graph
for the transactions within a block ... enabling the parallel execution
of non-conflicting transactions" (paper section 2.3.3).

The dependency graph is built from *declared* read/write sets
incrementally, as transactions arrive: each declared read/write set is
ingested into a persistent
:class:`~repro.execution.conflict_index.BlockConflictIndex`, so cutting
a block only extracts the already-known intra-block edges instead of
re-scanning the block's key sets. The execute phase then costs the
makespan of list scheduling on the executor pool instead of the serial
sum. Under low contention this approaches serial-cost / executors;
under total contention it degrades gracefully to OX.
"""

from __future__ import annotations

from repro.common.errors import ExecutionError
from repro.common.types import Transaction
from repro.core.base import BlockchainSystem, _TxRecord
from repro.execution.conflict_index import BlockConflictIndex, SealTracker
from repro.execution.depgraph import (
    schedule_multi_enterprise,
    schedule_parallel,
)
from repro.execution.serial import execute_block_serially

#: Modelled orderer-side cost of conflict analysis, per transaction.
DEPENDENCY_ANALYSIS_COST = 0.00002


class OxiiSystem(BlockchainSystem):
    """ParBlockchain-style order-parallel-execute system.

    With ``per_enterprise=True`` the system uses ParBlockchain's
    multi-enterprise deployment: each enterprise (``tx.submitter``) owns
    its own executor pool, and cross-enterprise dependency edges pay a
    state-handoff latency between pools.
    """

    name = "oxii"

    def __init__(
        self, config=None, registry=None,
        per_enterprise: bool = False,
        executors_per_enterprise: int = 2,
        cross_enterprise_latency: float = 0.002,
    ) -> None:
        super().__init__(config, registry)
        self.per_enterprise = per_enterprise
        self.executors_per_enterprise = executors_per_enterprise
        self.cross_enterprise_latency = cross_enterprise_latency
        self._conflict_index = BlockConflictIndex()
        self._uid_of: dict[str, int] = {}
        self._seals = SealTracker()

    def _ingest(self, record: _TxRecord) -> None:
        tx = record.tx
        if not tx.declared_ops:
            raise ExecutionError(
                f"OXII requires declared operations; tx {tx.tx_id} has none"
            )
        self._uid_of[tx.tx_id] = self._conflict_index.ingest(
            tx.read_keys, tx.write_keys
        )
        self._enqueue_for_ordering(tx.tx_id)

    def _on_block_decided(self, txs: list[Transaction]) -> None:
        block = self.ledger.next_block(
            txs, timestamp=self.sim.now, proposer=self._reference_orderer
        )
        self.ledger.append(block)
        uids = [self._uid_of.pop(tx.tx_id) for tx in txs]
        graph = self._conflict_index.graph_for(uids, list(txs))
        self._conflict_index.seal(self._seals.decide(uids))
        costs = [self.registry.cost(tx.contract) for tx in txs]
        if self.per_enterprise:
            owners = [tx.submitter for tx in txs]
            makespan, _ = schedule_multi_enterprise(
                graph, costs, owners,
                self.executors_per_enterprise,
                self.cross_enterprise_latency,
            )
        else:
            makespan, _ = schedule_parallel(
                graph, costs, self.config.executors
            )
        makespan += DEPENDENCY_ANALYSIS_COST * len(txs)
        self.sim.metrics.incr("exec.parallel_seconds", makespan)
        self.sim.metrics.incr("order.dependency_edges", graph.edge_count)
        done_at = self._claim_executor(makespan)

        def finish() -> None:
            # Any conflict-respecting schedule is equivalent to serial
            # block order, so the state transition is computed serially.
            report = execute_block_serially(block, self.store, self.registry)
            for tx, rwset in zip(block.transactions, report.rwsets):
                if rwset.ok:
                    self._mark_committed(tx)
                else:
                    self._mark_aborted(tx, "business_rule")

        self.sim.schedule_at(done_at, finish)
