"""The unified blockchain-system API shared by every architecture.

Paper section 2.3.3 contrasts three transaction-processing architectures
— order-execute (OX), order-parallel-execute (OXII), and
execute-order-validate (XOV) — plus four XOV refinements. Every one of
them is modelled here as a :class:`BlockchainSystem` with an identical
surface:

    system = OxSystem(SystemConfig(block_size=100))
    for tx in workload:
        system.submit(tx)
    result = system.run()          # -> RunResult

Internally a system drives a real consensus cluster (message-level PBFT
/ Raft / ...) on a shared discrete-event simulation, cuts blocks from an
ordering queue, and charges modelled execution/validation time on
executor timelines. Committed state lives in a versioned
:class:`~repro.ledger.store.StateStore`; the ordered blocks in a
:class:`~repro.ledger.chain.Blockchain`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ConfigError
from repro.common.metrics import RunResult
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.execution.contracts import ContractRegistry, standard_registry
from repro.execution.pipeline import ExecutionPipeline
from repro.ledger.chain import Blockchain
from repro.ledger.store import StateStore
from repro.sim.core import Simulation
from repro.sim.network import LanLatency


@dataclass
class SystemConfig:
    """Knobs shared by all architectures.

    Attributes:
        orderers: Size of the ordering cluster.
        protocol: Ordering protocol name (see ``repro.consensus.PROTOCOLS``).
        executors: Parallel execution/validation lanes available to a peer.
        endorsers: Endorsement-policy size (XOV family only).
        pipeline_depth: Blocks that may occupy the validation pipeline
            concurrently (XOV family only; commit order is preserved).
            1 = the classic strictly-serial block pipeline.
        block_size: Transactions per block.
        block_interval: Maximum time a partial block waits before cutting.
        arrival_rate: Client submission rate in tx/s (None = all at t=0).
        endorsement_latency: Client -> endorser round trip (XOV family).
        verify_cost: Modelled CPU seconds per signature verification.
        seed: Simulation seed (runs are deterministic per seed).
        max_time: Safety horizon; a run never simulates past this.
    """

    orderers: int = 4
    protocol: str = "pbft"
    executors: int = 4
    endorsers: int = 3
    pipeline_depth: int = 1
    block_size: int = 50
    block_interval: float = 0.1
    arrival_rate: float | None = 2000.0
    endorsement_latency: float = 0.002
    verify_cost: float = 0.0005
    seed: int = 0
    max_time: float = 600.0

    def __post_init__(self) -> None:
        if self.protocol not in PROTOCOLS:
            raise ConfigError(
                f"unknown protocol {self.protocol!r}; "
                f"choose from {sorted(PROTOCOLS)}"
            )
        if self.block_size < 1:
            raise ConfigError("block_size must be >= 1")
        if self.executors < 1:
            raise ConfigError("executors must be >= 1")
        if self.pipeline_depth < 1:
            raise ConfigError("pipeline_depth must be >= 1")


@dataclass
class _TxRecord:
    """Book-keeping for one submitted transaction."""

    tx: Transaction
    submitted_at: float = 0.0
    resolved: bool = False
    committed: bool = False
    commit_time: float = 0.0


class BlockchainSystem:
    """Abstract base: ordering service + architecture-specific pipeline.

    Subclasses implement :meth:`_ingest` (what happens when a client
    transaction arrives) and :meth:`_on_block_decided` (what happens
    after the ordering service totally orders a block payload).
    """

    name = "abstract"

    def __init__(
        self, config: SystemConfig | None = None,
        registry: ContractRegistry | None = None,
    ) -> None:
        self.config = config or SystemConfig()
        self.registry = registry or standard_registry()
        self.sim = Simulation(seed=self.config.seed)
        protocol_cls, byzantine = PROTOCOLS[self.config.protocol]
        self.cluster = ConsensusCluster(
            protocol_cls,
            n=self.config.orderers,
            byzantine=byzantine,
            sim=self.sim,
            latency=LanLatency(),
            decide_listener=self._on_decide,
        )
        self._reference_orderer = self.cluster.config.replica_ids[0]
        self.ledger = Blockchain()
        self.store = StateStore()
        self._records: dict[str, _TxRecord] = {}
        self._tx_by_id: dict[str, Transaction] = {}
        self._submit_order: list[str] = []
        self._order_queue: list[str] = []  # tx ids awaiting a block
        self._block_timer = None
        self._payload_of: dict[tuple[str, ...], list[str]] = {}
        # Execution/validation timeline. Depth 1 (strictly serial
        # blocks) unless a subclass opts into pipelined validation.
        self._exec_pipeline = ExecutionPipeline(depth=1)
        self._ran = False

    # -- client API ----------------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        """Queue ``tx`` for the run (call before :meth:`run`)."""
        if self._ran:
            raise ConfigError("submit() after run() is not supported")
        if tx.tx_id in self._records:
            raise ConfigError(f"duplicate transaction id: {tx.tx_id}")
        self._records[tx.tx_id] = _TxRecord(tx=tx)
        self._tx_by_id[tx.tx_id] = tx
        self._submit_order.append(tx.tx_id)

    def run(self) -> RunResult:
        """Simulate the whole run and summarise it."""
        if self._ran:
            raise ConfigError("a system instance runs exactly once")
        self._ran = True
        self._schedule_arrivals()
        horizon = self.config.max_time
        while self.sim.now < horizon:
            if all(r.resolved for r in self._records.values()):
                break
            before = self.sim.now
            processed = self.sim.run(
                until=min(horizon, self.sim.now + 0.5), max_events=5_000_000
            )
            if processed == 0 and self.sim.now == before:
                break  # drained
        return self._build_result()

    # -- arrivals ---------------------------------------------------------------

    def _schedule_arrivals(self) -> None:
        interval = (
            1.0 / self.config.arrival_rate if self.config.arrival_rate else 0.0
        )
        at = 0.0
        for tx_id in self._submit_order:
            record = self._records[tx_id]
            record.submitted_at = at

            def arrive(r=record) -> None:
                self._ingest(r)

            self.sim.schedule_at(at, arrive)
            at += interval

    # -- ordering service ----------------------------------------------------------

    def _enqueue_for_ordering(self, tx_id: str) -> None:
        self._order_queue.append(tx_id)
        if len(self._order_queue) >= self.config.block_size:
            self._cut_block()
        elif self._block_timer is None:
            self._block_timer = self.sim.schedule(
                self.config.block_interval, self._cut_partial_block
            )

    def _cut_partial_block(self) -> None:
        self._block_timer = None
        if self._order_queue:
            self._cut_block()

    def _cut_block(self) -> None:
        batch, self._order_queue = (
            self._order_queue[: self.config.block_size],
            self._order_queue[self.config.block_size:],
        )
        if self._block_timer is not None:
            self._block_timer.cancel()
            self._block_timer = None
        if self._order_queue:
            self._block_timer = self.sim.schedule(
                self.config.block_interval, self._cut_partial_block
            )
        payload = tuple(batch)
        self._payload_of[payload] = batch
        self.cluster.submit(payload, via=self._reference_orderer)

    def _on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if node_id != self._reference_orderer:
            return
        batch = self._payload_of.get(tuple(value))
        if batch is None:
            return
        self._on_block_decided([self._tx_by_id[tx_id] for tx_id in batch])

    # -- executor timeline --------------------------------------------------------------

    def _claim_executor(self, duration: float) -> float:
        """Occupy the peer's execution pipeline for ``duration`` simulated
        seconds; returns the (in-order) completion time.

        With ``pipeline_depth > 1`` (XOV family) up to that many blocks'
        validation work overlaps on the virtual timeline, but completion
        times stay monotone in claim order so state transitions apply in
        exact block order."""
        return self._exec_pipeline.claim(self.sim.now, duration)

    # -- commit bookkeeping ------------------------------------------------------------

    def _mark_committed(self, tx: Transaction) -> None:
        record = self._records[tx.tx_id]
        if record.resolved:
            return
        record.resolved = True
        record.committed = True
        record.commit_time = self.sim.now

    def _mark_aborted(self, tx: Transaction, reason: str) -> None:
        record = self._records[tx.tx_id]
        if record.resolved:
            return
        record.resolved = True
        record.committed = False
        self.sim.metrics.incr(f"abort.{reason}")

    def committed_tx_ids(self) -> set[str]:
        """Ids of every transaction marked committed so far (the set the
        ledger-linkage and serializability invariants audit)."""
        return {
            tx_id
            for tx_id, record in self._records.items()
            if record.committed
        }

    # -- subclass hooks ---------------------------------------------------------------------

    def _ingest(self, record: _TxRecord) -> None:
        """A client transaction arrived; route it into the pipeline."""
        raise NotImplementedError

    def _on_block_decided(self, txs: list[Transaction]) -> None:
        """The ordering service totally ordered a block of ``txs``."""
        raise NotImplementedError

    # -- results -------------------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        result = RunResult(system=self.name)
        last_commit = 0.0
        for record in self._records.values():
            if not record.resolved:
                self._mark_aborted(record.tx, "unresolved")
            if record.committed:
                result.committed += 1
                result.latencies.record(record.commit_time - record.submitted_at)
                last_commit = max(last_commit, record.commit_time)
            else:
                result.aborted += 1
        result.duration = last_commit if last_commit > 0 else self.sim.now
        result.messages = int(self.sim.metrics.get("net.messages"))
        result.bytes_sent = int(self.sim.metrics.get("net.bytes"))
        result.extra = {
            key: value
            for key, value in self.sim.metrics.snapshot().items()
            if key.startswith(("abort.", "exec.", "order."))
        }
        return result
