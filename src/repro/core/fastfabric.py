"""FastFabric (Gorenflo et al., ICBC 2019).

"Uses different data structures and caching techniques, and parallelizes
the transaction validation pipeline to increase Fabric's throughput for
conflict-free transaction workloads" (paper section 2.3.3).

Modelled as XOV with the validation pipeline spread across
``config.executors`` lanes (signature checks dominate validation cost,
and FastFabric verifies them in parallel). The benefit therefore shows
up exactly where the paper says it does: conflict-free workloads, where
validation — not conflict handling — is the bottleneck.
"""

from __future__ import annotations

from repro.core.xov import XovSystem


class FastFabricSystem(XovSystem):
    """FastFabric: XOV with a parallelised validation pipeline."""

    name = "fastfabric"
    parallel_validation = True
