"""XOX Fabric (Gorenflo et al., ICBC 2020).

"A pre-order and a post-order execution step where the post-order
execution is added after the validation step to re-execute transactions
that are invalidated due to read-write conflicts" (paper section 2.3.3).

Modelled as XOV plus the post-order step of
``repro.execution.reexec``: MVCC-invalidated transactions are re-run
serially against up-to-date state instead of being aborted. Deterministic
contracts therefore always commit (only business-rule failures abort),
at the price of serial execution cost for exactly the conflicting tail.
"""

from __future__ import annotations

from repro.core.xov import XovSystem


class XoxSystem(XovSystem):
    """XOX Fabric: XOV with post-order re-execution."""

    name = "xox"
    reexecute = True
