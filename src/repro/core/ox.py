"""Order-Execute (OX): the pessimistic baseline architecture.

"A set of nodes (orderers) establishes agreement on a unique order of
the incoming transactions ... executor nodes execute the transactions of
a block sequentially in the same order" (paper section 2.3.3). Used by
Tendermint, Quorum, MultiChain, Chain Core, Iroha and Corda.

Strengths: no aborts from concurrency (contention is irrelevant),
deterministic replicas for free. Weakness: the execute phase is strictly
sequential, so throughput is bounded by single-lane execution speed —
the "low performance" the Discussion paragraph attributes to OX.
"""

from __future__ import annotations

from repro.common.types import Transaction
from repro.core.base import BlockchainSystem, _TxRecord
from repro.execution.serial import execute_block_serially


class OxSystem(BlockchainSystem):
    """Order-execute blockchain system."""

    name = "ox"

    def _ingest(self, record: _TxRecord) -> None:
        # Pessimistic: the raw transaction goes straight to ordering.
        self._enqueue_for_ordering(record.tx.tx_id)

    def _on_block_decided(self, txs: list[Transaction]) -> None:
        block = self.ledger.next_block(
            txs, timestamp=self.sim.now, proposer=self._reference_orderer
        )
        self.ledger.append(block)
        # Sequential execution: the block costs the *sum* of tx costs.
        serial_cost = sum(self.registry.cost(tx.contract) for tx in txs)
        done_at = self._claim_executor(serial_cost)
        self.sim.metrics.incr("exec.serial_seconds", serial_cost)

        def finish() -> None:
            report = execute_block_serially(block, self.store, self.registry)
            for tx, rwset in zip(block.transactions, report.rwsets):
                if rwset.ok:
                    self._mark_committed(tx)
                else:
                    self._mark_aborted(tx, "business_rule")

        self.sim.schedule_at(done_at, finish)
