"""Execute-Order-Validate (XOV): Hyperledger Fabric's optimistic pipeline.

"Transactions ... are first executed in parallel by executor nodes
(endorsers) of each enterprise. Transactions are then ordered by a
consensus protocol ... endorsers then validate the transactions and
append them to the ledger" (paper section 2.3.3).

Pipeline modelled here:

1. **Endorse** — on arrival, the transaction is *simulated* against the
   currently committed state, yielding a versioned read/write set. The
   client collects ``endorsers`` signatures (parallel, one RTT).
2. **Order** — the read/write set (not the transaction logic) is
   totally ordered by the consensus cluster into blocks.
3. **Validate** — in block order, each transaction's read versions are
   MVCC-checked against current state; stale reads invalidate the
   transaction and its writes are discarded — the source of XOV's
   contention sensitivity.

Subclasses toggle the published Fabric optimisations through three
class attributes: ``reorder`` (Fabric++ / FabricSharp block reordering),
``parallel_validation`` (FastFabric's pipelined validators), and
``reexecute`` (XOX's post-order step).
"""

from __future__ import annotations

from repro.common.types import Transaction
from repro.core.base import BlockchainSystem, _TxRecord
from repro.crypto.sigcache import ModelledSigVerifier
from repro.execution.conflict_index import ConstraintIndex, SealTracker
from repro.execution.mvcc import EndorsedTx, endorse, validate_endorsement
from repro.execution.pipeline import ExecutionPipeline
from repro.execution.reexec import reexecute_invalidated
from repro.execution.reorder import reorder_fabricpp, reorder_fabricsharp
from repro.ledger.store import Version

#: Modelled CPU cost of the reordering analysis, per transaction.
REORDER_COST_PER_TX = 0.00005
#: Modelled CPU cost of one MVCC version check.
MVCC_CHECK_COST = 0.00001


class XovSystem(BlockchainSystem):
    """Plain Hyperledger Fabric (XOV) system."""

    name = "xov"
    #: None, "fabricpp", or "fabricsharp".
    reorder: str | None = None
    #: FabricSharp only: override for the component size above which the
    #: exact minimum-feedback-vertex-set search falls back to the greedy
    #: heuristic (None = ``reorder._EXACT_FVS_LIMIT``).
    reorder_exact_limit: int | None = None
    #: FastFabric: validate with ``config.executors`` parallel lanes.
    parallel_validation = False
    #: XOX: re-execute MVCC-invalidated transactions post-order.
    reexecute = False

    def __init__(
        self, config=None, registry=None,
        peer_group=None, policy=None,
    ) -> None:
        """``peer_group`` / ``policy`` (both from
        ``repro.execution.endorsement``) switch on org-based endorsement:
        the named organisations execute every transaction, sign their
        results, and the transaction proceeds only if the policy is met
        by an agreeing group. Without them, endorsement is the plain
        single-result simulation."""
        super().__init__(config, registry)
        # XOV validates in block order but may overlap the verification
        # work of up to ``pipeline_depth`` consecutive blocks
        # (FastFabric's pipelined validation, available to the whole
        # family); completion stays monotone so commits keep block order.
        self._exec_pipeline = ExecutionPipeline(self.config.pipeline_depth)
        self._endorsed: dict[str, EndorsedTx] = {}
        # Reordering variants index constraint edges incrementally at
        # endorsement time; block analysis is then a subset lookup.
        self._constraint_index = ConstraintIndex()
        self._uid_of: dict[str, int] = {}
        self._seals = SealTracker()
        #: FastFabric-style verification cache of the validating peer:
        #: each (signer, digest) pair charges modelled ``verify_cost``
        #: exactly once; re-encounters (an endorsement already verified
        #: at submission) are free, as the real system skips them too.
        self._sig_ledger = ModelledSigVerifier(self.config.verify_cost)
        self.peer_group = peer_group
        self.policy = policy
        if (peer_group is None) != (policy is None):
            from repro.common.errors import ConfigError

            raise ConfigError("peer_group and policy come together")

    # -- endorsement (execute phase) ---------------------------------------

    def _ingest(self, record: _TxRecord) -> None:
        tx = record.tx
        snapshot = self.store.snapshot()
        if self.peer_group is not None:
            outcome = self.peer_group.collect(tx, snapshot, self.policy)
            if outcome.endorsed is None:
                self.sim.metrics.incr("exec.endorsements")
                self.sim.schedule(
                    self.config.endorsement_latency,
                    lambda: self._mark_aborted(tx, outcome.reason),
                )
                return
            endorsed = outcome.endorsed
        else:
            endorsed = endorse(tx, snapshot, self.registry)
        duration = self.config.endorsement_latency + endorsed.rwset.cost
        if self.peer_group is not None:
            # The submitting peer checks each endorser signature once,
            # up front; the validation phase then reuses the verdicts.
            duration += self.config.verify_cost * len(endorsed.endorsements)
        self.sim.metrics.incr("exec.endorsements")

        def endorsement_done() -> None:
            if not endorsed.ok:
                # The endorsers rejected it (business rule); the client
                # never sends it to ordering.
                self._mark_aborted(tx, "business_rule")
                return
            if self.peer_group is not None:
                if not self.peer_group.verify_endorsements(endorsed):
                    self._mark_aborted(tx, "bad_endorsement_signature")
                    return
                for e in endorsed.endorsements:
                    self._sig_ledger.record(e.endorser, e.rwset_digest)
            self._endorsed[tx.tx_id] = endorsed
            if self.reorder is not None:
                self._uid_of[tx.tx_id] = self._constraint_index.ingest(
                    endorsed.rwset.read_keys, endorsed.rwset.write_keys
                )
            self._enqueue_for_ordering(tx.tx_id)

        self.sim.schedule(duration, endorsement_done)

    # -- validation (validate phase) -------------------------------------------

    def _validation_cost(self, entry: EndorsedTx) -> float:
        """Modelled cost of validating one endorsed transaction.

        Signature checks run through the FastFabric-style verification
        ledger: a (signer, digest) pair the peer has already verified —
        e.g. at endorsement collection — is a cache hit and charges
        nothing, exactly as the real system skips the re-check. Plain
        endorsements (no peer group) synthesize one pair per configured
        endorser, each unique to the transaction, so the uncached cost
        matches the classic ``verify_cost * endorsers`` formula.
        """
        if entry.endorsements:
            pairs = [(e.endorser, e.rwset_digest) for e in entry.endorsements]
        else:
            pairs = [
                (f"endorser{i}", entry.tx.tx_id)
                for i in range(self.config.endorsers)
            ]
        cost = self._sig_ledger.charge_batch(pairs) + MVCC_CHECK_COST
        if self.parallel_validation:
            cost /= self.config.executors
        return cost

    def _on_block_decided(self, txs: list[Transaction]) -> None:
        endorsed = [self._endorsed[tx.tx_id] for tx in txs]
        verified_before = self._sig_ledger.verified
        cached_before = self._sig_ledger.cached
        duration = sum(self._validation_cost(entry) for entry in endorsed)
        self.sim.metrics.incr(
            "exec.sig_verified", self._sig_ledger.verified - verified_before
        )
        self.sim.metrics.incr(
            "exec.sig_cached", self._sig_ledger.cached - cached_before
        )
        if self.reorder is not None:
            duration += REORDER_COST_PER_TX * len(endorsed)
        done_at = self._claim_executor(duration)

        def finish() -> None:
            self._validate_and_commit(endorsed)

        self.sim.schedule_at(done_at, finish)

    def _edges_for(self, subset: list[EndorsedTx]) -> dict[int, set[int]]:
        """Constraint edges for a block subset from the incremental index."""
        return self._constraint_index.edges_among(
            [self._uid_of[entry.tx.tx_id] for entry in subset]
        )

    def _apply_reorder(
        self, endorsed: list[EndorsedTx]
    ) -> tuple[list[EndorsedTx], list[EndorsedTx]]:
        """Returns (final order, pre-aborted)."""
        if self.reorder == "fabricpp":
            outcome = reorder_fabricpp(endorsed, edge_fn=self._edges_for)
            return outcome.order, outcome.aborted
        if self.reorder == "fabricsharp":
            outcome = reorder_fabricsharp(
                endorsed, self.store,
                edge_fn=self._edges_for,
                exact_limit=self.reorder_exact_limit,
            )
            return outcome.order, outcome.aborted + outcome.early_aborted
        return list(endorsed), []

    def _validate_and_commit(self, endorsed: list[EndorsedTx]) -> None:
        order, pre_aborted = self._apply_reorder(endorsed)
        if self.reorder is not None:
            uids = [self._uid_of.pop(entry.tx.tx_id) for entry in endorsed]
            self._constraint_index.seal(self._seals.decide(uids))
        for victim in pre_aborted:
            reason = "business_rule" if not victim.ok else "reorder_victim"
            self._mark_aborted(victim.tx, reason)
        height = self.ledger.height + 1
        valid: list[EndorsedTx] = []
        invalid: list[EndorsedTx] = []
        dirty: dict[str, int] = {}
        for index, entry in enumerate(order):
            if validate_endorsement(entry, self.store, dirty):
                valid.append(entry)
                for key in entry.rwset.write_keys:
                    dirty[key] = index
            else:
                invalid.append(entry)
        # Commit the valid write sets in final order.
        for index, entry in enumerate(valid):
            self.store.apply_writes(
                entry.rwset.writes, Version(height=height, tx_index=index)
            )
            self._mark_committed(entry.tx)
        recovered: list = []
        if self.reexecute and invalid:
            recovered = self._post_order_reexecute(invalid, height, len(valid))
        else:
            for entry in invalid:
                reason = "business_rule" if not entry.ok else "mvcc_conflict"
                self._mark_aborted(entry.tx, reason)
        # The ledger records the block in its final order (Fabric keeps
        # invalidated transactions on the ledger, flagged invalid).
        block_txs = (
            [entry.tx for entry in valid]
            + [entry.tx for entry in invalid]
            + [entry.tx for entry in pre_aborted]
        )
        block = self.ledger.next_block(
            block_txs, timestamp=self.sim.now, proposer=self._reference_orderer
        )
        self.ledger.append(block)
        self.sim.metrics.incr("exec.validated_blocks")
        if recovered:
            self.sim.metrics.incr("exec.reexecuted", len(recovered))

    def _post_order_reexecute(
        self, invalid: list[EndorsedTx], height: int, first_index: int
    ) -> list:
        """XOX hook: serially re-run invalidated transactions, charging
        their execution time on the executor timeline."""
        extra = sum(self.registry.cost(entry.tx.contract) for entry in invalid)
        done_at = self._claim_executor(extra)
        report = reexecute_invalidated(
            invalid, self.store, self.registry, height, first_index
        )
        recovered_ids = {rwset.tx_id for rwset in report.recovered}

        def finish() -> None:
            for entry in invalid:
                if entry.tx.tx_id in recovered_ids:
                    self._mark_committed(entry.tx)
                else:
                    self._mark_aborted(entry.tx, "business_rule")

        self.sim.schedule_at(done_at, finish)
        return report.recovered
