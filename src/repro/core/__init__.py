"""Transaction-processing architectures (paper section 2.3.3).

Seven systems behind one API (:class:`~repro.core.base.BlockchainSystem`):
the pessimistic OX and OXII architectures, optimistic XOV, and the four
published XOV refinements. ``SYSTEMS`` is the registry benchmarks sweep.
"""

from repro.core.base import BlockchainSystem, SystemConfig
from repro.core.fabricpp import FabricPPSystem
from repro.core.fabricsharp import FabricSharpSystem
from repro.core.fastfabric import FastFabricSystem
from repro.core.ox import OxSystem
from repro.core.oxii import OxiiSystem
from repro.core.xov import XovSystem
from repro.core.xox import XoxSystem

#: name -> system class, in the order the paper introduces them.
SYSTEMS = {
    "ox": OxSystem,
    "oxii": OxiiSystem,
    "xov": XovSystem,
    "fastfabric": FastFabricSystem,
    "fabricpp": FabricPPSystem,
    "fabricsharp": FabricSharpSystem,
    "xox": XoxSystem,
}

__all__ = [
    "SYSTEMS",
    "BlockchainSystem",
    "FabricPPSystem",
    "FabricSharpSystem",
    "FastFabricSystem",
    "OxSystem",
    "OxiiSystem",
    "SystemConfig",
    "XovSystem",
    "XoxSystem",
]
