"""Fabric++ (Sharma et al., SIGMOD 2019).

"Employs concurrency control techniques from databases to early abort
transactions or reorder them after the order phase to reconcile the
potential conflicts" (paper section 2.3.3).

Modelled as XOV plus the greedy conflict-graph reordering of
``repro.execution.reorder.reorder_fabricpp``: within each decided block,
transactions are re-serialised so that readers precede the writers that
would invalidate them; transactions trapped in dependency cycles are
aborted using Fabric++'s max-degree heuristic. Constraint edges come
from the XOV family's incremental
:class:`~repro.execution.conflict_index.ConstraintIndex`, built at
endorsement time, so the per-block analysis never re-scans read/write
sets; ``SystemConfig.pipeline_depth > 1`` additionally overlaps the
validation work of consecutive blocks (commit order preserved).
"""

from __future__ import annotations

from repro.core.xov import XovSystem


class FabricPPSystem(XovSystem):
    """Fabric++: XOV with greedy block reordering."""

    name = "fabricpp"
    reorder = "fabricpp"
