"""Cryptographic substrate for permissioned blockchains.

Two tiers are provided, behind one interface:

* A *real* public-key tier — Schnorr signatures and Pedersen commitments
  over a named Schnorr group (``repro.crypto.group``). The verifiability
  layer (zero-knowledge proofs, paper section 2.3.2) builds on this tier.
* A *fast* tier — HMAC-based signatures mediated by the membership
  service. Permissioned blockchains have a trusted identity layer by
  definition, so a CA-mediated MAC is a behaviour-preserving stand-in
  when benchmarks sign tens of thousands of messages.

Digest and Merkle-tree helpers are shared by the ledger layer.
"""

from repro.crypto.digests import hash_pair, sha256_hex
from repro.crypto.group import SchnorrGroup, default_group, simulation_group
from repro.crypto.merkle import IncrementalMerkleRoot, MerkleProof, MerkleTree
from repro.crypto.commitments import PedersenCommitment, PedersenParams
from repro.crypto.sigcache import ModelledSigVerifier, SignatureCache
from repro.crypto.signatures import (
    HmacSignatureScheme,
    KeyPair,
    MembershipService,
    SchnorrSignatureScheme,
    SignatureScheme,
)

__all__ = [
    "HmacSignatureScheme",
    "IncrementalMerkleRoot",
    "KeyPair",
    "MembershipService",
    "MerkleProof",
    "MerkleTree",
    "ModelledSigVerifier",
    "SignatureCache",
    "PedersenCommitment",
    "PedersenParams",
    "SchnorrGroup",
    "SchnorrSignatureScheme",
    "SignatureScheme",
    "default_group",
    "simulation_group",
    "hash_pair",
    "sha256_hex",
]
