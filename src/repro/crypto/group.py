"""A Schnorr group (prime-order subgroup of Z_p*) for signatures and ZKPs.

The default group uses the 1024-bit MODP safe prime from RFC 2409
(Oakley group 2). Its subgroup of quadratic residues has prime order
``q = (p - 1) / 2``, and ``g = 4 = 2^2`` generates it. 1024 bits is
below modern production standards but is exactly the right size for a
laptop-scale reproduction: operations stay genuinely asymmetric while a
benchmark can still verify thousands of proofs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.common.errors import CryptoError

# RFC 2409, section 6.2 (Oakley group 2): a 1024-bit safe prime.
_OAKLEY2_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE65381FFFFFFFFFFFFFFFF",
    16,
)


@dataclass(frozen=True)
class SchnorrGroup:
    """Prime-order subgroup of Z_p* with generator ``g`` of order ``q``."""

    p: int
    q: int
    g: int

    def validate(self) -> None:
        """Check the public parameters are internally consistent."""
        if (self.p - 1) % self.q != 0:
            raise CryptoError("q must divide p - 1")
        if pow(self.g, self.q, self.p) != 1:
            raise CryptoError("g does not have order dividing q")
        if self.g in (0, 1):
            raise CryptoError("g must generate a non-trivial subgroup")

    def exp(self, base: int, exponent: int) -> int:
        """``base ** exponent mod p``."""
        return pow(base, exponent % self.q, self.p)

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.p

    def inv(self, a: int) -> int:
        return pow(a, -1, self.p)

    def is_element(self, a: int) -> bool:
        """True when ``a`` lies in the order-q subgroup."""
        return 0 < a < self.p and pow(a, self.q, self.p) == 1

    def hash_to_exponent(self, *parts: bytes | str | int) -> int:
        """Fiat-Shamir style hash of ``parts`` into Z_q."""
        hasher = hashlib.sha256()
        for part in parts:
            if isinstance(part, int):
                length = max(1, (part.bit_length() + 7) // 8)
                chunk = part.to_bytes(length, "big")
            elif isinstance(part, str):
                chunk = part.encode()
            else:
                chunk = part
            hasher.update(len(chunk).to_bytes(4, "big"))
            hasher.update(chunk)
        return int.from_bytes(hasher.digest(), "big") % self.q

    def independent_generator(self, label: str) -> int:
        """Derive a second generator with no *published* discrete log.

        Production systems obtain ``h`` from a trusted setup; here we
        hash a public label to an exponent. The discrete log is thus
        derivable from the label — acceptable for a reproduction, noted
        in DESIGN.md — but no code path in this library ever uses it.
        """
        return self.exp(self.g, self.hash_to_exponent("generator", label))


def default_group() -> SchnorrGroup:
    """The library-wide default group (RFC 2409 Oakley group 2, g = 4)."""
    group = SchnorrGroup(p=_OAKLEY2_P, q=(_OAKLEY2_P - 1) // 2, g=4)
    group.validate()
    return group


# A 256-bit safe prime (generated once with Miller-Rabin, seed 20260706).
_SIM_P = int(
    "DF7AF367C850F153B21ADAD929F6C348881226C46D510F5FFC2D2AAA013886CB",
    16,
)


def simulation_group() -> SchnorrGroup:
    """A reduced-security 256-bit group for *bulk simulation only*.

    Range proofs over the 1024-bit default group cost hundreds of
    milliseconds each; system-level benchmarks that verify thousands of
    proofs use this group instead. The constructions are identical —
    only the modulus (and hence the concrete security level) shrinks.
    Never treat this group as cryptographically strong.
    """
    group = SchnorrGroup(p=_SIM_P, q=(_SIM_P - 1) // 2, g=4)
    group.validate()
    return group
