"""Hashing helpers used throughout the ledger and consensus layers."""

from __future__ import annotations

import hashlib


def sha256_hex(data: bytes | str) -> str:
    """Hex SHA-256 digest of ``data`` (strings are UTF-8 encoded)."""
    if isinstance(data, str):
        data = data.encode()
    return hashlib.sha256(data).hexdigest()


def hash_pair(left: str, right: str) -> str:
    """Digest of two hex digests, used for Merkle interior nodes.

    The two inputs are length-prefixed before hashing so that
    ``hash_pair(a, b)`` cannot collide with a differently split pair.
    """
    material = f"{len(left)}:{left}|{len(right)}:{right}"
    return sha256_hex(material)


def hash_int(value: int) -> str:
    """Digest of an arbitrary-precision integer (big-endian bytes)."""
    length = max(1, (value.bit_length() + 7) // 8)
    return sha256_hex(value.to_bytes(length, "big", signed=False))
