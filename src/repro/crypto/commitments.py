"""Pedersen commitments over a Schnorr group.

A Pedersen commitment ``C = g^v * h^r mod p`` is perfectly hiding and
computationally binding, and is *additively homomorphic*:
``C(v1, r1) * C(v2, r2) = C(v1 + v2, r1 + r2)``. The verifiability layer
(paper section 2.3.2) uses this homomorphism to check mass conservation
of private transfers — inputs equal outputs — without seeing any amount.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.group import SchnorrGroup, default_group


@dataclass(frozen=True)
class PedersenParams:
    """Public commitment parameters: the group and two generators."""

    group: SchnorrGroup
    g: int
    h: int

    @staticmethod
    def create(group: SchnorrGroup | None = None) -> "PedersenParams":
        group = group or default_group()
        return PedersenParams(
            group=group, g=group.g, h=group.independent_generator("pedersen-h")
        )

    def random_blinding(self) -> int:
        """A uniformly random blinding factor in Z_q."""
        return secrets.randbelow(self.group.q)

    def commit(self, value: int, blinding: int) -> "PedersenCommitment":
        """Commit to ``value`` with the given blinding factor."""
        point = self.group.mul(
            self.group.exp(self.g, value), self.group.exp(self.h, blinding)
        )
        return PedersenCommitment(params=self, point=point)


@dataclass(frozen=True)
class PedersenCommitment:
    """A commitment point together with its public parameters."""

    params: PedersenParams
    point: int

    def verify_opening(self, value: int, blinding: int) -> bool:
        """True when ``(value, blinding)`` opens this commitment."""
        return self.params.commit(value, blinding).point == self.point

    def __mul__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Homomorphic addition of committed values."""
        if self.params is not other.params and self.params != other.params:
            raise CryptoError("cannot combine commitments under different params")
        return PedersenCommitment(
            params=self.params, point=self.params.group.mul(self.point, other.point)
        )

    def inverse(self) -> "PedersenCommitment":
        """Commitment to the negated value (same magnitude of blinding)."""
        return PedersenCommitment(
            params=self.params, point=self.params.group.inv(self.point)
        )

    def is_commitment_to_zero_with(self, blinding: int) -> bool:
        """True when this point equals ``h^blinding`` (i.e. commits to 0)."""
        return self.point == self.params.group.exp(self.params.h, blinding)
