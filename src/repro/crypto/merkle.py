"""Merkle trees with inclusion proofs.

Blocks commit to their transaction batch through a Merkle root; private
data collections (paper section 2.3.1) put only such digests on the shared
ledger and verify the off-ledger data against them.

Odd levels duplicate the final node (the Bitcoin convention), which keeps
proof generation simple and is documented behaviour, not an accident.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.digests import hash_pair, sha256_hex


@dataclass(frozen=True)
class MerkleProof:
    """An audit path from one leaf to the root.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from the
    leaf level upward.
    """

    leaf: str
    leaf_index: int
    path: tuple[tuple[str, bool], ...]

    def root(self) -> str:
        """Recompute the root this proof commits to."""
        current = self.leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = hash_pair(current, sibling)
            else:
                current = hash_pair(sibling, current)
        return current


class MerkleTree:
    """A static Merkle tree over a list of leaf payloads."""

    def __init__(self, leaves: list[bytes | str]) -> None:
        if not leaves:
            raise CryptoError("Merkle tree requires at least one leaf")
        self._leaf_digests = [sha256_hex(leaf) for leaf in leaves]
        self._levels = self._build_levels(self._leaf_digests)

    @staticmethod
    def _build_levels(leaf_digests: list[str]) -> list[list[str]]:
        levels = [list(leaf_digests)]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above = []
            for i in range(0, len(below), 2):
                left = below[i]
                right = below[i + 1] if i + 1 < len(below) else below[i]
                above.append(hash_pair(left, right))
            levels.append(above)
        return levels

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def leaf_digests(self) -> list[str]:
        return list(self._leaf_digests)

    def __len__(self) -> int:
        return len(self._leaf_digests)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_digests):
            raise CryptoError(
                f"leaf index {index} out of range [0, {len(self._leaf_digests)})"
            )
        path: list[tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_pos = position + 1 if position + 1 < len(level) else position
                path.append((level[sibling_pos], True))
            else:
                path.append((level[position - 1], False))
            position //= 2
        return MerkleProof(
            leaf=self._leaf_digests[index], leaf_index=index, path=tuple(path)
        )

    def verify(self, proof: MerkleProof) -> bool:
        """True when ``proof`` leads to this tree's root."""
        return proof.root() == self.root

    @staticmethod
    def verify_against_root(proof: MerkleProof, root: str) -> bool:
        """Verify a proof without holding the tree (the on-ledger case)."""
        return proof.root() == root


def merkle_root(leaves: list[bytes | str]) -> str:
    """Convenience: the Merkle root of ``leaves`` (empty list → digest of b'')."""
    if not leaves:
        return sha256_hex(b"")
    return MerkleTree(leaves).root
