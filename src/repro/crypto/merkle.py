"""Merkle trees with inclusion proofs — with cached construction.

Blocks commit to their transaction batch through a Merkle root; private
data collections (paper section 2.3.1) put only such digests on the shared
ledger and verify the off-ledger data against them.

Odd levels duplicate the final node (the Bitcoin convention), which keeps
proof generation simple and is documented behaviour, not an accident.

Construction is cached on the protocol hot path:

* leaf digests are interned (an LRU over payload -> SHA-256), so a
  payload hashed for ``Block.create`` is not re-hashed when the block is
  validated on append or audited later;
* whole roots are memoized by their leaf-digest tuple, so re-deriving a
  block's root (``validate_payload``, ``verify_chain``, fuzz-monitor
  linkage checks) is a dictionary lookup instead of a full rebuild;
* :class:`IncrementalMerkleRoot` maintains the root of an append-style
  batch with O(log n) cached subtree peaks per append instead of an
  O(n) rebuild per transaction.

``MERKLE_COUNTERS`` tracks interior nodes actually hashed vs. served
from cache (surfaced through ``repro.bench.profiling``). All caches are
content-keyed and deterministic, so same-seed runs stay byte-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.digests import hash_pair, sha256_hex

#: Capacity of the leaf-digest intern table and the root memo.
_LEAF_CACHE_CAPACITY = 65536
_ROOT_CACHE_CAPACITY = 8192

_LEAF_CACHE: OrderedDict[bytes | str, str] = OrderedDict()
_ROOT_CACHE: OrderedDict[tuple[str, ...], str] = OrderedDict()

#: Live counters for the hot-path benchmarks (see
#: ``repro.bench.profiling.hotpath_counters``).
MERKLE_COUNTERS = {
    "nodes_hashed": 0,
    "leaves_hashed": 0,
    "leaf_cache_hits": 0,
    "root_cache_hits": 0,
}


def reset_merkle_caches() -> None:
    """Clear caches and counters (benchmark isolation)."""
    _LEAF_CACHE.clear()
    _ROOT_CACHE.clear()
    for key in MERKLE_COUNTERS:
        MERKLE_COUNTERS[key] = 0


def _leaf_digest(leaf: bytes | str) -> str:
    """Interned SHA-256 of one leaf payload."""
    cached = _LEAF_CACHE.get(leaf)
    if cached is not None:
        _LEAF_CACHE.move_to_end(leaf)
        MERKLE_COUNTERS["leaf_cache_hits"] += 1
        return cached
    digest = sha256_hex(leaf)
    MERKLE_COUNTERS["leaves_hashed"] += 1
    _LEAF_CACHE[leaf] = digest
    while len(_LEAF_CACHE) > _LEAF_CACHE_CAPACITY:
        _LEAF_CACHE.popitem(last=False)
    return digest


def _hash_pair(left: str, right: str) -> str:
    MERKLE_COUNTERS["nodes_hashed"] += 1
    return hash_pair(left, right)


@dataclass(frozen=True)
class MerkleProof:
    """An audit path from one leaf to the root.

    ``path`` holds ``(sibling_digest, sibling_is_right)`` pairs from the
    leaf level upward.
    """

    leaf: str
    leaf_index: int
    path: tuple[tuple[str, bool], ...]

    def root(self) -> str:
        """Recompute the root this proof commits to."""
        current = self.leaf
        for sibling, sibling_is_right in self.path:
            if sibling_is_right:
                current = hash_pair(current, sibling)
            else:
                current = hash_pair(sibling, current)
        return current


class MerkleTree:
    """A static Merkle tree over a list of leaf payloads."""

    def __init__(self, leaves: list[bytes | str]) -> None:
        if not leaves:
            raise CryptoError("Merkle tree requires at least one leaf")
        self._leaf_digests = [_leaf_digest(leaf) for leaf in leaves]
        self._levels = self._build_levels(self._leaf_digests)

    @staticmethod
    def _build_levels(leaf_digests: list[str]) -> list[list[str]]:
        levels = [list(leaf_digests)]
        while len(levels[-1]) > 1:
            below = levels[-1]
            above = []
            for i in range(0, len(below), 2):
                left = below[i]
                right = below[i + 1] if i + 1 < len(below) else below[i]
                above.append(_hash_pair(left, right))
            levels.append(above)
        return levels

    @property
    def root(self) -> str:
        return self._levels[-1][0]

    @property
    def leaf_digests(self) -> list[str]:
        return list(self._leaf_digests)

    def __len__(self) -> int:
        return len(self._leaf_digests)

    def proof(self, index: int) -> MerkleProof:
        """Inclusion proof for the leaf at ``index``."""
        if not 0 <= index < len(self._leaf_digests):
            raise CryptoError(
                f"leaf index {index} out of range [0, {len(self._leaf_digests)})"
            )
        path: list[tuple[str, bool]] = []
        position = index
        for level in self._levels[:-1]:
            if position % 2 == 0:
                sibling_pos = position + 1 if position + 1 < len(level) else position
                path.append((level[sibling_pos], True))
            else:
                path.append((level[position - 1], False))
            position //= 2
        return MerkleProof(
            leaf=self._leaf_digests[index], leaf_index=index, path=tuple(path)
        )

    def verify(self, proof: MerkleProof) -> bool:
        """True when ``proof`` leads to this tree's root."""
        return proof.root() == self.root

    @staticmethod
    def verify_against_root(proof: MerkleProof, root: str) -> bool:
        """Verify a proof without holding the tree (the on-ledger case)."""
        return proof.root() == root


def _root_of_digests(leaf_digests: list[str]) -> str:
    """Root only — no stored levels (and no proof support)."""
    level = leaf_digests
    while len(level) > 1:
        level = [
            _hash_pair(level[i], level[i + 1] if i + 1 < len(level) else level[i])
            for i in range(0, len(level), 2)
        ]
    return level[0]


def merkle_root(leaves: list[bytes | str]) -> str:
    """The Merkle root of ``leaves`` (empty list → digest of b'').

    Memoized by the leaf-digest tuple: re-deriving a known batch's root
    (block payload validation, chain audits) is a cache lookup.
    """
    if not leaves:
        return sha256_hex(b"")
    key = tuple(_leaf_digest(leaf) for leaf in leaves)
    cached = _ROOT_CACHE.get(key)
    if cached is not None:
        _ROOT_CACHE.move_to_end(key)
        MERKLE_COUNTERS["root_cache_hits"] += 1
        return cached
    root = _root_of_digests(list(key))
    _ROOT_CACHE[key] = root
    while len(_ROOT_CACHE) > _ROOT_CACHE_CAPACITY:
        _ROOT_CACHE.popitem(last=False)
    return root


class IncrementalMerkleRoot:
    """Streaming Merkle root for append-style block assembly.

    Keeps the cached roots of the perfect-subtree *peaks* of the leaves
    appended so far (a binary-counter decomposition), so each append
    hashes O(log n) amortized interior nodes and :meth:`root` folds the
    peaks with the same odd-leaf duplication convention as
    :class:`MerkleTree` — the two always agree on the same leaves.
    """

    __slots__ = ("_peaks", "_count")

    def __init__(self) -> None:
        #: (height, digest) peaks, height strictly decreasing.
        self._peaks: list[tuple[int, str]] = []
        self._count = 0

    def append(self, leaf: bytes | str) -> None:
        height, digest = 0, _leaf_digest(leaf)
        while self._peaks and self._peaks[-1][0] == height:
            _, left = self._peaks.pop()
            digest = _hash_pair(left, digest)
            height += 1
        self._peaks.append((height, digest))
        self._count += 1

    def __len__(self) -> int:
        return self._count

    def root(self) -> str:
        """Root of everything appended so far (empty → digest of b'')."""
        if not self._peaks:
            return sha256_hex(b"")
        height, current = self._peaks[-1]
        for peak_height, peak_digest in reversed(self._peaks[:-1]):
            # Lift the running suffix to the peak's height, duplicating
            # the lone node at each odd level (the Bitcoin convention).
            while height < peak_height:
                current = _hash_pair(current, current)
                height += 1
            current = _hash_pair(peak_digest, current)
            height = peak_height + 1
        return current
