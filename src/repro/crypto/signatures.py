"""Digital signatures and the permissioned membership service.

A permissioned blockchain is defined by "a set of known, identified
nodes" (paper section 1); the :class:`MembershipService` is that identity
layer. It issues key pairs under one of two schemes:

* :class:`SchnorrSignatureScheme` — real public-key signatures over the
  library's Schnorr group. Anyone holding the public key can verify.
* :class:`HmacSignatureScheme` — CA-mediated MACs. Verification asks the
  membership service (which holds every member's secret) to recompute
  the tag. This is orders of magnitude faster and is a sound substitute
  exactly because the permissioned setting already trusts the CA.

Both schemes expose modelled CPU costs (``sign_cost`` / ``verify_cost``)
so the simulator can charge realistic crypto time regardless of which
scheme actually runs.
"""

from __future__ import annotations

import hashlib
import hmac
import secrets
from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import CryptoError
from repro.crypto.group import SchnorrGroup, default_group
from repro.crypto.sigcache import DEFAULT_CAPACITY, SignatureCache


@dataclass(frozen=True)
class KeyPair:
    """An identity's signing material. ``private`` must never leave the node."""

    identity: str
    private: bytes
    public: bytes


class SignatureScheme:
    """Interface implemented by both signature schemes."""

    #: Modelled CPU seconds charged per signature by the simulator.
    sign_cost: float = 0.0
    #: Modelled CPU seconds charged per verification by the simulator.
    verify_cost: float = 0.0

    def keygen(self, identity: str) -> KeyPair:
        raise NotImplementedError

    def sign(self, keypair: KeyPair, message: bytes) -> bytes:
        raise NotImplementedError

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        raise NotImplementedError


class SchnorrSignatureScheme(SignatureScheme):
    """Schnorr signatures with deterministic (RFC 6979 style) nonces."""

    # Costs modelled on ~1 GHz-class ECDSA numbers the FastFabric paper
    # assumes: signing and verifying are both sub-millisecond but far from
    # free when a peer validates thousands of txs per second.
    sign_cost = 0.0002
    verify_cost = 0.0005

    def __init__(self, group: SchnorrGroup | None = None) -> None:
        self._group = group or default_group()

    def keygen(self, identity: str) -> KeyPair:
        x = secrets.randbelow(self._group.q - 1) + 1
        y = self._group.exp(self._group.g, x)
        return KeyPair(
            identity=identity,
            private=x.to_bytes(160, "big"),
            public=y.to_bytes(160, "big"),
        )

    def sign(self, keypair: KeyPair, message: bytes) -> bytes:
        group = self._group
        x = int.from_bytes(keypair.private, "big")
        y = int.from_bytes(keypair.public, "big")
        # Deterministic nonce: hash of private key and message.
        k = group.hash_to_exponent(keypair.private, message, "nonce")
        if k == 0:
            k = 1
        big_r = group.exp(group.g, k)
        e = group.hash_to_exponent(big_r, y, message)
        s = (k + e * x) % group.q
        return f"{e:x}|{s:x}".encode()

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        group = self._group
        try:
            e_hex, s_hex = signature.decode().split("|")
            e, s = int(e_hex, 16), int(s_hex, 16)
        except (ValueError, UnicodeDecodeError):
            return False
        y = int.from_bytes(public, "big")
        if not group.is_element(y):
            return False
        # R' = g^s * y^(-e); valid iff e == H(R', y, message).
        r_prime = group.mul(group.exp(group.g, s), group.inv(group.exp(y, e)))
        return e == group.hash_to_exponent(r_prime, y, message)


class HmacSignatureScheme(SignatureScheme):
    """CA-mediated MACs: fast, verified through the membership service.

    The keyed HMAC object for each identity is built once at enrollment
    and re-used via ``copy()`` — key-schedule setup (two SHA-256 block
    compressions per key) is paid per member, not per verification, so
    neither signing nor verifying re-derives the member secret.
    """

    sign_cost = 0.0002
    verify_cost = 0.0005

    def __init__(self) -> None:
        self._secrets: dict[bytes, bytes] = {}
        #: public key -> keyed (empty-message) HMAC object, cloned per call.
        self._keyed: dict[bytes, hmac.HMAC] = {}

    def _keyed_hmac(self, public: bytes, secret: bytes) -> hmac.HMAC:
        keyed = self._keyed.get(public)
        if keyed is None:
            keyed = hmac.new(secret, digestmod=hashlib.sha256)
            self._keyed[public] = keyed
        return keyed

    def keygen(self, identity: str) -> KeyPair:
        secret = secrets.token_bytes(32)
        public = hashlib.sha256(identity.encode() + secret).digest()
        self._secrets[public] = secret
        self._keyed_hmac(public, secret)
        return KeyPair(identity=identity, private=secret, public=public)

    def sign(self, keypair: KeyPair, message: bytes) -> bytes:
        keyed = self._keyed.get(keypair.public)
        if keyed is None:
            return hmac.new(keypair.private, message, hashlib.sha256).digest()
        mac = keyed.copy()
        mac.update(message)
        return mac.digest()

    def verify(self, public: bytes, message: bytes, signature: bytes) -> bool:
        secret = self._secrets.get(public)
        if secret is None:
            return False
        mac = self._keyed_hmac(public, secret).copy()
        mac.update(message)
        return hmac.compare_digest(mac.digest(), signature)


class MembershipService:
    """The certificate authority of a permissioned network.

    Registers identities, hands out key pairs, and answers verification
    queries by identity. Revoked members fail verification immediately,
    modelling certificate revocation.
    """

    def __init__(
        self,
        scheme: SignatureScheme | None = None,
        cache_size: int = DEFAULT_CAPACITY,
    ) -> None:
        self._scheme = scheme or HmacSignatureScheme()
        self._members: dict[str, KeyPair] = {}
        self._revoked: set[str] = set()
        #: LRU of verification outcomes keyed by (identity, message,
        #: signature). Revocation is checked before the cache, so a
        #: cached True never outlives the member's enrollment.
        self._cache = SignatureCache(capacity=cache_size)

    @property
    def scheme(self) -> SignatureScheme:
        return self._scheme

    def register(self, identity: str) -> KeyPair:
        """Enroll ``identity`` and return its key pair."""
        if identity in self._members:
            raise CryptoError(f"identity already registered: {identity}")
        keypair = self._scheme.keygen(identity)
        self._members[identity] = keypair
        return keypair

    def is_member(self, identity: str) -> bool:
        return identity in self._members and identity not in self._revoked

    def revoke(self, identity: str) -> None:
        if identity not in self._members:
            raise CryptoError(f"cannot revoke unknown identity: {identity}")
        self._revoked.add(identity)

    def public_key(self, identity: str) -> bytes:
        try:
            return self._members[identity].public
        except KeyError:
            raise CryptoError(f"unknown identity: {identity}") from None

    def sign(self, identity: str, message: bytes) -> bytes:
        """Sign on behalf of a registered member (nodes hold their keypair)."""
        if identity not in self._members:
            raise CryptoError(f"unknown identity: {identity}")
        return self._scheme.sign(self._members[identity], message)

    def verify(self, identity: str, message: bytes, signature: bytes) -> bool:
        """Verify a member's signature; revoked members always fail.

        Outcomes are cached per (identity, message, signature), so a
        validator re-checking a signature it has already seen — a quorum
        certificate vote, an endorsement re-validated at commit — skips
        the underlying scheme entirely (the FastFabric fast path).
        """
        if not self.is_member(identity):
            return False
        key = (identity, message, signature)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        ok = self._scheme.verify(
            self._members[identity].public, message, signature
        )
        self._cache.put(key, ok)
        return ok

    def verify_batch(
        self, entries: Iterable[tuple[str, bytes, bytes]]
    ) -> bool:
        """Verify a quorum certificate / endorsement set: every
        (identity, message, signature) entry must check out. Each entry
        goes through (and populates) the verification cache, so
        re-presenting a certificate is pure cache hits."""
        return all(
            self.verify(identity, message, signature)
            for identity, message, signature in entries
        )

    @property
    def cache_stats(self) -> dict[str, int]:
        """Verification-cache hit/miss counters (benchmark surface)."""
        return {"hits": self._cache.hits, "misses": self._cache.misses}
