"""Signature-verification caching — the FastFabric crypto fast path.

FastFabric (Gorenflo et al., ICBC 2019) gets a large share of its
headline speedup from not redoing crypto work: signatures the peer has
already checked (at endorsement receipt, in an earlier block, inside a
quorum certificate seen before) are skipped on re-validation. Two
pieces model that here:

* :class:`SignatureCache` — a real LRU over (signer, digest) pairs used
  by :class:`~repro.crypto.signatures.MembershipService` so repeated
  verifications of the same bytes short-circuit the underlying scheme.
* :class:`ModelledSigVerifier` — the *accounting* twin: a deterministic
  first-sight ledger that charges the modelled ``verify_cost`` exactly
  once per (signer, digest) pair and zero on every later sight. Systems
  charge simulated CPU through it, so a cache hit is free only where a
  real FastFabric-style peer would also skip the work.

Both are plain per-process state with deterministic (insertion-ordered)
eviction, so same-seed runs — serial or forked-parallel — stay
byte-identical.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Hashable, Iterable

#: Default capacity of both cache kinds. Large enough that a benchmark
#: run never evicts; bounded so long-lived processes cannot leak.
DEFAULT_CAPACITY = 65536


class SignatureCache:
    """LRU of verification outcomes keyed by (signer, digest, signature).

    ``get``/``put`` are split (rather than a compute-through helper) so
    the membership service can keep its revocation check *outside* the
    cache: a cached True must never outlive the member's enrollment.
    """

    __slots__ = ("_entries", "capacity", "hits", "misses")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        self._entries: OrderedDict[Hashable, bool] = OrderedDict()
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    def get(self, key: Hashable) -> bool | None:
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return entry

    def put(self, key: Hashable, ok: bool) -> None:
        self._entries[key] = ok
        self._entries.move_to_end(key)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)

    def __len__(self) -> int:
        return len(self._entries)


class ModelledSigVerifier:
    """First-sight ledger for *modelled* signature-verification cost.

    ``charge(signer, digest)`` returns ``verify_cost`` the first time a
    pair is seen and 0.0 afterwards — the validating peer verified that
    signature once and caches the outcome, so re-encountering it (block
    re-validation, a quorum certificate carrying votes already checked,
    an endorsement verified at submission) costs nothing. Counters keep
    the verifies-performed vs. verifies-skipped split for benchmarks.
    """

    __slots__ = ("_seen", "capacity", "verify_cost", "verified", "cached")

    def __init__(
        self, verify_cost: float, capacity: int = DEFAULT_CAPACITY
    ) -> None:
        self._seen: OrderedDict[Hashable, None] = OrderedDict()
        self.capacity = capacity
        self.verify_cost = verify_cost
        self.verified = 0  # real verifications performed (charged)
        self.cached = 0  # re-verifications skipped (free)

    def charge(self, signer: str, digest: str) -> float:
        key = (signer, digest)
        if key in self._seen:
            self._seen.move_to_end(key)
            self.cached += 1
            return 0.0
        self._seen[key] = None
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        self.verified += 1
        return self.verify_cost

    def charge_batch(self, pairs: Iterable[tuple[str, str]]) -> float:
        """Batch verification of a quorum certificate / endorsement set:
        the sum of first-sight charges over its (signer, digest) pairs."""
        return sum(self.charge(signer, digest) for signer, digest in pairs)

    def record(self, signer: str, digest: str) -> bool:
        """Mark a pair verified without charging (the verification was
        already paid for elsewhere on this peer's timeline). Returns
        True when the pair was new."""
        key = (signer, digest)
        if key in self._seen:
            self._seen.move_to_end(key)
            return False
        self._seen[key] = None
        while len(self._seen) > self.capacity:
            self._seen.popitem(last=False)
        return True
