"""The append-only block log (WAL): length-prefixed, checksummed, segmented.

Record layout (all integers big-endian)::

    MAGIC(4) | payload_length(4) | crc32(payload)(4) | payload

Replay walks records sequentially and stops at the first sign of
corruption — a bad magic, a length running past end-of-file, or a CRC
mismatch. Everything before that point is trusted; everything from it
on is a **torn tail** (a write in flight when power failed, or a bit
flip) and is discarded, to be re-fetched from peers. That is the
classic ARIES-style contract: the checksum makes "how far did the log
really get" a well-defined question.

The log is *segmented*: every state-snapshot spill rolls to a fresh
segment file, so pruning the WAL after a snapshot is a file delete (no
rewrite) and recovery cost is proportional to the tail since the last
snapshot, not the chain length.

Fsync policy decides when appends become durable:

* ``per-block`` — fsync after every append (group size 1);
* ``group:N`` — fsync once per N appends (group commit);
* ``async`` — never fsync on append; only snapshot spills and clean
  shutdown persist the log (maximum throughput, longest loss window).
"""

from __future__ import annotations

import struct
import zlib
from dataclasses import dataclass

from repro.common.errors import StorageError
from repro.ledger.store import STORE_COUNTERS
from repro.storage.backend import STORAGE_COUNTERS

_MAGIC = b"WALR"
_HEADER = struct.Struct(">4sII")

#: WAL segment name pattern; ids are monotone, gaps allowed.
SEGMENT_PREFIX = "wal-"
SEGMENT_SUFFIX = ".log"


def segment_name(segment_id: int) -> str:
    return f"{SEGMENT_PREFIX}{segment_id:06d}{SEGMENT_SUFFIX}"


@dataclass(frozen=True)
class FsyncPolicy:
    """When the WAL calls fsync. Parse with :meth:`parse`."""

    name: str
    group_size: int  # 0 = never (async)

    @classmethod
    def parse(cls, spec: str) -> "FsyncPolicy":
        if spec == "per-block":
            return cls("per-block", 1)
        if spec == "async":
            return cls("async", 0)
        if spec.startswith("group:"):
            try:
                size = int(spec.split(":", 1)[1])
            except ValueError:
                size = 0
            if size >= 1:
                return cls(spec, size)
        raise StorageError(
            f"unknown fsync policy {spec!r} "
            "(expected per-block | group:N | async)"
        )


def encode_record(payload: bytes) -> bytes:
    return _HEADER.pack(_MAGIC, len(payload), zlib.crc32(payload)) + payload


@dataclass
class ReplayResult:
    """Outcome of replaying one segment (or a whole log)."""

    payloads: list[bytes]
    torn: bool = False
    #: Bytes of valid prefix (where a repair would truncate to).
    valid_bytes: int = 0


def replay_records(data: bytes) -> ReplayResult:
    """Decode every intact record; flag (and drop) the torn tail."""
    payloads: list[bytes] = []
    offset = 0
    size = len(data)
    while offset < size:
        if offset + _HEADER.size > size:
            return ReplayResult(payloads, torn=True, valid_bytes=offset)
        magic, length, crc = _HEADER.unpack_from(data, offset)
        body_start = offset + _HEADER.size
        if magic != _MAGIC or body_start + length > size:
            return ReplayResult(payloads, torn=True, valid_bytes=offset)
        payload = data[body_start:body_start + length]
        if zlib.crc32(payload) != crc:
            return ReplayResult(payloads, torn=True, valid_bytes=offset)
        payloads.append(payload)
        offset = body_start + length
    return ReplayResult(payloads, torn=False, valid_bytes=offset)


class BlockLog:
    """Appender over one live segment, with policy-driven fsync batching."""

    def __init__(
        self,
        backend,
        policy: FsyncPolicy | str = "per-block",
        segment_id: int = 1,
    ) -> None:
        self.backend = backend
        self.policy = (
            policy if isinstance(policy, FsyncPolicy)
            else FsyncPolicy.parse(policy)
        )
        self.segment_id = segment_id
        self._unsynced = 0

    @property
    def current_segment(self) -> str:
        return segment_name(self.segment_id)

    def append(self, payload: bytes) -> None:
        """Append one record; fsync according to the policy."""
        record = encode_record(payload)
        self.backend.append(self.current_segment, record)
        # Write-amplification ledger: WAL bytes vs spill vs compaction.
        STORE_COUNTERS["wal_bytes_written"] += len(record)
        self._unsynced += 1
        if self.policy.group_size and self._unsynced >= self.policy.group_size:
            self.flush()

    def flush(self) -> None:
        """Force the segment durable regardless of policy."""
        if self._unsynced == 0 and not self.backend.exists(
            self.current_segment
        ):
            return
        if self.backend.exists(self.current_segment):
            self.backend.fsync(self.current_segment)
        self._unsynced = 0

    def roll(self) -> str:
        """Flush and close the live segment; start the next one.

        Returns the finished segment's name (for the manifest).
        """
        finished = self.current_segment
        self.flush()
        self.segment_id += 1
        self._unsynced = 0
        return finished

    def replay_segment(self, name: str) -> ReplayResult:
        """Replay one segment by name; missing files replay empty (a
        segment rolled but never written to is simply absent)."""
        if not self.backend.exists(name):
            return ReplayResult([], torn=False, valid_bytes=0)
        result = replay_records(self.backend.read(name))
        if result.torn:
            STORAGE_COUNTERS["torn_detected"] += 1
        return result
