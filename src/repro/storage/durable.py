"""Durable nodes: WAL + snapshot tier + crash-restart recovery.

This wires :mod:`repro.storage` into the chaos engine. A
:class:`DurableNode` commits announced blocks through a
:class:`DurableLedger` (append-only checksummed WAL, periodic state
spills into the LSM snapshot tier), and treats a crash the way the
paper's crash-failure model does — the process loses *everything* in
memory and its disk reverts to what was durable. Recovery is the real
algorithm:

1. read the manifest; load + checksum-verify the snapshot runs; verify
   the rebuilt store's Merkle state root against the root the manifest
   recorded (any failure ⇒ the snapshot tier is untrusted ⇒ full resync
   from genesis via peers);
2. replay the WAL tail — CRC-verified records only; each decoded block
   must hash-chain from the recovered tip and reproduce the state root
   its record committed to; a torn tail is truncated (repaired in
   place) and the difference fetched from peers;
3. only *then* re-arm protocol timers and re-join (the restart work is
   modelled as virtual time via :meth:`~repro.sim.node.Node.recovery_delay`,
   proportional to the WAL tail length).

:class:`DurableCluster` is the simulation topology the DST engine
fuzzes: one never-crashed :class:`OrdererNode` streaming a canonical
pre-built chain, N durable nodes with independently seeded (optionally
faulty) storage backends, and a serial-oracle audit asserting every
recovered node ends byte-identical — same tip hash, same Merkle state
root — to the no-crash serial execution.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable

from repro.common.errors import ConfigError, LedgerError, StorageError
from repro.common.types import Operation, OpType, Transaction
from repro.execution.contracts import ContractRegistry, standard_registry
from repro.execution.serial import execute_block_serially
from repro.ledger.block import Block, genesis_block
from repro.ledger.chain import Blockchain
from repro.ledger.store import STORE_COUNTERS, StateStore, Version
from repro.sim.core import Simulation
from repro.sim.network import LanLatency, LatencyModel, Network
from repro.sim.node import Node
from repro.storage.backend import FaultProfile, MemoryBackend
from repro.storage.codec import (
    block_from_dict,
    block_to_dict,
    decode_block,
    encode_block,
    state_root,
)
from repro.storage.paged import (
    DEFAULT_CACHE_BYTES,
    BlockCache,
    PagedStateStore,
)
from repro.storage.snapshots import (
    CompactionPolicy,
    SnapshotStore,
    SpillBuffer,
)
from repro.storage.wal import (
    SEGMENT_PREFIX,
    SEGMENT_SUFFIX,
    BlockLog,
    FsyncPolicy,
    replay_records,
    segment_name,
)

# -- data_dir validation ------------------------------------------------------

#: Real path -> original spelling of every data_dir handed out and not
#: yet released. Two different spellings resolving to the same real
#: directory would silently share WAL segments — rejected loudly.
_ACTIVE_DATA_DIRS: dict[str, str] = {}


def resolve_data_dir(path: str | Path, create: bool = True) -> Path:
    """Validate a durable-storage directory, loudly.

    Mirrors ``resolve_workers``: misconfiguration raises
    :class:`~repro.common.errors.ConfigError` with the reason, instead
    of surfacing later as a confusing I/O failure mid-commit. Rejected:
    empty paths, paths that exist but are not directories, non-creatable
    or non-writable directories, and *collisions* — a second spelling
    (say, a relative path) resolving to a directory already in active
    use under a different spelling.

    Call :func:`release_data_dir` when done (tests; the CLI releases on
    exit implicitly by process death).
    """
    spelling = str(path)
    if not spelling.strip():
        raise ConfigError("data_dir must be a non-empty path")
    p = Path(spelling).expanduser()
    if p.exists() and not p.is_dir():
        raise ConfigError(f"data_dir {spelling!r} exists and is not a directory")
    if not p.exists():
        if not create:
            raise ConfigError(f"data_dir {spelling!r} does not exist")
        try:
            p.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise ConfigError(
                f"data_dir {spelling!r} cannot be created: {exc}"
            ) from exc
    resolved = str(p.resolve())
    if not os.access(resolved, os.W_OK):
        raise ConfigError(f"data_dir {spelling!r} is not writable")
    held = _ACTIVE_DATA_DIRS.get(resolved)
    if held is not None and held != spelling:
        raise ConfigError(
            f"data_dir {spelling!r} resolves to {resolved!r}, already in "
            f"use under the spelling {held!r} — two nodes would share a WAL"
        )
    _ACTIVE_DATA_DIRS[resolved] = spelling
    return Path(resolved)


def release_data_dir(path: str | Path) -> None:
    """Release a directory acquired by :func:`resolve_data_dir`."""
    _ACTIVE_DATA_DIRS.pop(str(Path(path).expanduser().resolve()), None)


# -- the chain tail -----------------------------------------------------------


class ChainTail:
    """A ledger suffix: an anchor block plus the blocks chained onto it.

    Recovery cannot use :class:`~repro.ledger.chain.Blockchain` — that
    class indexes blocks by absolute height from genesis, while a
    recovered node holds only the snapshot anchor and the WAL tail. The
    tail enforces the same chaining invariants on append; since every
    block commits to its predecessor, tip-hash equality at equal height
    still implies full-chain equality.
    """

    def __init__(self, anchor: Block) -> None:
        self._blocks: list[Block] = [anchor]

    @property
    def anchor(self) -> Block:
        return self._blocks[0]

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    @property
    def height(self) -> int:
        return self._blocks[-1].height

    def tip_hash(self) -> str:
        return self._blocks[-1].block_hash

    def __len__(self) -> int:
        return len(self._blocks)

    def append(self, block: Block) -> None:
        if block.height != self.height + 1:
            raise LedgerError(
                f"expected height {self.height + 1}, got {block.height}"
            )
        if block.header.prev_hash != self.head.block_hash:
            raise LedgerError(
                f"block {block.height} does not chain from tail tip "
                f"{self.head.block_hash[:12]}…"
            )
        block.validate_payload()
        self._blocks.append(block)

    def blocks(self) -> list[Block]:
        """Anchor + tail, oldest first."""
        return list(self._blocks)


# -- the durable ledger -------------------------------------------------------


@dataclass
class RecoveryResult:
    """What :meth:`DurableLedger.recover` rebuilt, plus how."""

    tail: ChainTail
    store: StateStore
    spill: SpillBuffer
    replayed: int = 0
    torn: bool = False
    resync: bool = False
    snapshot_height: int = 0
    #: Run files on disk that the manifest did not reference — leaked by
    #: a crash between a run write (or compaction's manifest swap) and
    #: the delete loop — garbage-collected by this recovery.
    orphans_removed: int = 0


class DurableLedger:
    """WAL + snapshot tier behind one storage backend.

    The commit path appends ``encode_block(block, state_root)`` records
    (fsync per the policy); :meth:`maybe_snapshot` runs the spill cycle
    in crash-safe order — run file durable → WAL rolled → manifest
    swapped atomically → superseded segments deleted — so a crash at
    any point leaves a recoverable prefix.
    """

    def __init__(
        self,
        backend,
        policy: FsyncPolicy | str = "per-block",
        snapshot_interval: int = 4,
        max_runs: int = 4,
        paged: bool = False,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        compaction: "CompactionPolicy | str" = "full",
        overlay_budget_bytes: int = 0,
    ) -> None:
        if snapshot_interval < 1:
            raise ConfigError(
                f"snapshot_interval must be >= 1, got {snapshot_interval}"
            )
        if overlay_budget_bytes < 0:
            raise ConfigError(
                "overlay_budget_bytes must be >= 0, got "
                f"{overlay_budget_bytes}"
            )
        self.backend = backend
        self.policy = (
            policy if isinstance(policy, FsyncPolicy)
            else FsyncPolicy.parse(policy)
        )
        self.snapshots = SnapshotStore(
            backend, max_runs=max_runs, policy=compaction
        )
        self.snapshot_interval = snapshot_interval
        #: Resident-overlay byte threshold forcing a spill *between*
        #: interval snapshots (0 = interval-only). The spill is a full
        #: snapshot cycle — it must advance the anchor, because WAL
        #: replay re-executes the tail and would double-apply
        #: non-idempotent writes (increments) onto already-spilled state.
        self.overlay_budget_bytes = overlay_budget_bytes
        #: Recovery mode: paged serves reads straight from run files
        #: (O(WAL tail) restart, state bigger than RAM); materialized
        #: rebuilds the full StateStore (the equivalence oracle).
        self.paged = paged
        self.cache_bytes = cache_bytes
        self.log = BlockLog(backend, self.policy, self._live_segment_id())

    # -- segment bookkeeping -------------------------------------------------

    def _segment_ids(self) -> list[int]:
        ids = []
        for name in self.backend.list():
            if name.startswith(SEGMENT_PREFIX) and name.endswith(SEGMENT_SUFFIX):
                try:
                    ids.append(
                        int(name[len(SEGMENT_PREFIX):-len(SEGMENT_SUFFIX)])
                    )
                except ValueError:
                    continue
        return sorted(ids)

    def _live_segment_id(self) -> int:
        manifest = self.snapshots.read_manifest()
        floor = int(manifest.get("wal_segment", 1)) if manifest else 1
        ids = self._segment_ids()
        return max([floor] + ids)

    # -- commit path ---------------------------------------------------------

    def commit_block(self, block: Block, root: str) -> None:
        """Append one block record (durable per the fsync policy)."""
        self.log.append(encode_block(block, root))

    def maybe_snapshot(
        self, anchor: Block, root: str, buffer: SpillBuffer
    ) -> bool:
        """Spill when the WAL tail has grown ``snapshot_interval`` blocks
        — or earlier, when the overlay byte budget fills up."""
        manifest = self.snapshots.read_manifest()
        snapshot_height = int(manifest.get("snapshot_height", 0)) if manifest else 0
        due = anchor.height - snapshot_height >= self.snapshot_interval
        over_budget = (
            0 < self.overlay_budget_bytes <= buffer.resident_bytes
        )
        if not due and not over_budget:
            return False
        if over_budget and not due:
            STORE_COUNTERS["budget_spills"] += 1
        self.snapshot(anchor, root, buffer)
        return True

    def snapshot(self, anchor: Block, root: str, buffer: SpillBuffer) -> None:
        """One spill cycle, in crash-safe order.

        1. write the delta run (durable before anything references it);
        2. roll the WAL to a fresh segment (old segment flushed);
        3. swap the manifest atomically — this is the commit point;
        4. delete the WAL segments the new manifest no longer needs.

        A crash before (3) recovers from the *old* manifest + full WAL;
        between (3) and (4), replay skips records at or below the new
        snapshot height, so the stale segments are harmless.
        """
        manifest = self.snapshots.read_manifest() or {}
        rows = self.snapshots.rows_from_buffer(buffer)
        run_id = int(manifest.get("next_run_id", 1))
        entry = self.snapshots.write_run(run_id, rows)
        self.log.roll()
        new_manifest = {
            "runs": list(manifest.get("runs", ())) + [entry],
            "next_run_id": run_id + 1,
            "snapshot_height": anchor.height,
            "anchor": block_to_dict(anchor),
            "state_root": root,
            "wal_segment": self.log.segment_id,
        }
        self.snapshots.apply_policy(new_manifest)
        for segment_id in self._segment_ids():
            if segment_id < self.log.segment_id:
                self.backend.delete(segment_name(segment_id))

    def flush(self) -> None:
        """Force the live segment durable (clean shutdown)."""
        self.log.flush()

    # -- crash + recovery ----------------------------------------------------

    def power_fail(self) -> None:
        """The process died: the backend reverts to durable content."""
        self.backend.simulate_crash()

    def tail_record_count(self) -> int:
        """Intact WAL records past the snapshot height — the replay work
        a restart must do (drives the modelled recovery delay)."""
        manifest = self.snapshots.read_manifest()
        snapshot_height = int(manifest.get("snapshot_height", 0)) if manifest else 0
        count = 0
        for segment_id in self._segment_ids():
            name = segment_name(segment_id)
            result = replay_records(self.backend.read(name))
            for payload in result.payloads:
                try:
                    block, _root = decode_block(payload)
                except StorageError:
                    break
                if block.height > snapshot_height:
                    count += 1
            if result.torn:
                break
        return count

    def recover(
        self, registry_factory: Callable[[], ContractRegistry]
    ) -> RecoveryResult:
        """Rebuild (tail, store, spill buffer) from durable storage.

        Corruption handling follows the two-tier trust model: a bad
        snapshot run or state-root mismatch discredits the *whole* local
        state (``resync`` — wipe and refetch from genesis via peers); a
        torn or corrupt WAL record only discredits the log *from that
        point on* (truncate-and-repair, catch the difference up from
        peers). Replayed writes are mirrored into a fresh spill buffer
        so the next snapshot spill still covers them.
        """
        manifest = self.snapshots.read_manifest()
        # Garbage-collect orphaned run files first: a crash between a run
        # write (or compaction's manifest swap) and the delete loop leaks
        # files nothing references — harmless to reads, fatal to disk
        # budgets if left to accumulate forever.
        orphans = self.snapshots.orphan_runs(manifest)
        for name in orphans:
            self.backend.delete(name)
        tail = ChainTail(genesis_block())
        store = StateStore()
        spill = SpillBuffer()
        snapshot_height = 0
        resync = False
        if manifest is not None:
            try:
                if self.paged:
                    # O(index) open: footers + filters only. Whole-state
                    # root verification would defeat the O(WAL tail)
                    # restart; trust moves to the per-block checksums
                    # verified on every read (a bad footer still lands
                    # here as StorageError => resync).
                    loaded: StateStore = PagedStateStore(
                        self.backend,
                        manifest.get("runs", ()),
                        BlockCache(self.cache_bytes),
                    )
                else:
                    loaded = self.snapshots.load_state(manifest)
                anchor = (
                    block_from_dict(manifest["anchor"])
                    if "anchor" in manifest
                    else genesis_block()
                )
                recorded_root = manifest.get("state_root")
                if (
                    not self.paged
                    and recorded_root is not None
                    and state_root(loaded) != recorded_root
                ):
                    raise StorageError(
                        "snapshot state root does not match manifest"
                    )
                tail = ChainTail(anchor)
                store = loaded
                snapshot_height = int(manifest.get("snapshot_height", 0))
            except (StorageError, LedgerError, KeyError):
                resync = True
        replayed = 0
        torn = False
        if not resync:
            registry = registry_factory()
            for segment_id in self._segment_ids():
                name = segment_name(segment_id)
                data = self.backend.read(name)
                result = replay_records(data)
                stop = result.torn
                for payload in result.payloads:
                    try:
                        block, recorded_root = decode_block(payload)
                    except StorageError:
                        stop = torn = True
                        break
                    if block.height <= tail.height:
                        continue  # pre-snapshot record (stale segment)
                    try:
                        tail.append(block)
                    except LedgerError:
                        stop = torn = True
                        break
                    report = execute_block_serially(block, store, registry)
                    for index, rwset in enumerate(report.rwsets):
                        if rwset.ok:
                            spill.apply_writes(
                                rwset.writes, Version(block.height, index)
                            )
                    if not self.paged and state_root(store) != recorded_root:
                        # Intact record but irreproducible state: the
                        # snapshot tier under it cannot be trusted either.
                        # (Paged mode skips this O(state) audit — the
                        # per-block checksums on the read path carry the
                        # corruption-detection duty there.)
                        resync = True
                        break
                    replayed += 1
                if result.torn:
                    torn = True
                    # Repair: truncate the segment to its valid prefix so
                    # post-recovery appends land after intact records.
                    self.backend.replace(name, data[: result.valid_bytes])
                if stop or resync:
                    break
        if resync:
            # Local durable state is untrusted end to end: wipe it and
            # rebuild from genesis via peer catch-up.
            for name in list(self.backend.list()):
                self.backend.delete(name)
            tail = ChainTail(genesis_block())
            store = StateStore()
            spill = SpillBuffer()
            snapshot_height = 0
            replayed = 0
        self.log = BlockLog(self.backend, self.policy, self._live_segment_id())
        return RecoveryResult(
            tail=tail,
            store=store,
            spill=spill,
            replayed=replayed,
            torn=torn,
            resync=resync,
            snapshot_height=snapshot_height,
            orphans_removed=len(orphans),
        )


# -- wire messages ------------------------------------------------------------


@dataclass(frozen=True)
class BlockAnnounce:
    """Orderer gossip: "the canonical chain reaches ``height``"."""

    height: int
    block_hash: str
    size_bytes: int = 72


@dataclass(frozen=True)
class BlockRequest:
    """Catch-up pull: "send me blocks from ``from_height`` up"."""

    from_height: int
    size_bytes: int = 40


@dataclass(frozen=True)
class BlockRange:
    """Catch-up reply: a contiguous run of canonical blocks."""

    blocks: tuple[Block, ...]

    @property
    def size_bytes(self) -> int:
        return 256 * max(1, len(self.blocks))


# -- nodes --------------------------------------------------------------------


class OrdererNode(Node):
    """The canonical-chain source: releases pre-built blocks over virtual
    time, announces the tip, and serves catch-up pulls. Never crashed by
    durable fault plans — it stands in for the ordering service quorum,
    whose availability is consensus's problem (covered by the consensus
    scenarios), not the durability tier's."""

    def __init__(
        self,
        node_id: str,
        sim: Simulation,
        network: Network,
        chain: Blockchain,
        block_interval: float = 0.2,
        announce_interval: float = 0.25,
        batch: int = 8,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.chain = chain
        self.block_interval = block_interval
        self.announce_interval = announce_interval
        self.batch = batch
        self.released = 0

    def start(self) -> None:
        for height in range(1, self.chain.height + 1):
            self.sim.schedule_at(
                round(height * self.block_interval, 6), self._release, height
            )
        self.set_timer(self.announce_interval, self._reannounce,
                       label="reannounce")

    def _release(self, height: int) -> None:
        self.released = max(self.released, height)
        self._announce()

    def _announce(self) -> None:
        if self.released:
            self.broadcast(BlockAnnounce(
                self.released, self.chain.block(self.released).block_hash
            ))

    def _reannounce(self) -> None:
        # Periodic re-announce heals lost/partitioned announcements: a
        # recovered node learns the tip within one interval.
        self._announce()
        self.set_timer(self.announce_interval, self._reannounce,
                       label="reannounce")

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, BlockRequest):
            start = message.from_height
            if start < 1 or start > self.released:
                return
            end = min(self.released, start + self.batch - 1)
            blocks = tuple(
                self.chain.block(h) for h in range(start, end + 1)
            )
            self.send(src, BlockRange(blocks))


class DurableNode(Node):
    """A replica whose only post-crash state is its storage backend.

    Commits follow the orderer's announcements via pull-based catch-up;
    each committed block is executed serially, mirrored into the spill
    buffer, logged to the WAL with its post-commit state root, and
    periodically spilled to the snapshot tier. ``crash()`` drops every
    in-memory structure *and* power-fails the backend; recovery rebuilds
    from the manifest + WAL tail (see :meth:`DurableLedger.recover`),
    modelling the replay cost as virtual time before the node re-joins.
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulation,
        network: Network,
        backend,
        registry_factory: Callable[[], ContractRegistry] = standard_registry,
        policy: FsyncPolicy | str = "group:2",
        snapshot_interval: int = 3,
        orderer_id: str = "orderer",
        probe_interval: float = 0.5,
        base_recovery_delay: float = 0.05,
        per_record_delay: float = 0.01,
        cluster: "DurableCluster | None" = None,
        paged: bool = False,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        compaction: "CompactionPolicy | str" = "full",
        overlay_budget_bytes: int = 0,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.registry_factory = registry_factory
        self.registry = registry_factory()
        self.ledger = DurableLedger(
            backend, policy=policy, snapshot_interval=snapshot_interval,
            paged=paged, cache_bytes=cache_bytes,
            compaction=compaction,
            overlay_budget_bytes=overlay_budget_bytes,
        )
        self.orderer_id = orderer_id
        self.probe_interval = probe_interval
        self.base_recovery_delay = base_recovery_delay
        self.per_record_delay = per_record_delay
        self.cluster = cluster
        self.tail: ChainTail = ChainTail(genesis_block())
        self.store: StateStore = StateStore()
        self._spill = SpillBuffer()
        self.highest_announced = 0
        self.recoveries = 0
        self.last_recovery: RecoveryResult | None = None

    def start(self) -> None:
        self._arm_probe()

    # -- commit path ---------------------------------------------------------

    def _commit_block(self, block: Block) -> None:
        self.tail.append(block)
        report = execute_block_serially(block, self.store, self.registry)
        for index, rwset in enumerate(report.rwsets):
            if rwset.ok:
                self._spill.apply_writes(
                    rwset.writes, Version(block.height, index)
                )
        root = state_root(self.store)
        self.ledger.commit_block(block, root)
        if self.ledger.maybe_snapshot(block, root, self._spill):
            self._spill = SpillBuffer()
            if isinstance(self.store, PagedStateStore):
                # The spill's delta run now covers every overlay entry
                # (the spill buffer mirrored the same committed writes,
                # versions included), and the spill may also have
                # compacted the disk run set, deleting files the paged
                # store still references. Collapse: drop the overlays
                # and serve from the new manifest's runs — this is what
                # keeps a long-running paged node's resident memory
                # bounded instead of growing until restart.
                manifest = self.ledger.snapshots.read_manifest() or {}
                self.store.collapse(manifest.get("runs", ()))
        if self.cluster is not None:
            self.cluster.record_commit(
                self.node_id, block.height, block.block_hash
            )

    # -- catch-up ------------------------------------------------------------

    def _arm_probe(self) -> None:
        self.set_timer(self.probe_interval, self._probe, label="catchup-probe")

    def _probe(self) -> None:
        if self.highest_announced > self.tail.height:
            self._request_catchup()
        self._arm_probe()

    def _request_catchup(self) -> None:
        self.send(self.orderer_id, BlockRequest(self.tail.height + 1))

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, BlockAnnounce):
            self.highest_announced = max(self.highest_announced, message.height)
            if message.height > self.tail.height:
                self._request_catchup()
        elif isinstance(message, BlockRange):
            for block in message.blocks:
                if block.height != self.tail.height + 1:
                    continue  # duplicate or gap; the probe re-pulls
                self._commit_block(block)
            if self.highest_announced > self.tail.height:
                self._request_catchup()

    # -- crash / recovery ----------------------------------------------------

    def crash(self) -> None:
        if self.crashed:
            return
        super().crash()
        self.ledger.power_fail()
        # The crash failure model: nothing in memory survives.
        self.tail = None  # type: ignore[assignment]
        self.store = None  # type: ignore[assignment]
        self._spill = None  # type: ignore[assignment]
        self.highest_announced = 0

    def recovery_delay(self) -> float:
        """Modelled restart time: base cost plus per-record WAL replay."""
        return (
            self.base_recovery_delay
            + self.per_record_delay * self.ledger.tail_record_count()
        )

    def on_recover(self) -> None:
        result = self.ledger.recover(self.registry_factory)
        self.tail = result.tail
        self.store = result.store
        self._spill = result.spill
        self.registry = self.registry_factory()
        self.recoveries += 1
        self.last_recovery = result
        if self.cluster is not None:
            self.cluster.record_recovery(self.node_id, result)
        # Timers re-arm only now — after replay finished (see the
        # FaultPlan.recover contract) — and catch-up starts immediately.
        self._arm_probe()
        self._request_catchup()


# -- the fuzzable topology ----------------------------------------------------


def durable_workload(txs: int, seed: int) -> list[Transaction]:
    """The contended KV workload, canonical across durable runs."""
    rng = random.Random(seed + 0xD15C)
    keys = [f"k{i}" for i in range(max(4, txs // 4))]
    out: list[Transaction] = []
    for i in range(txs):
        key = rng.choice(keys)
        if rng.random() < 0.5:
            out.append(Transaction.create(
                "kv_set", (key, i),
                declared_ops=(Operation(OpType.WRITE, key),),
            ))
        else:
            out.append(Transaction.create(
                "increment", (key, 1),
                declared_ops=(Operation(OpType.READ_WRITE, key),),
            ))
    return out


def build_canonical_chain(
    txs: int, seed: int, block_txs: int = 2
) -> Blockchain:
    """Pre-build the chain the orderer streams (deterministic in seed)."""
    chain = Blockchain()
    workload = durable_workload(txs, seed)
    for start in range(0, len(workload), max(1, block_txs)):
        batch = workload[start:start + max(1, block_txs)]
        block = chain.next_block(batch, timestamp=float(chain.height + 1))
        chain.append(block)
    return chain


class DurableCluster:
    """Orderer + N durable nodes over one deterministic simulation.

    The chaos target for the ``durable`` scenario: fault plans crash and
    recover the durable nodes (never the orderer), partition the network
    (groups must include ``"orderer"``), and inject message faults; the
    storage backends carry their own seeded fault profiles. The audit
    (:meth:`durable_audit`) is the acceptance criterion: every live node
    ends with the canonical tip hash and the serial oracle's state root.
    """

    def __init__(
        self,
        n: int = 3,
        txs: int = 12,
        seed: int = 0,
        block_txs: int = 2,
        policy: FsyncPolicy | str = "group:2",
        snapshot_interval: int = 3,
        fault_profile: dict[str, float] | None = None,
        block_interval: float = 0.2,
        latency: LatencyModel | None = None,
        registry_factory: Callable[[], ContractRegistry] = standard_registry,
        paged: bool = False,
        cache_bytes: int = DEFAULT_CACHE_BYTES,
        compaction: "CompactionPolicy | str" = "full",
        overlay_budget_bytes: int = 0,
    ) -> None:
        if n < 1:
            raise ConfigError(f"a durable cluster needs n >= 1, got {n}")
        self.seed = seed
        self.sim = Simulation(seed=seed)
        self.network = Network(self.sim, latency or LanLatency())
        self.registry_factory = registry_factory
        self.chain = build_canonical_chain(txs, seed, block_txs)
        self.orderer = OrdererNode(
            "orderer", self.sim, self.network, self.chain,
            block_interval=block_interval,
        )
        profile = dict(fault_profile or {})
        self.nodes: dict[str, DurableNode] = {}
        self.backends: dict[str, MemoryBackend] = {}
        for i in range(n):
            backend = MemoryBackend(
                FaultProfile(seed=seed * 1009 + i + 1, **profile)
            )
            node = DurableNode(
                f"d{i}", self.sim, self.network, backend,
                registry_factory=registry_factory,
                policy=policy, snapshot_interval=snapshot_interval,
                cluster=self, paged=paged, cache_bytes=cache_bytes,
                compaction=compaction,
                overlay_budget_bytes=overlay_budget_bytes,
            )
            self.backends[node.node_id] = backend
            self.nodes[node.node_id] = node
        self.monitors: list[Any] = []
        self._started = False

    # -- monitor plumbing ----------------------------------------------------

    def add_monitor(self, monitor) -> None:
        monitor.bind(self)
        self.monitors.append(monitor)

    def record_commit(self, node_id: str, height: int, block_hash: str) -> None:
        for monitor in self.monitors:
            monitor.on_decide(node_id, height, block_hash)

    def record_recovery(self, node_id: str, result: RecoveryResult) -> None:
        for monitor in self.monitors:
            hook = getattr(monitor, "on_recovery", None)
            if hook is not None:
                hook(
                    node_id,
                    height=result.tail.height,
                    tip_hash=result.tail.tip_hash(),
                    replayed=result.replayed,
                    torn=result.torn,
                    resync=result.resync,
                )

    def canonical_block_hash(self, height: int) -> str | None:
        """Canonical-chain hash at ``height`` (None beyond the tip).
        Duck-typed by :class:`~repro.consensus.monitors.DurableRecoveryMonitor`."""
        if not 0 <= height <= self.chain.height:
            return None
        return self.chain.block(height).block_hash

    # -- driving -------------------------------------------------------------

    def caught_up(self) -> bool:
        """Every *live* node recovered and at the canonical tip.

        A node the fault plan crashed and never recovered is down, not
        behind — mirroring ``correct_replicas()`` for consensus targets;
        otherwise the shrinker could reduce every violation to a bare
        unrecovered crash. At least one node must be live and caught up.
        """
        target = self.chain.height
        live = 0
        for node in self.nodes.values():
            if node.crashed:
                continue
            if node.recovering or node.tail.height < target:
                return False
            live += 1
        return live > 0

    def run(self, timeout: float = 30.0, min_time: float = 0.0) -> bool:
        """Drive until all live nodes caught up or ``timeout`` virtual
        seconds elapse.

        ``min_time`` keeps the loop alive at least that long in virtual
        time: a fault plan's crash/recover events are scheduled on the
        simulator, and :meth:`caught_up` ignores crashed nodes, so
        without the floor a run could declare success after the crash
        but *before* the recovery it is meant to exercise.
        """
        if not self._started:
            self._started = True
            self.orderer.start()
            for node in self.nodes.values():
                node.start()
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            if self.sim.now >= min_time and self.caught_up():
                return True
            processed = self.sim.run(until=min(deadline, self.sim.now + 0.25))
            if processed == 0 and self.sim.pending_events() == 0:
                break
        return self.caught_up()

    # -- the oracle audit ----------------------------------------------------

    def serial_oracle(self) -> StateStore:
        """The no-crash reference: the canonical chain executed serially
        from genesis on a fresh store."""
        store = StateStore()
        registry = self.registry_factory()
        for block in self.chain:
            if block.height == 0:
                continue
            execute_block_serially(block, store, registry)
        return store

    def durable_audit(self) -> list[str]:
        """End-of-run equivalence: ledger and state byte-identical to the
        no-crash serial oracle, for every live node."""
        violations: list[str] = []
        oracle_root = state_root(self.serial_oracle())
        target_height = self.chain.height
        target_tip = self.chain.tip_hash()
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            if node.crashed:
                continue  # down by plan, not diverged
            if node.recovering:
                violations.append(
                    f"durability: {node_id} never finished recovering"
                )
                continue
            if node.tail.height != target_height:
                violations.append(
                    f"durability: {node_id} at height {node.tail.height}, "
                    f"canonical tip is {target_height}"
                )
                continue
            if node.tail.tip_hash() != target_tip:
                violations.append(
                    f"durability: {node_id} tip hash diverges from the "
                    "canonical chain"
                )
            if state_root(node.store) != oracle_root:
                violations.append(
                    f"durability: {node_id} state root diverges from the "
                    "serial oracle"
                )
        return violations
