"""Storage backends: the narrow file API the durability tier writes to.

Two implementations share one surface (create/append/fsync/replace/
delete/list):

* :class:`OsBackend` — real files under a validated ``data_dir``; what
  the durability benchmark and the ``recover`` CLI use to measure real
  fsync costs.
* :class:`MemoryBackend` — a deterministic in-memory fake filesystem
  with an explicit **durability model**: every file tracks its visible
  content *and* the prefix that would survive a power failure. A
  seeded :class:`FaultProfile` injects the classic storage faults —
  torn (partial) writes, silently lost fsyncs, and bit flips in the
  torn tail — so recovery code is exercised against corrupt logs and
  truncated snapshots *inside the deterministic simulator*, with no
  host I/O. All randomness flows from one ``random.Random(seed)`` in
  operation order, so a same-seed chaos run replays bit-for-bit.

The model is deliberately adversarial about unsynced data: on a crash,
bytes written since the last successful fsync are lost entirely unless
the profile's ``partial_write`` fires, in which case a random *prefix*
of them survives (a torn write — exactly what the WAL's checksummed
records must detect). ``replace`` (write-temp-then-rename) is modelled
as atomic: the destination holds either the old durable content or the
new fsynced content, never a mixture — matching POSIX ``rename`` on a
journalling filesystem, which is the contract the manifest swap relies
on.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import StorageError

#: Live counters for benchmarks and tests (mirrors STORE_COUNTERS style).
STORAGE_COUNTERS = {
    "appends": 0,
    "fsyncs": 0,
    "fsyncs_lost": 0,
    "replaces": 0,
    "crashes": 0,
    "torn_tails": 0,
    "torn_detected": 0,
    "bit_flips": 0,
    "scripted_failures": 0,
}


def reset_storage_counters() -> None:
    for key in STORAGE_COUNTERS:
        STORAGE_COUNTERS[key] = 0


@dataclass(frozen=True)
class FaultProfile:
    """Seeded storage-fault rates for :class:`MemoryBackend`.

    Attributes:
        seed: RNG seed; every probability below draws from it in
            strict operation order (determinism).
        partial_write: On crash, probability that a file's unsynced
            tail survives *partially* (a random prefix — a torn write)
            instead of being lost whole.
        fsync_lost: Probability that an ``fsync`` reports success but
            leaves the data volatile (lost on the next crash) — the
            lying-disk model.
        bit_flip: Given a surviving torn tail, probability that one of
            its bits is flipped (latent corruption the checksums must
            catch).
    """

    seed: int = 0
    partial_write: float = 0.0
    fsync_lost: float = 0.0
    bit_flip: float = 0.0

    def __post_init__(self) -> None:
        for name in ("partial_write", "fsync_lost", "bit_flip"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise StorageError(f"{name} must be in [0, 1], got {value}")


#: The fault-free profile (still deterministic, still drops unsynced
#: data on crash — that part is the durability model, not a fault).
CLEAN_PROFILE = FaultProfile()


class _MemoryFile:
    __slots__ = ("content", "durable_len", "synced_len", "fallback")

    def __init__(self, content: bytes = b"") -> None:
        self.content = bytearray(content)
        #: Bytes guaranteed to survive a crash.
        self.durable_len = len(content)
        #: Bytes the caller *believes* are durable (fsync return value);
        #: differs from durable_len only when an fsync was lost.
        self.synced_len = len(content)
        #: Pre-replace durable content, kept while the replace's rename
        #: is not yet journalled (None once durable).
        self.fallback: bytes | None = None


class MemoryBackend:
    """Deterministic fake filesystem with seeded fault injection.

    ``fail_after_ops`` scripts a hard stop: after that many further
    mutating operations (appends, fsyncs, replaces, deletes) the
    backend raises :class:`StorageError` and simulates a crash — the
    lever the crash-during-compaction atomicity test uses to kill the
    process at an exact point inside a multi-file update.
    """

    def __init__(self, profile: FaultProfile | None = None) -> None:
        self.profile = profile or CLEAN_PROFILE
        self._rng = random.Random(self.profile.seed)
        self._files: dict[str, _MemoryFile] = {}
        self._fail_after: int | None = None

    # -- scripted failures ---------------------------------------------------

    def fail_after_ops(self, count: int | None) -> None:
        """Crash the backend after ``count`` more mutating operations
        (``None`` disarms)."""
        self._fail_after = count

    def _count_op(self) -> None:
        if self._fail_after is None:
            return
        if self._fail_after <= 0:
            self._fail_after = None
            STORAGE_COUNTERS["scripted_failures"] += 1
            self.simulate_crash()
            raise StorageError("scripted backend failure (fail_after_ops)")
        self._fail_after -= 1

    # -- file operations -----------------------------------------------------

    def append(self, name: str, data: bytes) -> None:
        """Append ``data`` to ``name``, creating it if missing. The new
        bytes are volatile until the next successful fsync."""
        self._count_op()
        self._files.setdefault(name, _MemoryFile()).content.extend(data)
        STORAGE_COUNTERS["appends"] += 1

    def fsync(self, name: str) -> None:
        """Make ``name``'s content durable — unless the lying-disk fault
        fires, in which case success is reported but nothing persists."""
        self._count_op()
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"fsync of unknown file {name!r}")
        STORAGE_COUNTERS["fsyncs"] += 1
        f.synced_len = len(f.content)
        if (
            self.profile.fsync_lost > 0.0
            and self._rng.random() < self.profile.fsync_lost
        ):
            STORAGE_COUNTERS["fsyncs_lost"] += 1
            return
        f.durable_len = len(f.content)
        f.fallback = None

    def replace(self, name: str, data: bytes) -> None:
        """Atomically install ``data`` as the full content of ``name``
        (the write-temp + fsync + rename idiom, collapsed).

        Durability of the *new* content still requires the rename to be
        journalled; the lying-disk fault may leave the old durable
        content in place instead — but never a torn mixture.
        """
        self._count_op()
        STORAGE_COUNTERS["replaces"] += 1
        old = self._files.get(name)
        new = _MemoryFile(bytes(data))
        if (
            self.profile.fsync_lost > 0.0
            and self._rng.random() < self.profile.fsync_lost
        ):
            STORAGE_COUNTERS["fsyncs_lost"] += 1
            # Rename not yet journalled: the new content is visible now,
            # but a crash atomically restores the old durable content
            # (or removes the file if it never existed durably).
            new.durable_len = 0
            new.fallback = (
                bytes(old.content[: old.durable_len]) if old is not None
                else b""
            )
        self._files[name] = new

    def read(self, name: str) -> bytes:
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file: {name!r}")
        return bytes(f.content)

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset`` — the paged read path's
        primitive (a short read past end-of-file returns what exists;
        callers detect truncation via per-block checksums)."""
        f = self._files.get(name)
        if f is None:
            raise StorageError(f"no such file: {name!r}")
        if offset < 0 or length < 0:
            raise StorageError(
                f"negative read_range ({offset}, {length}) on {name!r}"
            )
        return bytes(f.content[offset:offset + length])

    def exists(self, name: str) -> bool:
        return name in self._files

    def delete(self, name: str) -> None:
        self._count_op()
        self._files.pop(name, None)

    def list(self) -> list[str]:
        return sorted(self._files)

    def size(self, name: str) -> int:
        f = self._files.get(name)
        return len(f.content) if f is not None else 0

    # -- the crash model -----------------------------------------------------

    def simulate_crash(self) -> None:
        """Power failure: every file reverts to its durable prefix.

        The unsynced tail of each file is dropped — unless the
        ``partial_write`` fault fires, in which case a random prefix of
        the tail survives (torn write), possibly with one bit flipped
        (``bit_flip``). Deterministic: faults draw from the backend RNG
        in sorted-file order.
        """
        STORAGE_COUNTERS["crashes"] += 1
        for name in sorted(self._files):
            f = self._files[name]
            if f.fallback is not None:
                # Un-journalled replace: the old durable content returns
                # whole — rename is atomic, never torn.
                f.content = bytearray(f.fallback)
                f.durable_len = f.synced_len = len(f.content)
                f.fallback = None
                continue
            keep = f.durable_len
            torn = b""
            tail = bytes(f.content[keep:])
            if (
                tail
                and self.profile.partial_write > 0.0
                and self._rng.random() < self.profile.partial_write
            ):
                torn = tail[: self._rng.randint(1, len(tail))]
                STORAGE_COUNTERS["torn_tails"] += 1
                if (
                    self.profile.bit_flip > 0.0
                    and self._rng.random() < self.profile.bit_flip
                ):
                    flipped = bytearray(torn)
                    position = self._rng.randrange(len(flipped))
                    flipped[position] ^= 1 << self._rng.randrange(8)
                    torn = bytes(flipped)
                    STORAGE_COUNTERS["bit_flips"] += 1
            f.content = bytearray(f.content[:keep] + torn)
            f.durable_len = f.synced_len = len(f.content)
        # Empty durable files that never saw an fsync vanish entirely,
        # like files created but never persisted.
        for name in [n for n, f in self._files.items() if not f.content]:
            del self._files[name]


class OsBackend:
    """Real files under one directory; the measured-durability backend."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._handles: dict[str, object] = {}

    def _path(self, name: str) -> Path:
        return self.root / name

    def append(self, name: str, data: bytes) -> None:
        handle = self._handles.get(name)
        if handle is None:
            handle = open(self._path(name), "ab")
            self._handles[name] = handle
        handle.write(data)  # type: ignore[attr-defined]
        STORAGE_COUNTERS["appends"] += 1

    def fsync(self, name: str) -> None:
        handle = self._handles.get(name)
        if handle is None:
            handle = open(self._path(name), "ab")
            self._handles[name] = handle
        handle.flush()  # type: ignore[attr-defined]
        os.fsync(handle.fileno())  # type: ignore[attr-defined]
        STORAGE_COUNTERS["fsyncs"] += 1

    def replace(self, name: str, data: bytes) -> None:
        self._close_handle(name)
        temp = self._path(name + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, self._path(name))
        STORAGE_COUNTERS["replaces"] += 1

    def read(self, name: str) -> bytes:
        self._flush_handle(name)
        try:
            return self._path(name).read_bytes()
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def read_range(self, name: str, offset: int, length: int) -> bytes:
        """Seek-and-read one slice — what lets the paged store decode a
        single 4KB block without pulling the whole run into memory."""
        self._flush_handle(name)
        if offset < 0 or length < 0:
            raise StorageError(
                f"negative read_range ({offset}, {length}) on {name!r}"
            )
        try:
            with open(self._path(name), "rb") as handle:
                handle.seek(offset)
                return handle.read(length)
        except FileNotFoundError:
            raise StorageError(f"no such file: {name!r}") from None

    def exists(self, name: str) -> bool:
        self._flush_handle(name)
        return self._path(name).exists()

    def delete(self, name: str) -> None:
        self._close_handle(name)
        try:
            self._path(name).unlink()
        except FileNotFoundError:
            pass

    def list(self) -> list[str]:
        for name in list(self._handles):
            self._flush_handle(name)
        return sorted(
            p.name for p in self.root.iterdir() if p.is_file()
        )

    def size(self, name: str) -> int:
        self._flush_handle(name)
        try:
            return self._path(name).stat().st_size
        except FileNotFoundError:
            return 0

    def simulate_crash(self) -> None:
        """Process crash: drop open handles without flushing. File
        contents persist — real durability is the kernel's job here."""
        STORAGE_COUNTERS["crashes"] += 1
        self._handles.clear()

    def close(self) -> None:
        for name in list(self._handles):
            self._close_handle(name)

    def _flush_handle(self, name: str) -> None:
        handle = self._handles.get(name)
        if handle is not None:
            handle.flush()  # type: ignore[attr-defined]

    def _close_handle(self, name: str) -> None:
        handle = self._handles.pop(name, None)
        if handle is not None:
            handle.close()  # type: ignore[attr-defined]
