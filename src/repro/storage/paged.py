"""Larger-than-RAM state: the paged read path over blocked run files.

PR 7's recovery rebuilds the whole StateStore in memory
(:meth:`~repro.storage.snapshots.SnapshotStore.load_state`) — O(total
state) in time *and* memory, which caps durable state at RAM and makes
restart time grow with history instead of with the WAL tail. The
storage-layer literature the paper leans on (Dinh et al.'s data
processing view; the end-to-end comparisons) identifies exactly this
cliff: once state outgrows memory, reads — not consensus — dominate.

:class:`PagedStateStore` removes the cliff by serving the
:class:`~repro.ledger.store.StateStore` read contract directly from the
run files, LSM style:

* a point lookup walks the in-memory overlays first (head, then sealed
  overlays newest→oldest — post-recovery writes), then the runs
  **newest to oldest**;
* per run it consults the key filter (a definite *no* skips the run
  without touching a single block), binary-searches the block index for
  the only block that could hold the key, and decodes just that ~4KB
  block;
* decoded blocks live in a shared :class:`BlockCache` — a byte-budget
  LRU — so hot keys cost O(log block) with zero I/O while the resident
  set stays within the configured budget whatever the state size.

Writes land in the inherited COW overlay stack, which is never folded
into the (empty) base: the base-fold would drop tombstones that must
keep masking run entries below. Tombstones therefore resolve exactly as
in the on-disk tiers — newest layer wins, a deletion marker at any
layer hides everything older — and only bottom-tier compaction cancels
them for good.

Equivalence oracle: the fully-materialized ``load_state`` path is kept
unchanged, and ``benchmarks/bench_state_paging.py`` (E23) gates that
both paths return byte-identical values for every probed key.
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, bisect_right
from collections import OrderedDict
from typing import Any, Iterator

from repro.common.errors import StorageError
from repro.ledger.store import (
    MISSING,
    STORE_COUNTERS,
    StateSnapshot,
    StateStore,
    Version,
    VersionedValue,
    is_tombstone,
)
from repro.storage.codec import KeyFilter
from repro.storage.snapshots import (
    RUN_FORMAT,
    read_run_block,
    read_run_footer,
    read_run_v1,
)

#: Default block-cache budget: small enough that the E23 sweeps push
#: state well past it, big enough that hot working sets stay resident.
DEFAULT_CACHE_BYTES = 4 * 1024 * 1024


class BlockCache:
    """Shared byte-budget LRU over decoded run blocks.

    Keyed by ``(run file name, block index)``; the charge of an entry is
    the *encoded* block length (what one cache fill read from disk), so
    the budget tracks I/O-sized bytes, not Python object overhead.
    Counters land in :data:`~repro.ledger.store.STORE_COUNTERS`
    (``block_cache_hits`` / ``block_cache_misses`` /
    ``block_cache_evictions``) for the E23 gates.
    """

    def __init__(self, budget_bytes: int = DEFAULT_CACHE_BYTES) -> None:
        if budget_bytes < 0:
            raise StorageError(
                f"cache budget must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._entries: "OrderedDict[tuple[str, int], tuple[list, int]]" = (
            OrderedDict()
        )
        self._bytes = 0

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def get(self, run: "PagedRun", index: int) -> list[list[Any]]:
        """The block's decoded rows, filling + evicting as needed."""
        key = (run.name, index)
        hit = self._entries.get(key)
        if hit is not None:
            self._entries.move_to_end(key)
            STORE_COUNTERS["block_cache_hits"] += 1
            return hit[0]
        STORE_COUNTERS["block_cache_misses"] += 1
        rows, charge = run.read_block(index)
        self._entries[key] = (rows, charge)
        self._bytes += charge
        # Evict LRU-first down to budget; the just-filled block is never
        # evicted (an oversized single block would otherwise thrash).
        while self._bytes > self.budget_bytes and len(self._entries) > 1:
            _, (_, freed) = self._entries.popitem(last=False)
            self._bytes -= freed
            STORE_COUNTERS["block_cache_evictions"] += 1
        return rows

    def drop_run(self, name: str) -> None:
        """Purge every block of one run (its file is being deleted)."""
        for key in [k for k in self._entries if k[0] == name]:
            _, charge = self._entries.pop(key)
            self._bytes -= charge


class PagedRun:
    """One run file opened for point lookups: footer resident, rows not.

    Opening reads + verifies only the footer (block index + key filter)
    — O(index), never the row blocks. Legacy v1 runs (one JSON blob, no
    footer) are modelled as a single block with no filter, so old
    directories page too, just with coarser granularity.
    """

    __slots__ = ("backend", "entry", "name", "filter", "blocks", "firsts")

    def __init__(self, backend, entry: dict[str, Any]) -> None:
        self.backend = backend
        self.entry = entry
        self.name = entry["name"]
        version = int(entry.get("format", 1))
        if version == RUN_FORMAT:
            footer = read_run_footer(backend, entry)
            self.blocks = footer["blocks"]
            self.filter: KeyFilter | None = KeyFilter.from_dict(
                footer["filter"]
            )
            self.firsts = [spec["first"] for spec in self.blocks]
        elif version == 1:
            if not backend.exists(self.name):
                raise StorageError(f"missing snapshot run {self.name!r}")
            self.blocks = None  # legacy blob: one implicit block
            self.filter = None
            self.firsts = None
        else:
            raise StorageError(
                f"unknown run format {version} in snapshot run {self.name!r}"
            )

    def read_block(self, index: int) -> tuple[list[list[Any]], int]:
        """Decode one block; returns (rows, encoded-size charge)."""
        if self.blocks is None:
            rows = read_run_v1(self.backend, self.entry)
            return rows, self.backend.size(self.name)
        spec = self.blocks[index]
        return read_run_block(self.backend, self.name, spec), spec["len"]

    def block_count(self) -> int:
        return 1 if self.blocks is None else len(self.blocks)

    def lookup(self, key: str, cache: BlockCache) -> list[Any] | None:
        """The row for ``key`` in this run (tombstone rows included), or
        None — touching at most one block."""
        if self.filter is not None and not self.filter.might_contain(key):
            STORE_COUNTERS["filter_skips"] += 1
            return None
        if self.blocks is None:
            index = 0
        else:
            index = bisect_right(self.firsts, key) - 1
            if index < 0:
                if self.filter is not None:
                    STORE_COUNTERS["filter_false_positives"] += 1
                return None
        rows = cache.get(self, index)
        position = bisect_left(rows, key, key=lambda row: row[0])
        if position < len(rows) and rows[position][0] == key:
            return rows[position]
        if self.filter is not None:
            STORE_COUNTERS["filter_false_positives"] += 1
        return None

    def iter_rows(self) -> Iterator[list[Any]]:
        """Stream every row in key order, bypassing the cache — scans
        (audits, ``keys()``) must not evict the point-lookup working
        set."""
        for index in range(self.block_count()):
            rows, _charge = self.read_block(index)
            yield from rows

    def scan(
        self, start: str | None = None, end: str | None = None
    ) -> Iterator[list[Any]]:
        """Rows with ``start <= key <= end`` in key order, decoding only
        the blocks that intersect the range.

        Binary-searches the per-run block index for the first candidate
        block (the last one whose first key is <= ``start``) and stops
        as soon as a block's first key passes ``end`` — so the work is
        O(blocks-in-range + log blocks), never O(run). Bypasses the
        block cache like :meth:`iter_rows` (a wide scan must not evict
        the point-lookup working set); every decode is counted in
        ``STORE_COUNTERS["range_block_decodes"]``, which the E24 gate
        pins to range size while total blocks grow.
        """
        if self.blocks is None:
            # Legacy v1 blob: one implicit block, filtered in memory.
            rows, _charge = self.read_block(0)
            STORE_COUNTERS["range_block_decodes"] += 1
            for row in rows:
                if start is not None and row[0] < start:
                    continue
                if end is not None and row[0] > end:
                    break
                yield row
            return
        if not self.blocks:
            return
        index = 0
        if start is not None:
            index = max(0, bisect_right(self.firsts, start) - 1)
        while index < len(self.blocks):
            if end is not None and self.firsts[index] > end:
                break
            rows, _charge = self.read_block(index)
            STORE_COUNTERS["range_block_decodes"] += 1
            position = 0
            if start is not None:
                position = bisect_left(rows, start, key=lambda row: row[0])
            for row in rows[position:]:
                if end is not None and row[0] > end:
                    return
                yield row
            index += 1


def scan_layers(
    layers: list[dict[str, Any]],
    runs: list[PagedRun],
    start: str | None = None,
    end: str | None = None,
) -> Iterator[tuple[str, VersionedValue]]:
    """Lazy k-way merged range scan over overlays + runs, newest-wins.

    ``layers`` arrive newest first (head, then sealed newest→oldest);
    runs are manifest order (oldest first) and take lower priority the
    older they are. ``heapq.merge`` interleaves the per-layer sorted
    streams by (key, priority); the first surfacing of a key is its
    newest version, which decides — later duplicates and everything a
    tombstone masks are skipped. Peak memory is one decoded block per
    run plus one sorted key list per overlay slice, never the state.
    """

    def in_range(key: str) -> bool:
        if start is not None and key < start:
            return False
        return end is None or key <= end

    def overlay_stream(layer: dict[str, Any], priority: int):
        for key in sorted(k for k in layer if in_range(k)):
            yield (key, priority, layer[key])

    def run_stream(run: PagedRun, priority: int):
        for row in run.scan(start, end):
            yield (row[0], priority, row)

    streams: list[Any] = [
        overlay_stream(layer, priority)
        for priority, layer in enumerate(layers)
    ]
    base = len(layers)
    # Newest run = lowest priority number among runs.
    streams.extend(
        run_stream(run, base + offset)
        for offset, run in enumerate(reversed(runs))
    )
    last_key = None
    for key, _priority, payload in heapq.merge(*streams):
        if key == last_key:
            continue  # superseded by a newer layer
        last_key = key
        if isinstance(payload, list):
            if payload[1] is None:
                continue  # run-tier tombstone masks older runs
            yield key, VersionedValue(
                payload[1], Version(int(payload[2]), int(payload[3]))
            )
        else:
            if is_tombstone(payload):
                continue
            yield key, payload


class PagedSnapshot(StateSnapshot):
    """A point-in-time view over overlays *plus* the run set.

    Same isolation argument as the in-memory snapshot — captured layers
    are never mutated, run files named by a manifest are never modified
    in place — with one documented limit: the view is valid only until
    the next **disk compaction** deletes the captured run files
    (:meth:`PagedStateStore.rebase`). Endorsement snapshots in the
    simulator live for a block or two; disk compactions are many blocks
    apart.
    """

    __slots__ = ("_runs", "_cache")

    def __init__(
        self,
        overlays: tuple[dict[str, Any], ...],
        runs: list[PagedRun],
        cache: BlockCache,
    ) -> None:
        super().__init__({}, overlays)
        self._runs = runs
        self._cache = cache

    def get_versioned(self, key: str) -> VersionedValue:
        for overlay in reversed(self._overlays):
            entry = overlay.get(key)
            if entry is not None:
                return MISSING if is_tombstone(entry) else entry
        return _run_lookup(self._runs, key, self._cache)

    def keys(self) -> Iterator[str]:
        return (
            key
            for key, _entry in scan_layers(
                list(reversed(self._overlays)), self._runs
            )
        )

    def scan(
        self, start: str | None = None, end: str | None = None
    ) -> Iterator[tuple[str, VersionedValue]]:
        """Indexed range scan over the captured overlays + run set."""
        return scan_layers(
            list(reversed(self._overlays)), self._runs, start, end
        )


def _run_lookup(
    runs: list[PagedRun], key: str, cache: BlockCache
) -> VersionedValue:
    """Walk runs newest→oldest; first run holding the key decides."""
    STORE_COUNTERS["paged_lookups"] += 1
    for run in reversed(runs):
        row = run.lookup(key, cache)
        if row is not None:
            if row[1] is None:
                return MISSING  # tombstone: masks older runs
            return VersionedValue(row[1], Version(int(row[2]), int(row[3])))
    return MISSING


class PagedStateStore(StateStore):
    """The StateStore read contract served from blocked run files.

    Reads: overlays (head, sealed newest→oldest), then runs newest→
    oldest via :class:`PagedRun` lookups through the shared cache.
    Writes: the inherited overlay stack, with base-folding disabled —
    the base is permanently empty, and overlay tombstones must keep
    masking run entries (folding would cancel them against an empty
    base and resurrect deleted keys).

    ``len(store)`` is computed lazily: the first call pays one merged
    scan over the runs, after which the parent's incremental ±1
    bookkeeping keeps it exact. Construction itself reads only the run
    footers — O(index), not O(state) — which is what makes paged
    recovery O(WAL tail).
    """

    def __init__(
        self,
        backend,
        run_entries,
        cache: BlockCache | None = None,
    ) -> None:
        super().__init__()
        self.backend = backend
        self.cache = cache if cache is not None else BlockCache()
        #: Manifest order (oldest first); lookups iterate reversed.
        self._runs = [PagedRun(backend, entry) for entry in run_entries]
        self._counted = False

    # -- layering ------------------------------------------------------------

    def _maybe_compact(self) -> None:
        """Never fold overlays into the base (see the class docstring)."""
        return

    def rebase(self, run_entries) -> None:
        """Swap the run set after a disk compaction rewrote it.

        Safe mid-life because every write since recovery still lives in
        the overlays, which keep superseding whatever the new runs say;
        the cache entries of the dropped files are purged so stale
        blocks cannot serve reads for a recycled run name. Snapshots
        taken before the rebase become invalid (their files are gone) —
        the documented :class:`PagedSnapshot` lifetime.
        """
        for run in self._runs:
            self.cache.drop_run(run.name)
        self._runs = [PagedRun(self.backend, entry) for entry in run_entries]

    def collapse(self, run_entries) -> None:
        """Rebase onto ``run_entries`` *and* drop every overlay.

        Correct only when the new run set covers everything the
        overlays hold — i.e. immediately after a snapshot spill, whose
        delta run (written from the spill buffer that mirrors the same
        committed writes) carries every overlay entry, tombstones and
        exact MVCC versions included. This is the step that bounds a
        long-running paged node's resident memory: without it the
        overlays grow for the life of the process, spill or not.
        Snapshots taken before the collapse keep their captured layers
        (never mutated) but are bound by the :class:`PagedSnapshot`
        run-file lifetime, as with :meth:`rebase`.
        """
        self.rebase(run_entries)
        self._sealed = ()
        self._head = {}
        # len() must be recounted lazily: tombstoned keys just left the
        # overlays, so the incremental count no longer applies.
        self._counted = False
        self._len = 0

    def overlay_entries(self) -> int:
        """Resident overlay entries (head + sealed) — the quantity
        :meth:`collapse` bounds; asserted by the E24 memory gate."""
        return len(self._head) + sum(len(o) for o in self._sealed)

    def run_names(self) -> list[str]:
        return [run.name for run in self._runs]

    # -- reads ---------------------------------------------------------------

    def get_versioned(self, key: str) -> VersionedValue:
        entry = self._head.get(key)
        if entry is None:
            for overlay in reversed(self._sealed):
                entry = overlay.get(key)
                if entry is not None:
                    break
        if entry is not None:
            return MISSING if is_tombstone(entry) else entry
        return _run_lookup(self._runs, key, self.cache)

    def keys(self) -> list[str]:
        return [key for key, _entry in self.scan()]

    def scan(
        self, start: str | None = None, end: str | None = None
    ) -> Iterator[tuple[str, VersionedValue]]:
        """Live entries with ``start <= key <= end`` in key order —
        byte-identical to the materialized :meth:`StateStore.scan`
        oracle, but decoding only run blocks that intersect the range
        (binary search on each run's block index) instead of every
        block of every run."""
        layers = [self._head] + list(reversed(self._sealed))
        return scan_layers(layers, self._runs, start, end)

    def __len__(self) -> int:
        if not self._counted:
            # One merged scan; afterwards the parent's put/delete
            # bookkeeping keeps the count exact incrementally.
            self._len = len(self.keys())
            self._counted = True
        return self._len

    # -- snapshots -----------------------------------------------------------

    def snapshot(self) -> PagedSnapshot:
        """COW snapshot including the run tier (see PagedSnapshot's
        lifetime note)."""
        if self._head:
            self._seal_head()
        STORE_COUNTERS["snapshots_taken"] += 1
        return PagedSnapshot(self._sealed, list(self._runs), self.cache)
