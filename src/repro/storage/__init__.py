"""Durable storage: WAL, snapshot tier, and crash-restart recovery.

The durability substitution of DESIGN.md: the memory-only ledger and
state store gain an on-disk twin — an append-only checksummed block log
(:mod:`repro.storage.wal`) plus LSM-style state snapshot runs behind an
atomically swapped manifest (:mod:`repro.storage.snapshots`) — over a
narrow backend API (:mod:`repro.storage.backend`) with a deterministic
in-memory implementation whose seeded fault profiles model torn writes,
lying fsyncs, and bit flips. :mod:`repro.storage.durable` wires it into
the chaos engine as crash-recoverable simulated nodes.
"""

from repro.storage.backend import (
    CLEAN_PROFILE,
    STORAGE_COUNTERS,
    FaultProfile,
    MemoryBackend,
    OsBackend,
    reset_storage_counters,
)
from repro.storage.codec import (
    block_from_dict,
    block_to_dict,
    decode_block,
    encode_block,
    state_root,
)
from repro.storage.durable import (
    BlockAnnounce,
    BlockRange,
    BlockRequest,
    ChainTail,
    DurableCluster,
    DurableLedger,
    DurableNode,
    OrdererNode,
    RecoveryResult,
    build_canonical_chain,
    release_data_dir,
    resolve_data_dir,
)
from repro.storage.paged import (
    DEFAULT_CACHE_BYTES,
    BlockCache,
    PagedRun,
    PagedSnapshot,
    PagedStateStore,
    scan_layers,
)
from repro.storage.snapshots import (
    RUN_FORMAT,
    STORAGE_TIER_COMPACTIONS,
    CompactionPolicy,
    RunWriter,
    SnapshotStore,
    SpillBuffer,
    merge_overlays,
)
from repro.storage.wal import (
    BlockLog,
    FsyncPolicy,
    ReplayResult,
    encode_record,
    replay_records,
    segment_name,
)

__all__ = [
    "BlockAnnounce",
    "BlockCache",
    "BlockLog",
    "BlockRange",
    "BlockRequest",
    "CLEAN_PROFILE",
    "ChainTail",
    "CompactionPolicy",
    "DEFAULT_CACHE_BYTES",
    "DurableCluster",
    "DurableLedger",
    "DurableNode",
    "FaultProfile",
    "FsyncPolicy",
    "MemoryBackend",
    "OrdererNode",
    "OsBackend",
    "PagedRun",
    "PagedSnapshot",
    "PagedStateStore",
    "RUN_FORMAT",
    "RecoveryResult",
    "ReplayResult",
    "RunWriter",
    "STORAGE_COUNTERS",
    "STORAGE_TIER_COMPACTIONS",
    "SnapshotStore",
    "SpillBuffer",
    "block_from_dict",
    "block_to_dict",
    "build_canonical_chain",
    "decode_block",
    "encode_block",
    "encode_record",
    "merge_overlays",
    "release_data_dir",
    "replay_records",
    "reset_storage_counters",
    "resolve_data_dir",
    "scan_layers",
    "segment_name",
    "state_root",
]
