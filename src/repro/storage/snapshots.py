"""The on-disk state tier: snapshot runs, manifest, compaction.

This extends the size-tiered COW overlay design of
:class:`~repro.ledger.store.StateStore` (PR 4) one level down, LSM
style:

* A :class:`SpillBuffer` — a ``StateStore`` that never compacts —
  accumulates every committed write since the last spill. Spilling
  seals it and merges its sealed overlays **oldest to newest** (the
  :meth:`~repro.ledger.store.StateStore.sealed_overlays` public
  contract; later overlays supersede earlier ones) into one sorted,
  checksummed **run file**.
* The **manifest** is the tiny root of trust: the ordered list of live
  runs (with checksums), the snapshot height, the anchor block the WAL
  tail continues from, and the live WAL segments. It is replaced
  atomically (write-temp + fsync + rename), so a crash at *any* point
  leaves either the old or the new snapshot set fully readable — never
  a mixture. Run files and WAL segments are only deleted **after** the
  manifest that stops referencing them is durable.
* **Compaction** merges all live runs into one (newest entry per key
  wins, tombstones drop out once they reach the bottom) and swaps the
  manifest; a crash mid-compaction is invisible to recovery.

Reading state back is ``apply runs in manifest order``: rows carry the
exact MVCC :class:`~repro.ledger.store.Version` of each write, so a
recovered store is version-identical to the store that spilled it.
"""

from __future__ import annotations

import json
from typing import Any

from repro.common.errors import StorageError
from repro.ledger.store import (
    STORE_COUNTERS,
    StateStore,
    Version,
    is_tombstone,
)
from repro.storage.codec import checksum, entry_to_row, row_to_entry

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-manifest/v1"

RUN_PREFIX = "snap-"
RUN_SUFFIX = ".json"

#: Compact the run set once it grows past this many files.
DEFAULT_MAX_RUNS = 4

#: Disk-compaction counter (separate from the in-memory STORE_COUNTERS
#: "compactions", which counts base folds inside StateStore).
STORAGE_SNAPSHOT_COMPACTIONS = {"count": 0}


def run_name(run_id: int) -> str:
    return f"{RUN_PREFIX}{run_id:06d}{RUN_SUFFIX}"


class SpillBuffer(StateStore):
    """A StateStore that keeps every sealed overlay observable.

    The base-compaction step of the parent class folds overlays into
    the base dict and *drops tombstones that cancel base entries* —
    information the spill still needs. This subclass disables
    compaction, so between two spills the full delta (including
    deletes) remains reachable through :meth:`sealed_overlays`.
    Buffers are reset (replaced) after every spill, so they stay small.
    """

    def _maybe_compact(self) -> None:  # noqa: D102 - contract in class doc
        return

    def delete(self, key: str) -> None:
        """Always record the tombstone: this buffer holds only the delta
        since the last spill, so the deleted key usually lives in an
        older run — skipping "absent" keys would lose the delete."""
        self.mark_deleted(key)


def merge_overlays(overlays) -> dict[str, Any]:
    """Merge sealed overlays per the documented order contract.

    ``overlays`` is oldest → newest; for keys present in several
    overlays the **last** one wins. Entries are VersionedValue objects
    or tombstones (classified via
    :func:`~repro.ledger.store.is_tombstone`).
    """
    merged: dict[str, Any] = {}
    for overlay in overlays:
        merged.update(overlay)
    return merged


class SnapshotStore:
    """Manages run files + the manifest over one storage backend."""

    def __init__(self, backend, max_runs: int = DEFAULT_MAX_RUNS) -> None:
        if max_runs < 1:
            raise StorageError(f"max_runs must be >= 1, got {max_runs}")
        self.backend = backend
        self.max_runs = max_runs

    # -- manifest ------------------------------------------------------------

    def read_manifest(self) -> dict[str, Any] | None:
        """The current manifest, or None when absent/undecodable.

        An undecodable manifest (bit flip, lost rename journal) is
        treated as *no snapshot state* — the caller falls back to a
        full resync, which is always safe.
        """
        if not self.backend.exists(MANIFEST_NAME):
            return None
        try:
            data = json.loads(self.backend.read(MANIFEST_NAME).decode())
        except Exception:  # noqa: BLE001 - corrupt manifest = no manifest
            return None
        if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
            return None
        return data

    def write_manifest(self, manifest: dict[str, Any]) -> None:
        manifest = dict(manifest)
        manifest["format"] = MANIFEST_FORMAT
        payload = json.dumps(
            manifest, sort_keys=True, separators=(",", ":")
        ).encode()
        # One atomic replace: the backend models write-temp+fsync+rename.
        self.backend.replace(MANIFEST_NAME, payload)

    # -- runs ----------------------------------------------------------------

    def write_run(self, run_id: int, rows: list[list[Any]]) -> dict[str, Any]:
        """Write one run file; returns its manifest entry (name+checksum)."""
        payload = json.dumps(
            rows, sort_keys=True, separators=(",", ":")
        ).encode()
        name = run_name(run_id)
        self.backend.replace(name, payload)
        return {"name": name, "checksum": checksum(payload), "rows": len(rows)}

    def read_run(self, entry: dict[str, Any]) -> list[list[Any]]:
        """Read + verify one run; StorageError on any corruption."""
        name = entry["name"]
        if not self.backend.exists(name):
            raise StorageError(f"missing snapshot run {name!r}")
        payload = self.backend.read(name)
        if checksum(payload) != entry["checksum"]:
            raise StorageError(f"checksum mismatch in snapshot run {name!r}")
        try:
            rows = json.loads(payload.decode())
        except Exception as exc:  # noqa: BLE001
            raise StorageError(f"undecodable snapshot run {name!r}") from exc
        return rows

    # -- spill ---------------------------------------------------------------

    def rows_from_buffer(self, buffer: SpillBuffer) -> list[list[Any]]:
        """Seal ``buffer`` and flatten its delta into sorted run rows.

        This is the consumer of the ``sealed_overlays()`` order
        contract: later overlays supersede earlier ones, tombstones
        become ``value None`` rows (deletes must be replayed — a key
        deleted here may exist in an older run).
        """
        buffer.snapshot()  # seals the head overlay
        merged = merge_overlays(buffer.sealed_overlays())
        rows = []
        for key in sorted(merged):
            entry = merged[key]
            if is_tombstone(entry):
                rows.append(entry_to_row(key, None, Version(-1, -1)))
            else:
                rows.append(entry_to_row(key, entry.value, entry.version))
        STORE_COUNTERS["overlay_spills"] += 1
        STORE_COUNTERS["overlay_spill_entries"] += len(rows)
        return rows

    def spill(
        self,
        buffer: SpillBuffer,
        manifest: dict[str, Any],
        **manifest_updates: Any,
    ) -> dict[str, Any]:
        """Write ``buffer``'s delta as a new run and swap the manifest.

        Returns the new manifest. Old WAL segments named in
        ``manifest_updates`` handling are the caller's job; this method
        only guarantees run durability ordering (run file durable
        before the manifest references it) and triggers compaction when
        the run set grows past ``max_runs``.
        """
        rows = self.rows_from_buffer(buffer)
        run_id = int(manifest.get("next_run_id", 1))
        entry = self.write_run(run_id, rows)
        new_manifest = dict(manifest)
        new_manifest["runs"] = list(manifest.get("runs", ())) + [entry]
        new_manifest["next_run_id"] = run_id + 1
        new_manifest.update(manifest_updates)
        if len(new_manifest["runs"]) > self.max_runs:
            return self.compact(new_manifest)
        self.write_manifest(new_manifest)
        return new_manifest

    # -- compaction ----------------------------------------------------------

    def compact(self, manifest: dict[str, Any]) -> dict[str, Any]:
        """Merge every live run into one; atomic manifest swap.

        Ordering is the whole point:

        1. write the merged run (durable),
        2. swap the manifest (atomic replace),
        3. only then delete the superseded run files.

        A crash before (2) leaves the old manifest pointing at the old,
        untouched run set; a crash between (2) and (3) leaks files but
        loses nothing. The crash-during-compaction capsule asserts
        exactly this.
        """
        entries = list(manifest.get("runs", ()))
        merged: dict[str, tuple[Any, Version]] = {}
        for entry in entries:
            for row in self.read_run(entry):
                key, value, version = row_to_entry(row)
                merged[key] = (value, version)
        rows = []
        for key in sorted(merged):
            value, version = merged[key]
            if value is None:
                continue  # bottom tier: tombstones cancel out
            rows.append(entry_to_row(key, value, version))
        run_id = int(manifest.get("next_run_id", 1))
        new_entry = self.write_run(run_id, rows)
        new_manifest = dict(manifest)
        new_manifest["runs"] = [new_entry]
        new_manifest["next_run_id"] = run_id + 1
        self.write_manifest(new_manifest)
        STORAGE_SNAPSHOT_COMPACTIONS["count"] += 1
        for entry in entries:
            self.backend.delete(entry["name"])
        return new_manifest

    # -- load ----------------------------------------------------------------

    def load_state(self, manifest: dict[str, Any]) -> StateStore:
        """Rebuild a StateStore from the manifest's run set.

        Runs apply in manifest order (oldest first), so later runs'
        entries — including deletes — supersede earlier ones, mirroring
        the overlay order they were spilled from. StorageError on any
        missing or corrupt run (callers treat that as "snapshot tier
        unusable, full resync").
        """
        store = StateStore()
        for entry in manifest.get("runs", ()):
            for row in self.read_run(entry):
                key, value, version = row_to_entry(row)
                if value is None:
                    store.delete(key)
                else:
                    store.put(key, value, version)
        return store
