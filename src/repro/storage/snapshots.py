"""The on-disk state tier: snapshot runs, manifest, compaction.

This extends the size-tiered COW overlay design of
:class:`~repro.ledger.store.StateStore` (PR 4) one level down, LSM
style:

* A :class:`SpillBuffer` — a ``StateStore`` that never compacts —
  accumulates every committed write since the last spill. Spilling
  seals it and merges its sealed overlays **oldest to newest** (the
  :meth:`~repro.ledger.store.StateStore.sealed_overlays` public
  contract; later overlays supersede earlier ones) into one sorted,
  **blocked** run file.
* A **run file** (format v2) is a sequence of ~4KB blocks of sorted,
  canonical-JSON rows — each block individually checksummed — followed
  by a footer holding the block index (first key / offset / length /
  checksum per block) and a compact key-membership filter
  (:class:`~repro.storage.codec.KeyFilter`), and a fixed trailer
  locating the footer. The manifest entry records the footer checksum
  and a ``format`` version; the pre-blocking v1 format (one JSON blob,
  whole-file checksum) is still readable, so old directories recover
  unchanged. Blocked layout is what the paged read path
  (:mod:`repro.storage.paged`) needs: a point lookup consults the
  filter, binary-searches the index, and decodes exactly one block.
* The **manifest** is the tiny root of trust: the ordered list of live
  runs (with checksums), the snapshot height, the anchor block the WAL
  tail continues from, and the live WAL segments. It is replaced
  atomically (write-temp + fsync + rename), so a crash at *any* point
  leaves either the old or the new snapshot set fully readable — never
  a mixture. Run files and WAL segments are only deleted **after** the
  manifest that stops referencing them is durable. Run files are
  written block-by-block (append + final fsync before the manifest
  references them); a crash mid-write leaves an unreferenced partial
  file that recovery garbage-collects.
* **Compaction** merges all live runs into one (newest entry per key
  wins, tombstones drop out once they reach the bottom) and swaps the
  manifest; a crash mid-compaction is invisible to recovery. The merge
  is a k-way heap over each run's sorted row stream, so compaction
  memory is O(block), not O(state).

Reading state back is ``apply runs in manifest order``: rows carry the
exact MVCC :class:`~repro.ledger.store.Version` of each write, so a
recovered store is version-identical to the store that spilled it.
"""

from __future__ import annotations

import heapq
import json
import struct
from dataclasses import dataclass
from typing import Any, Iterator

from repro.common.errors import StorageError
from repro.ledger.store import (
    STORE_COUNTERS,
    MemoryBudget,
    StateStore,
    Version,
    is_tombstone,
)
from repro.storage.codec import (
    KeyFilter,
    checksum,
    decode_block_rows,
    encode_row,
    entry_to_row,
    row_to_entry,
)

MANIFEST_NAME = "MANIFEST.json"
MANIFEST_FORMAT = "repro-manifest/v1"

RUN_PREFIX = "snap-"
RUN_SUFFIX = ".json"

#: Current run-file format. v1 = one JSON blob, whole-file checksum;
#: v2 = sorted checksummed blocks + footer index + key filter.
RUN_FORMAT = 2

#: Target encoded size of one run block. Small enough that a point
#: lookup decodes ~a hundred rows; large enough that the per-block
#: index stays ~1% of the data.
BLOCK_TARGET_BYTES = 4096

#: Run-file trailer: footer length + magic, fixed size at end-of-file.
_TRAILER = struct.Struct(">Q4s")
_RUN_MAGIC = b"RUN2"

#: Compact the run set once it grows past this many files.
DEFAULT_MAX_RUNS = 4

#: Disk-compaction counter (separate from the in-memory STORE_COUNTERS
#: "compactions", which counts base folds inside StateStore).
STORAGE_SNAPSHOT_COMPACTIONS = {"count": 0}

#: Tiered-compaction telemetry: merges performed per size tier
#: ({tier index: count}). Reset alongside the other storage counters.
STORAGE_TIER_COMPACTIONS: dict[int, int] = {}


@dataclass(frozen=True)
class CompactionPolicy:
    """When and what the snapshot tier merges.

    ``full`` is the PR 7 behaviour: once the run count passes
    ``max_runs``, every live run merges into one. Write amplification
    per trigger is O(total state) — each trigger rewrites everything.

    ``tiered`` is classic size-tiered compaction: every spill run is
    born at tier 0; once an **age-contiguous** band of ``fanout``-or-
    more same-tier runs accumulates, the band merges into one run at
    the next tier up, at the band's position in the manifest. Each
    trigger rewrites O(one band), and any entry is rewritten at most
    once per tier promotion — O(log_fanout(spills)) times over its
    life, instead of once per trigger under ``full``. Tiers are
    recorded explicitly in the manifest entry (``"tier"``) rather than
    derived from file size: heavy overwrite workloads dedup a merged
    band back down to its inputs' size, and size-derived tiers would
    then re-merge the same data forever. (Entries written before this
    field fall back to a size-derived tier — log base ``fanout`` of
    bytes over ``tier_base``.) Bands must be age-contiguous because key
    shadowing between runs is positional (newest run wins; tombstone
    rows carry the sentinel version ``(-1, -1)``, so versions cannot
    order them) — merging a non-contiguous subset would let an old
    value resurface over a newer run left in the gap. Tombstones drop
    only when the band includes the oldest run (nothing below is left
    to mask).
    """

    kind: str = "full"
    max_runs: int = DEFAULT_MAX_RUNS
    fanout: int = 4
    tier_base: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.kind not in ("full", "tiered"):
            raise StorageError(
                f"unknown compaction policy kind {self.kind!r}"
            )
        if self.max_runs < 1:
            raise StorageError(f"max_runs must be >= 1, got {self.max_runs}")
        if self.fanout < 2:
            raise StorageError(f"fanout must be >= 2, got {self.fanout}")
        if self.tier_base < 1:
            raise StorageError(
                f"tier_base must be >= 1, got {self.tier_base}"
            )

    @classmethod
    def parse(
        cls, spec: "CompactionPolicy | str", max_runs: int = DEFAULT_MAX_RUNS
    ) -> "CompactionPolicy":
        """``"full"``, ``"tiered"``, or ``"tiered:<fanout>"``."""
        if isinstance(spec, CompactionPolicy):
            return spec
        text = spec.strip().lower()
        if text == "full":
            return cls(kind="full", max_runs=max_runs)
        if text == "tiered":
            return cls(kind="tiered", max_runs=max_runs)
        if text.startswith("tiered:"):
            try:
                fanout = int(text.split(":", 1)[1])
            except ValueError as exc:
                raise StorageError(
                    f"bad tiered fanout in policy {spec!r}"
                ) from exc
            return cls(kind="tiered", max_runs=max_runs, fanout=fanout)
        raise StorageError(f"unknown compaction policy {spec!r}")

    def tier_of(self, size_bytes: int) -> int:
        """Size-derived fallback tier (0 = smallest) for manifest
        entries written before the explicit ``"tier"`` field."""
        tier = 0
        size = max(1, int(size_bytes))
        while size > self.tier_base:
            size //= self.fanout
            tier += 1
        return tier

    def entry_tier(self, entry: dict[str, Any]) -> int:
        """A run's tier: the recorded field, or the size fallback."""
        tier = entry.get("tier")
        if tier is not None:
            return int(tier)
        return self.tier_of(int(entry.get("bytes", 0)))

    def select_band(
        self, entries: list[dict[str, Any]]
    ) -> tuple[int, int] | None:
        """The oldest age-contiguous same-tier band ready to merge, as
        ``(start, count)`` over manifest positions — or None."""
        if self.kind != "tiered":
            return None
        tiers = [self.entry_tier(e) for e in entries]
        start = 0
        while start < len(tiers):
            end = start
            while end < len(tiers) and tiers[end] == tiers[start]:
                end += 1
            if end - start >= self.fanout:
                return (start, end - start)
            start = end
        return None


def run_name(run_id: int) -> str:
    return f"{RUN_PREFIX}{run_id:06d}{RUN_SUFFIX}"


def is_run_name(name: str) -> bool:
    """True for any file the snapshot tier may have written as a run."""
    return name.startswith(RUN_PREFIX) and name.endswith(RUN_SUFFIX)


class SpillBuffer(StateStore):
    """A StateStore that keeps every sealed overlay observable.

    The base-compaction step of the parent class folds overlays into
    the base dict and *drops tombstones that cancel base entries* —
    information the spill still needs. This subclass disables
    compaction, so between two spills the full delta (including
    deletes) remains reachable through :meth:`sealed_overlays`.
    Buffers are reset (replaced) after every spill, so they stay small.

    Every write is also charged to a :class:`~repro.ledger.store.
    MemoryBudget`: since the buffer holds exactly the delta since the
    last spill, its deterministic byte estimate is the resident-overlay
    gauge the durable ledger consults to force a spill *between*
    interval snapshots (``overlay_budget_bytes``). Buffers are replaced
    after every spill, so the accounting resets with them.
    """

    def __init__(self) -> None:
        super().__init__()
        self.budget = MemoryBudget()

    @property
    def resident_bytes(self) -> int:
        """Deterministic estimate of the delta this buffer holds."""
        return self.budget.resident_bytes

    def _maybe_compact(self) -> None:  # noqa: D102 - contract in class doc
        return

    def put(self, key: str, value: Any, version: Version) -> None:
        super().put(key, value, version)
        self.budget.charge(key, value)

    def delete(self, key: str) -> None:
        """Always record the tombstone: this buffer holds only the delta
        since the last spill, so the deleted key usually lives in an
        older run — skipping "absent" keys would lose the delete."""
        self.mark_deleted(key)

    def mark_deleted(self, key: str) -> None:
        super().mark_deleted(key)
        self.budget.charge(key, None)


def merge_overlays(overlays) -> dict[str, Any]:
    """Merge sealed overlays per the documented order contract.

    ``overlays`` is oldest → newest; for keys present in several
    overlays the **last** one wins. Entries are VersionedValue objects
    or tombstones (classified via
    :func:`~repro.ledger.store.is_tombstone`).
    """
    merged: dict[str, Any] = {}
    for overlay in overlays:
        merged.update(overlay)
    return merged


# -- the blocked run format (v2) ----------------------------------------------


class RunWriter:
    """Stream sorted rows into one blocked run file, O(block) memory.

    Rows arrive in strictly increasing key order (enforced — an
    out-of-order row means a broken merge upstream). Each ~4KB of
    encoded rows is appended as one checksummed block; the footer
    (block index + key filter) and trailer land last, and a final fsync
    makes the whole file durable *before* :meth:`finish` returns its
    manifest entry — preserving the run-durable-before-referenced
    ordering the manifest swap relies on. A crash mid-write leaves an
    unreferenced partial file for recovery's garbage collector.
    """

    def __init__(
        self,
        backend,
        name: str,
        expected_keys: int,
        block_bytes: int = BLOCK_TARGET_BYTES,
        purpose: str = "spill",
    ) -> None:
        if backend.exists(name):
            # A leftover orphan from a writer that crashed before its
            # manifest swap (the id was never consumed); appending to
            # its garbage would corrupt the new run.
            backend.delete(name)
        if purpose not in ("spill", "compaction"):
            raise StorageError(f"unknown run purpose {purpose!r}")
        self.backend = backend
        self.name = name
        self.block_bytes = block_bytes
        #: Which write-amplification gauge the finished run charges:
        #: ``spill`` = first write of fresh data, ``compaction`` =
        #: rewrite of already-durable data.
        self.purpose = purpose
        self.filter = KeyFilter.sized_for(expected_keys)
        self.blocks: list[dict[str, Any]] = []
        self.rows_written = 0
        self._offset = 0
        self._encoded: list[str] = []
        self._encoded_bytes = 0
        self._first_key: str | None = None
        self._last_key: str | None = None

    def add(self, row: list[Any]) -> None:
        key = row[0]
        if self._last_key is not None and key <= self._last_key:
            raise StorageError(
                f"run rows out of order ({key!r} after {self._last_key!r})"
            )
        self._last_key = key
        if self._first_key is None:
            self._first_key = key
        self.filter.add(key)
        encoded = encode_row(row)
        self._encoded.append(encoded)
        self._encoded_bytes += len(encoded) + 1
        self.rows_written += 1
        if self._encoded_bytes >= self.block_bytes:
            self._flush_block()

    def _flush_block(self) -> None:
        if not self._encoded:
            return
        # Joining the pre-encoded rows reproduces json.dumps(rows) with
        # canonical separators byte-for-byte.
        payload = ("[" + ",".join(self._encoded) + "]").encode()
        self.backend.append(self.name, payload)
        self.blocks.append({
            "first": self._first_key,
            "off": self._offset,
            "len": len(payload),
            "sum": checksum(payload),
            "rows": len(self._encoded),
        })
        self._offset += len(payload)
        self._encoded = []
        self._encoded_bytes = 0
        self._first_key = None

    def finish(self) -> dict[str, Any]:
        """Seal the run; returns its manifest entry."""
        self._flush_block()
        footer = {
            "format": RUN_FORMAT,
            "blocks": self.blocks,
            "filter": self.filter.to_dict(),
            "rows": self.rows_written,
        }
        footer_bytes = json.dumps(
            footer, sort_keys=True, separators=(",", ":")
        ).encode()
        self.backend.append(
            self.name,
            footer_bytes + _TRAILER.pack(len(footer_bytes), _RUN_MAGIC),
        )
        self.backend.fsync(self.name)
        total_bytes = self._offset + len(footer_bytes) + _TRAILER.size
        STORE_COUNTERS[f"{self.purpose}_bytes_written"] += total_bytes
        return {
            "name": self.name,
            "checksum": checksum(footer_bytes),
            "rows": self.rows_written,
            "format": RUN_FORMAT,
            "bytes": total_bytes,
            # Fresh runs are born at tier 0; band merges overwrite this
            # with the promoted tier (see CompactionPolicy).
            "tier": 0,
        }


def read_run_footer(backend, entry: dict[str, Any]) -> dict[str, Any]:
    """Read + verify one v2 run's footer (index + filter) — O(footer),
    never touching the row blocks. StorageError on any corruption."""
    name = entry["name"]
    if not backend.exists(name):
        raise StorageError(f"missing snapshot run {name!r}")
    size = backend.size(name)
    if size < _TRAILER.size:
        raise StorageError(f"truncated snapshot run {name!r}")
    trailer = backend.read_range(name, size - _TRAILER.size, _TRAILER.size)
    try:
        footer_len, magic = _TRAILER.unpack(trailer)
    except struct.error as exc:
        raise StorageError(f"unreadable trailer in run {name!r}") from exc
    if magic != _RUN_MAGIC or footer_len > size - _TRAILER.size:
        raise StorageError(f"corrupt trailer in snapshot run {name!r}")
    footer_bytes = backend.read_range(
        name, size - _TRAILER.size - footer_len, footer_len
    )
    if checksum(footer_bytes) != entry["checksum"]:
        raise StorageError(f"footer checksum mismatch in run {name!r}")
    try:
        footer = json.loads(footer_bytes.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"undecodable footer in run {name!r}") from exc
    if not isinstance(footer, dict) or footer.get("format") != RUN_FORMAT:
        raise StorageError(f"unknown run format in {name!r}")
    return footer


def read_run_block(
    backend, name: str, spec: dict[str, Any]
) -> list[list[Any]]:
    """Read + verify exactly one block of a v2 run (one ``read_range``)."""
    payload = backend.read_range(name, spec["off"], spec["len"])
    if len(payload) != spec["len"] or checksum(payload) != spec["sum"]:
        raise StorageError(f"block checksum mismatch in run {name!r}")
    return decode_block_rows(payload, name)


def read_run_v1(backend, entry: dict[str, Any]) -> list[list[Any]]:
    """The pre-blocking run format: one JSON blob, whole-file checksum."""
    name = entry["name"]
    if not backend.exists(name):
        raise StorageError(f"missing snapshot run {name!r}")
    payload = backend.read(name)
    if checksum(payload) != entry["checksum"]:
        raise StorageError(f"checksum mismatch in snapshot run {name!r}")
    try:
        rows = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        # Narrow on decode failures only: a blanket except here used
        # to swallow KeyboardInterrupt/SystemExit mid-recovery.
        raise StorageError(f"undecodable snapshot run {name!r}") from exc
    return rows


class SnapshotStore:
    """Manages run files + the manifest over one storage backend."""

    def __init__(
        self,
        backend,
        max_runs: int = DEFAULT_MAX_RUNS,
        policy: CompactionPolicy | str | None = None,
    ) -> None:
        if max_runs < 1:
            raise StorageError(f"max_runs must be >= 1, got {max_runs}")
        self.backend = backend
        self.max_runs = max_runs
        self.policy = (
            CompactionPolicy(max_runs=max_runs)
            if policy is None
            else CompactionPolicy.parse(policy, max_runs=max_runs)
        )

    # -- manifest ------------------------------------------------------------

    def read_manifest(self) -> dict[str, Any] | None:
        """The current manifest, or None when absent/undecodable.

        An undecodable manifest (bit flip, lost rename journal) is
        treated as *no snapshot state* — the caller falls back to a
        full resync, which is always safe.
        """
        if not self.backend.exists(MANIFEST_NAME):
            return None
        try:
            data = json.loads(self.backend.read(MANIFEST_NAME).decode())
        except (ValueError, UnicodeDecodeError):
            # Corrupt manifest = no manifest; narrow so control-flow
            # exceptions (KeyboardInterrupt, SystemExit) propagate.
            return None
        if not isinstance(data, dict) or data.get("format") != MANIFEST_FORMAT:
            return None
        return data

    def write_manifest(self, manifest: dict[str, Any]) -> None:
        manifest = dict(manifest)
        manifest["format"] = MANIFEST_FORMAT
        payload = json.dumps(
            manifest, sort_keys=True, separators=(",", ":")
        ).encode()
        # One atomic replace: the backend models write-temp+fsync+rename.
        self.backend.replace(MANIFEST_NAME, payload)

    # -- runs ----------------------------------------------------------------

    def write_run(
        self, run_id: int, rows: list[list[Any]], purpose: str = "spill"
    ) -> dict[str, Any]:
        """Write one blocked run file; returns its manifest entry."""
        writer = RunWriter(self.backend, run_name(run_id), len(rows),
                           purpose=purpose)
        for row in rows:
            writer.add(row)
        return writer.finish()

    def read_run(self, entry: dict[str, Any]) -> list[list[Any]]:
        """Read + verify one whole run; StorageError on any corruption.

        Dispatches on the entry's ``format``: v2 verifies the footer
        then every block; v1 (entries without a format field, written
        before the blocked layout) verifies the whole-file checksum.
        """
        return list(self.iter_run_rows(entry))

    def iter_run_rows(self, entry: dict[str, Any]) -> Iterator[list[Any]]:
        """Stream one run's rows in key order, one block in memory at a
        time (v1 runs decode whole — the legacy blob has no blocks)."""
        version = int(entry.get("format", 1))
        name = entry["name"]
        if version == 1:
            yield from read_run_v1(self.backend, entry)
        elif version == RUN_FORMAT:
            footer = read_run_footer(self.backend, entry)
            for spec in footer["blocks"]:
                yield from read_run_block(self.backend, name, spec)
        else:
            raise StorageError(
                f"unknown run format {version} in snapshot run {name!r}"
            )

    def orphan_runs(self, manifest: dict[str, Any] | None) -> list[str]:
        """Run files on disk that ``manifest`` does not reference.

        A crash between a run write and the manifest swap that would
        have referenced it — or between compaction's swap and its
        delete loop — leaks files; recovery deletes what this returns.
        """
        referenced = {
            entry["name"] for entry in (manifest or {}).get("runs", ())
        }
        return [
            name for name in self.backend.list()
            if is_run_name(name) and name not in referenced
        ]

    # -- spill ---------------------------------------------------------------

    def rows_from_buffer(self, buffer: SpillBuffer) -> list[list[Any]]:
        """Seal ``buffer`` and flatten its delta into sorted run rows.

        This is the consumer of the ``sealed_overlays()`` order
        contract: later overlays supersede earlier ones, tombstones
        become ``value None`` rows (deletes must be replayed — a key
        deleted here may exist in an older run).
        """
        buffer.snapshot()  # seals the head overlay
        merged = merge_overlays(buffer.sealed_overlays())
        rows = []
        for key in sorted(merged):
            entry = merged[key]
            if is_tombstone(entry):
                rows.append(entry_to_row(key, None, Version(-1, -1)))
            else:
                rows.append(entry_to_row(key, entry.value, entry.version))
        STORE_COUNTERS["overlay_spills"] += 1
        STORE_COUNTERS["overlay_spill_entries"] += len(rows)
        return rows

    def spill(
        self,
        buffer: SpillBuffer,
        manifest: dict[str, Any],
        **manifest_updates: Any,
    ) -> dict[str, Any]:
        """Write ``buffer``'s delta as a new run and swap the manifest.

        Returns the new manifest. Old WAL segments named in
        ``manifest_updates`` handling are the caller's job; this method
        only guarantees run durability ordering (run file durable
        before the manifest references it) and triggers compaction when
        the run set grows past ``max_runs``.
        """
        rows = self.rows_from_buffer(buffer)
        run_id = int(manifest.get("next_run_id", 1))
        entry = self.write_run(run_id, rows)
        new_manifest = dict(manifest)
        new_manifest["runs"] = list(manifest.get("runs", ())) + [entry]
        new_manifest["next_run_id"] = run_id + 1
        new_manifest.update(manifest_updates)
        return self.apply_policy(new_manifest)

    # -- compaction ----------------------------------------------------------

    def apply_policy(self, manifest: dict[str, Any]) -> dict[str, Any]:
        """Commit ``manifest``, then run the compaction policy over it.

        ``full``: the PR 7 behaviour — past ``max_runs`` live runs,
        everything merges into one and the *merged* manifest is the only
        swap (the pre-merge set is never referenced). ``tiered``: the
        incoming manifest is committed first (the spill's own commit
        point), then each qualifying age-contiguous band merges in its
        own crash-safe write-run → swap-manifest → delete cycle,
        repeating until no band qualifies — so a crash between band
        merges leaves a fully readable intermediate run set.
        """
        if self.policy.kind == "full":
            if len(manifest.get("runs", ())) > self.policy.max_runs:
                return self.compact(manifest)
            self.write_manifest(manifest)
            return manifest
        self.write_manifest(manifest)
        while True:
            band = self.policy.select_band(list(manifest.get("runs", ())))
            if band is None:
                return manifest
            manifest = self.merge_band(manifest, band[0], band[1])

    def merge_band(
        self, manifest: dict[str, Any], start: int, count: int
    ) -> dict[str, Any]:
        """Merge ``count`` age-contiguous runs at manifest position
        ``start`` into one; atomic manifest swap.

        The merge is **streaming**: a k-way heap over each run's sorted
        row iterator, newest run winning ties, tombstones cancelling
        only when the band includes the oldest run (position 0 — with
        anything below, a tombstone must survive to keep masking it) —
        so peak memory is O(block) per input run plus the output
        writer's current block, never the merged state. The merged run
        replaces the band *at its position*, preserving the positional
        key-shadowing order of the untouched runs around it.

        Ordering is the whole point:

        1. write the merged run (block appends + fsync — durable),
        2. swap the manifest (atomic replace),
        3. only then delete the superseded run files.

        A crash before (2) leaves the old manifest pointing at the old,
        untouched run set (the partial merged file is unreferenced and
        garbage-collected on recovery); a crash between (2) and (3)
        leaks files but loses nothing. The crash-during-compaction
        sweeps assert exactly this for both policies.
        """
        entries = list(manifest.get("runs", ()))
        if start < 0 or count < 1 or start + count > len(entries):
            raise StorageError(
                f"bad compaction band ({start}, {count}) over "
                f"{len(entries)} runs"
            )
        band = entries[start:start + count]
        drop_tombstones = start == 0
        run_id = int(manifest.get("next_run_id", 1))
        writer = RunWriter(
            self.backend,
            run_name(run_id),
            expected_keys=sum(int(e.get("rows", 0)) for e in band),
            purpose="compaction",
        )
        # Heap keys are (row key, -band position): for a key present in
        # several runs the newest (highest position) pops first, and the
        # older duplicates are skipped as they surface.
        def stream(entry: dict[str, Any], position: int):
            for row in self.iter_run_rows(entry):
                yield (row[0], -position, row)

        streams = [
            stream(entry, position)
            for position, entry in enumerate(band)
        ]
        last_key = None
        for key, _position, row in heapq.merge(*streams):
            if key == last_key:
                continue  # superseded by a newer run
            last_key = key
            if row[1] is None and drop_tombstones:
                continue  # bottom tier: tombstones cancel out
            writer.add(row)
        new_entry = writer.finish()
        # Promote the merged run one tier above its inputs — explicit,
        # not size-derived, so dedup-heavy merges still move upward.
        tier = max(self.policy.entry_tier(e) for e in band) + 1
        new_entry["tier"] = tier
        new_manifest = dict(manifest)
        new_manifest["runs"] = (
            entries[:start] + [new_entry] + entries[start + count:]
        )
        new_manifest["next_run_id"] = run_id + 1
        self.write_manifest(new_manifest)
        STORAGE_SNAPSHOT_COMPACTIONS["count"] += 1
        STORAGE_TIER_COMPACTIONS[tier] = (
            STORAGE_TIER_COMPACTIONS.get(tier, 0) + 1
        )
        for entry in band:
            self.backend.delete(entry["name"])
        return new_manifest

    def compact(self, manifest: dict[str, Any]) -> dict[str, Any]:
        """Merge every live run into one; atomic manifest swap.

        The full-merge special case of :meth:`merge_band` — the band is
        the whole run set, so tombstones cancel for good.
        """
        entries = list(manifest.get("runs", ()))
        if not entries:
            self.write_manifest(manifest)
            return manifest
        return self.merge_band(manifest, 0, len(entries))

    # -- load ----------------------------------------------------------------

    def load_state(self, manifest: dict[str, Any]) -> StateStore:
        """Rebuild a fully-materialized StateStore from the run set.

        Runs apply in manifest order (oldest first), so later runs'
        entries — including deletes — supersede earlier ones, mirroring
        the overlay order they were spilled from. StorageError on any
        missing or corrupt run (callers treat that as "snapshot tier
        unusable, full resync"). O(total state) in time and memory —
        the equivalence oracle for the paged read path
        (:class:`~repro.storage.paged.PagedStateStore`), which serves
        the same contract directly from the run files.
        """
        store = StateStore()
        for entry in manifest.get("runs", ()):
            for row in self.iter_run_rows(entry):
                key, value, version = row_to_entry(row)
                if value is None:
                    store.delete(key)
                else:
                    store.put(key, value, version)
        return store
