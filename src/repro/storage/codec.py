"""Stable serialization for blocks and state (the durable wire format).

Blocks go into WAL records and manifests; state entries go into
snapshot runs. Both use canonical JSON (sorted keys, no whitespace
variance) so digests over the encoded bytes are deterministic across
runs and platforms. Decoding rebuilds the exact in-memory objects —
``Block.block_hash`` of a decoded block equals the original's, which is
what lets recovery re-verify the hash chain from raw bytes.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any

from repro.common.errors import StorageError
from repro.common.types import Operation, OpType, Transaction, TxType
from repro.crypto.digests import sha256_hex
from repro.crypto.merkle import merkle_root
from repro.ledger.block import Block, BlockHeader
from repro.ledger.store import StateStore, Version


def tx_to_dict(tx: Transaction) -> dict[str, Any]:
    out: dict[str, Any] = {
        "tx_id": tx.tx_id,
        "contract": tx.contract,
        "args": list(tx.args),
        "submitter": tx.submitter,
        "tx_type": tx.tx_type.value,
        "declared_ops": [[op.op_type.value, op.key] for op in tx.declared_ops],
        "involved": sorted(tx.involved),
        "submitted_at": tx.submitted_at,
    }
    return out


def tx_from_dict(data: dict[str, Any]) -> Transaction:
    return Transaction(
        tx_id=data["tx_id"],
        contract=data["contract"],
        args=tuple(data["args"]),
        submitter=data["submitter"],
        tx_type=TxType(data["tx_type"]),
        declared_ops=tuple(
            Operation(OpType(kind), key) for kind, key in data["declared_ops"]
        ),
        involved=frozenset(data["involved"]),
        submitted_at=float(data["submitted_at"]),
    )


def block_to_dict(block: Block) -> dict[str, Any]:
    header = block.header
    return {
        "height": header.height,
        "prev_hash": header.prev_hash,
        "tx_root": header.tx_root,
        "timestamp": header.timestamp,
        "proposer": header.proposer,
        "transactions": [tx_to_dict(tx) for tx in block.transactions],
    }


def block_from_dict(data: dict[str, Any]) -> Block:
    header = BlockHeader(
        height=int(data["height"]),
        prev_hash=data["prev_hash"],
        tx_root=data["tx_root"],
        timestamp=float(data["timestamp"]),
        proposer=data["proposer"],
    )
    block = Block(
        header=header,
        transactions=tuple(tx_from_dict(t) for t in data["transactions"]),
    )
    block.validate_payload()  # decoded payload must match its tx_root
    return block


def encode_block(block: Block, state_root: str) -> bytes:
    """One WAL-record payload: the block plus the post-commit state root."""
    return json.dumps(
        {"block": block_to_dict(block), "state_root": state_root},
        sort_keys=True, separators=(",", ":"),
    ).encode()


def decode_block(payload: bytes) -> tuple[Block, str]:
    """Inverse of :func:`encode_block`; raises StorageError on garbage."""
    try:
        data = json.loads(payload.decode())
        return block_from_dict(data["block"]), data["state_root"]
    except StorageError:
        raise
    except Exception as exc:  # noqa: BLE001 - any malformed payload
        raise StorageError(f"undecodable WAL payload: {exc}") from exc


# -- state digests ------------------------------------------------------------


def state_root(store: StateStore) -> str:
    """Merkle root over the store's live entries, versions included.

    Entries are serialized as ``key|value-repr|height|tx_index`` leaves
    in sorted-key order, so two stores with identical visible state *and*
    identical MVCC versions — the post-recovery equivalence the WAL
    records assert — produce the same root regardless of their internal
    layer layout.
    """
    leaves = [
        f"{key}|{entry.value!r}|{entry.version.height}|{entry.version.tx_index}"
        for key, entry in sorted(store.items())
    ]
    return merkle_root(leaves)


def entry_to_row(key: str, value: Any, version: Version) -> list[Any]:
    """One snapshot-run row; ``value`` None encodes a tombstone."""
    return [key, value, version.height, version.tx_index]


def row_to_entry(row: list[Any]) -> tuple[str, Any, Version]:
    key, value, height, tx_index = row
    return key, value, Version(int(height), int(tx_index))


def checksum(payload: bytes) -> str:
    """Content checksum for snapshot runs and the manifest."""
    return sha256_hex(payload)


# -- blocked run format (v2) ---------------------------------------------------


def encode_row(row: list[Any]) -> str:
    """One run row as canonical JSON (the unit block payloads join)."""
    return json.dumps(row, sort_keys=True, separators=(",", ":"))


def encode_block_rows(rows: list[list[Any]]) -> bytes:
    """One run block: the canonical-JSON list of its rows."""
    return json.dumps(rows, sort_keys=True, separators=(",", ":")).encode()


def decode_block_rows(payload: bytes, where: str) -> list[list[Any]]:
    """Inverse of :func:`encode_block_rows`; StorageError on garbage.

    Decode failures are :class:`ValueError` (bad JSON) or
    :class:`UnicodeDecodeError` (bad bytes) — caught narrowly so control
    exceptions like ``KeyboardInterrupt`` always propagate.
    """
    try:
        rows = json.loads(payload.decode())
    except (ValueError, UnicodeDecodeError) as exc:
        raise StorageError(f"undecodable run block in {where}") from exc
    if not isinstance(rows, list):
        raise StorageError(f"malformed run block in {where}")
    return rows


class KeyFilter:
    """Compact key-membership filter over one run's keys (bloom-style).

    ``k`` bit positions per key are derived from one SHA-256 digest by
    double hashing (``h1 + i*h2 mod m``) — fixed, deterministic seeds, so
    the same key set always yields the same bits and same-seed runs stay
    byte-identical across processes. A negative answer is exact ("the
    run cannot hold this key"), which is what lets the paged read path
    skip most runs without touching their blocks; positives are
    approximate (~3% false at the default 8 bits/key, k=4).
    """

    BITS_PER_KEY = 8
    HASHES = 4

    __slots__ = ("nbits", "nhashes", "bits")

    def __init__(self, nbits: int, nhashes: int, bits: bytearray) -> None:
        if nbits < 8 or nhashes < 1:
            raise StorageError(
                f"bad key-filter shape (nbits={nbits}, nhashes={nhashes})"
            )
        self.nbits = nbits
        self.nhashes = nhashes
        self.bits = bits

    @classmethod
    def sized_for(cls, expected_keys: int) -> "KeyFilter":
        """An empty filter sized for ``expected_keys`` (an upper bound is
        fine — oversizing only lowers the false-positive rate)."""
        nbits = max(64, expected_keys * cls.BITS_PER_KEY)
        nbits = (nbits + 7) // 8 * 8
        return cls(nbits, cls.HASHES, bytearray(nbits // 8))

    def _positions(self, key: str) -> list[int]:
        digest = hashlib.sha256(key.encode()).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") | 1
        return [(h1 + i * h2) % self.nbits for i in range(self.nhashes)]

    def add(self, key: str) -> None:
        for position in self._positions(key):
            self.bits[position >> 3] |= 1 << (position & 7)

    def might_contain(self, key: str) -> bool:
        return all(
            self.bits[position >> 3] & (1 << (position & 7))
            for position in self._positions(key)
        )

    def to_dict(self) -> dict[str, Any]:
        return {"m": self.nbits, "k": self.nhashes, "bits": bytes(self.bits).hex()}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "KeyFilter":
        try:
            bits = bytearray.fromhex(data["bits"])
            nbits, nhashes = int(data["m"]), int(data["k"])
        except (KeyError, ValueError, TypeError) as exc:
            raise StorageError("malformed key filter in run footer") from exc
        if len(bits) * 8 != nbits:
            raise StorageError("key-filter bit count does not match payload")
        return cls(nbits, nhashes, bits)
