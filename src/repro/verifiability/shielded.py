"""A shielded note pool — the Zcash-style corner of verifiability.

Paper section 2.3.2: "Verifiability is also needed in cryptocurrencies
with enhanced privacy, e.g., Zcash, where transaction data is
confidential and nodes need to verify the transaction without knowing
the sender, receiver or transaction amount."

Zcash achieves this with zk-SNARKs, which are out of reach for a pure
sigma-protocol toolkit; this module implements the closest classical
construction (the Monero lineage) with real cryptography over the
library's Schnorr group:

* funds live as fixed-denomination **notes**, each a one-time public key
  (so receivers are unlinkable across transactions);
* a spend carries an **LSAG linkable ring signature** (Liu–Wei–Wong
  2004): it proves the spender owns *one of* the ring's notes without
  revealing which (sender anonymity), and exposes a **key image** that
  is deterministic per note — spending the same note twice produces the
  same key image, which is how validators reject double spends while
  learning nothing else.

Fixed denominations stand in for Zcash's hidden amounts (documented
substitution; hidden-amount transfers live in
``repro.verifiability.quorum``).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.common.errors import CryptoError, ValidationError
from repro.crypto.group import SchnorrGroup, simulation_group


def hash_to_point(group: SchnorrGroup, *parts) -> int:
    """Map data to a group element with unknown relative discrete log."""
    return group.exp(group.g, group.hash_to_exponent("h2p", *parts))


@dataclass(frozen=True)
class LsagSignature:
    """A linkable spontaneous anonymous group signature.

    ``key_image`` is the linking tag: one per (note, owner) pair,
    unlinkable to the note without solving DDH, identical on every spend
    of the same note.
    """

    c0: int
    responses: tuple[int, ...]
    key_image: int

    @staticmethod
    def sign(
        group: SchnorrGroup,
        ring: tuple[int, ...],
        secret_index: int,
        secret_key: int,
        message: str,
    ) -> "LsagSignature":
        n = len(ring)
        if not 0 <= secret_index < n:
            raise CryptoError("secret index outside the ring")
        if group.exp(group.g, secret_key) != ring[secret_index]:
            raise CryptoError("secret key does not own the ring member")
        q = group.q
        base_point = hash_to_point(group, ring[secret_index])
        key_image = group.exp(base_point, secret_key)
        challenges: list[int | None] = [None] * n
        responses: list[int | None] = [None] * n
        alpha = secrets.randbelow(q)
        left = group.exp(group.g, alpha)
        right = group.exp(base_point, alpha)
        challenges[(secret_index + 1) % n] = group.hash_to_exponent(
            message, left, right
        )
        index = (secret_index + 1) % n
        while index != secret_index:
            s = secrets.randbelow(q)
            responses[index] = s
            c = challenges[index]
            assert c is not None
            member_base = hash_to_point(group, ring[index])
            left = group.mul(group.exp(group.g, s), group.exp(ring[index], c))
            right = group.mul(
                group.exp(member_base, s), group.exp(key_image, c)
            )
            challenges[(index + 1) % n] = group.hash_to_exponent(
                message, left, right
            )
            index = (index + 1) % n
        c_pi = challenges[secret_index]
        assert c_pi is not None
        responses[secret_index] = (alpha - c_pi * secret_key) % q
        c0 = challenges[0]
        assert c0 is not None
        return LsagSignature(
            c0=c0,
            responses=tuple(responses),  # type: ignore[arg-type]
            key_image=key_image,
        )

    def verify(
        self, group: SchnorrGroup, ring: tuple[int, ...], message: str
    ) -> bool:
        if len(self.responses) != len(ring) or not ring:
            return False
        if not group.is_element(self.key_image):
            return False
        c = self.c0
        for index, public in enumerate(ring):
            s = self.responses[index]
            member_base = hash_to_point(group, public)
            left = group.mul(group.exp(group.g, s), group.exp(public, c))
            right = group.mul(
                group.exp(member_base, s), group.exp(self.key_image, c)
            )
            c = group.hash_to_exponent(message, left, right)
        return c == self.c0


@dataclass(frozen=True)
class Note:
    """A fixed-denomination shielded note: just a one-time public key."""

    public_key: int


@dataclass(frozen=True)
class SpendTx:
    """A shielded transfer: a ring of candidate inputs, the LSAG proof,
    and the freshly created output note. Nothing identifies the sender
    (any ring member could be paying) or the receiver (the output key is
    one-time)."""

    ring: tuple[int, ...]
    signature: LsagSignature
    output: Note


class ShieldedPool:
    """The validator-side state: notes and seen key images."""

    def __init__(self, group: SchnorrGroup | None = None,
                 ring_size: int = 8) -> None:
        if ring_size < 2:
            raise ValidationError("a ring needs at least two members")
        self.group = group or simulation_group()
        self.ring_size = ring_size
        self.notes: list[Note] = []
        self.spent_key_images: set[int] = set()

    # -- client side -----------------------------------------------------------

    def keygen(self) -> tuple[int, int]:
        """A fresh one-time key pair for a new note."""
        secret = secrets.randbelow(self.group.q - 1) + 1
        return secret, self.group.exp(self.group.g, secret)

    def deposit(self, public_key: int) -> int:
        """Mint a note to ``public_key`` (the transparent -> shielded
        move); returns the note's pool index."""
        if not self.group.is_element(public_key):
            raise ValidationError("note key must be a group element")
        self.notes.append(Note(public_key=public_key))
        return len(self.notes) - 1

    def build_spend(
        self, note_index: int, secret_key: int, receiver_key: int,
        rng: secrets.SystemRandom | None = None,
    ) -> SpendTx:
        """Spend a note to ``receiver_key`` behind a decoy ring."""
        if not 0 <= note_index < len(self.notes):
            raise ValidationError("unknown note")
        rng = rng or secrets.SystemRandom()
        decoy_pool = [i for i in range(len(self.notes)) if i != note_index]
        k = min(self.ring_size - 1, len(decoy_pool))
        decoys = rng.sample(decoy_pool, k)
        members = sorted(decoys + [note_index])
        ring = tuple(self.notes[i].public_key for i in members)
        output = Note(public_key=receiver_key)
        message = f"spend|{ring!r}|{output.public_key}"
        signature = LsagSignature.sign(
            self.group, ring, members.index(note_index), secret_key, message
        )
        return SpendTx(ring=ring, signature=signature, output=output)

    # -- validator side -----------------------------------------------------------

    def verify_spend(self, spend: SpendTx) -> str | None:
        """None when valid, else the rejection reason. The validator
        learns only: some ring member paid, and the linking tag."""
        known = {note.public_key for note in self.notes}
        if not set(spend.ring) <= known:
            return "unknown_ring_member"
        if spend.signature.key_image in self.spent_key_images:
            return "double_spend"
        message = f"spend|{spend.ring!r}|{spend.output.public_key}"
        if not spend.signature.verify(self.group, spend.ring, message):
            return "invalid_ring_signature"
        return None

    def apply_spend(self, spend: SpendTx) -> int:
        """Validate and commit: burn the key image, mint the output."""
        reason = self.verify_spend(spend)
        if reason is not None:
            raise ValidationError(f"spend rejected: {reason}")
        self.spent_key_images.add(spend.signature.key_image)
        self.notes.append(spend.output)
        return len(self.notes) - 1
