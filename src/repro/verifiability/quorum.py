"""Quorum (JP Morgan) — public + private transactions with ZK verification.

Paper section 2.3.2: Quorum orders public and private transactions with
the same consensus protocol (Raft-based CFT or Istanbul BFT) and "uses
the zero-knowledge proof technique to ensure verifiability of private
transactions ... while ensuring that: sender is authorized to transfer
ownership of the assets, assets have not been spent previously
(double-spend), and transaction inputs equal its outputs (mass
conservation)."

The private-transfer construction here delivers exactly those three
checks without revealing amounts or balances:

* account balances live on-chain only as Pedersen commitments;
* a transfer ships a commitment to the amount, the sender's new balance
  commitment, range proofs that both are non-negative (no overdraft ⇒
  no double spending of balance), and a Schnorr signature proof for
  authorization;
* every validator checks conservation *homomorphically*:
  ``C_balance == C_new_balance * C_amount`` — inputs equal outputs.

:class:`PrivateWallet` is the client-side helper that tracks the real
values and blindings (which never go on chain).
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError, CryptoError, ValidationError
from repro.common.metrics import RunResult
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.crypto.commitments import PedersenCommitment, PedersenParams
from repro.crypto.group import default_group, simulation_group
from repro.execution.contracts import ContractRegistry, standard_registry
from repro.execution.rwsets import execute_with_capture
from repro.ledger.chain import Blockchain
from repro.ledger.store import StateStore, Version
from repro.sim.core import Simulation
from repro.sim.network import LanLatency
from repro.verifiability.zkp import RangeProof, SchnorrProof


@dataclass
class QuorumConfig:
    """Deployment knobs for a Quorum network."""

    orderers: int = 4
    protocol: str = "ibft"  # or "raft" — Quorum ships both
    range_bits: int = 16
    #: "simulation" (256-bit, fast) or "default" (1024-bit, strong).
    group: str = "simulation"
    seed: int = 0
    max_time: float = 600.0
    arrival_rate: float | None = 500.0
    #: Modelled per-validator CPU time for verifying one private tx.
    zkp_verify_cost: float = 0.010
    #: Modelled client-side proof generation time.
    zkp_prove_cost: float = 0.015


@dataclass(frozen=True)
class PrivateTransfer:
    """The on-chain payload of a private transaction. No plaintext."""

    tx_id: str
    sender_account: str
    receiver_account: str
    amount_commitment: int
    new_sender_commitment: int
    amount_range_proof: RangeProof
    balance_range_proof: RangeProof
    authorization: SchnorrProof


class PrivateWallet:
    """Client-side secret state: real balances, blindings, signing key."""

    def __init__(self, owner: str, params: PedersenParams) -> None:
        self.owner = owner
        self.params = params
        group = params.group
        self._signing_key = secrets.randbelow(group.q - 1) + 1
        self.public_key = group.exp(group.g, self._signing_key)
        self._balances: dict[str, int] = {}
        self._blindings: dict[str, int] = {}

    def open_account(self, account: str, balance: int) -> PedersenCommitment:
        """Create an account; returns the initial on-chain commitment."""
        blinding = self.params.random_blinding()
        self._balances[account] = balance
        self._blindings[account] = blinding
        return self.params.commit(balance, blinding)

    def balance(self, account: str) -> int:
        return self._balances[account]

    def receive(self, account: str, amount: int, blinding: int) -> None:
        """Record an incoming transfer (amount and blinding arrive via a
        private channel, as in Quorum's private payload distribution)."""
        self._balances[account] = self._balances.get(account, 0) + amount
        self._blindings[account] = (
            self._blindings.get(account, 0) + blinding
        ) % self.params.group.q

    def build_transfer(
        self, src: str, dst_account: str, amount: int, bits: int = 16
    ) -> tuple[PrivateTransfer, int, int]:
        """Create a private transfer plus the (amount, blinding) secret
        the receiver needs. Raises on overdraft — an honest wallet will
        not generate an unprovable statement."""
        balance = self._balances.get(src)
        if balance is None:
            raise ValidationError(f"unknown account: {src}")
        if not 0 <= amount <= balance:
            raise CryptoError(
                f"cannot prove transfer of {amount} from balance {balance}"
            )
        params = self.params
        group = params.group
        amount_blinding = params.random_blinding()
        new_balance = balance - amount
        new_blinding = (self._blindings[src] - amount_blinding) % group.q
        tx_id = secrets.token_hex(8)
        transfer = PrivateTransfer(
            tx_id=tx_id,
            sender_account=src,
            receiver_account=dst_account,
            amount_commitment=params.commit(amount, amount_blinding).point,
            new_sender_commitment=params.commit(new_balance, new_blinding).point,
            amount_range_proof=RangeProof.prove(
                params, amount, amount_blinding, bits, context=f"{tx_id}|amt"
            ),
            balance_range_proof=RangeProof.prove(
                params, new_balance, new_blinding, bits, context=f"{tx_id}|bal"
            ),
            authorization=SchnorrProof.prove(
                group, self._signing_key, context=f"{tx_id}|auth"
            ),
        )
        self._balances[src] = new_balance
        self._blindings[src] = new_blinding
        return transfer, amount, amount_blinding


class QuorumSystem:
    """A Quorum network ordering public and private transactions."""

    def __init__(
        self,
        config: QuorumConfig | None = None,
        registry: ContractRegistry | None = None,
    ) -> None:
        self.config = config or QuorumConfig()
        self.registry = registry or standard_registry()
        group = (
            simulation_group()
            if self.config.group == "simulation"
            else default_group()
        )
        self.params = PedersenParams.create(group)
        self.sim = Simulation(seed=self.config.seed)
        protocol_cls, byzantine = PROTOCOLS[self.config.protocol]
        self.cluster = ConsensusCluster(
            protocol_cls,
            n=self.config.orderers,
            byzantine=byzantine,
            sim=self.sim,
            latency=LanLatency(),
            decide_listener=self._on_decide,
        )
        self._reference = self.cluster.config.replica_ids[0]
        self.ledger = Blockchain()
        self.store = StateStore()  # public state
        #: On-chain private state: account -> balance commitment point.
        self.commitments: dict[str, int] = {}
        self.account_keys: dict[str, int] = {}  # account -> owner pubkey
        self._height = 0
        self._public_txs: dict[str, Transaction] = {}
        self._private_txs: dict[str, PrivateTransfer] = {}
        self._submit_times: dict[str, float] = {}
        self._commit_times: dict[str, float] = {}
        self._aborted: dict[str, str] = {}
        self._pending: list[tuple[str, str]] = []  # (kind, tx id)
        self._ran = False

    # -- accounts ---------------------------------------------------------------

    def register_account(
        self, account: str, commitment: PedersenCommitment, owner_key: int
    ) -> None:
        """Genesis registration of a private account (trusted setup)."""
        if account in self.commitments:
            raise ValidationError(f"account exists: {account}")
        self.commitments[account] = commitment.point
        self.account_keys[account] = owner_key

    # -- submission -----------------------------------------------------------------

    def submit_public(self, tx: Transaction) -> None:
        self._public_txs[tx.tx_id] = tx
        self._pending.append(("public", tx.tx_id))

    def submit_private(self, transfer: PrivateTransfer) -> None:
        self._private_txs[transfer.tx_id] = transfer
        self._pending.append(("private", transfer.tx_id))

    # -- run ----------------------------------------------------------------------------

    def run(self) -> RunResult:
        if self._ran:
            raise ConfigError("a QuorumSystem runs exactly once")
        self._ran = True
        interval = (
            1.0 / self.config.arrival_rate if self.config.arrival_rate else 0.0
        )
        at = 0.0
        for kind, tx_id in self._pending:
            self._submit_times[tx_id] = at
            delay = self.config.zkp_prove_cost if kind == "private" else 0.0

            def arrive(k=kind, t=tx_id) -> None:
                self.cluster.submit((k, t), via=self._reference)

            self.sim.schedule_at(at + delay, arrive)
            at += interval
        total = len(self._pending)
        horizon = self.config.max_time
        while self.sim.now < horizon:
            if len(self._commit_times) + len(self._aborted) >= total:
                break
            before = self.sim.now
            processed = self.sim.run(until=min(horizon, self.sim.now + 0.5))
            if processed == 0 and self.sim.now == before:
                break
        return self._build_result()

    # -- ordered records --------------------------------------------------------------------

    def _on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if node_id != self._reference:
            return
        kind, tx_id = value
        if kind == "public":
            self._apply_public(self._public_txs[tx_id])
        else:
            # Every validator verifies the proofs; charge the modelled
            # CPU cost once on the critical path.
            self.sim.metrics.incr("quorum.zkp_verifications", self.config.orderers)
            self.sim.schedule(
                self.config.zkp_verify_cost,
                lambda: self._apply_private(self._private_txs[tx_id]),
            )

    def _apply_public(self, tx: Transaction) -> None:
        rwset = execute_with_capture(self.registry, tx, self.store)
        self._height += 1
        if not rwset.ok:
            self._aborted[tx.tx_id] = "business_rule"
            return
        self.store.apply_writes(rwset.writes, Version(self._height, 0))
        block = self.ledger.next_block([tx], timestamp=self.sim.now)
        self.ledger.append(block)
        self._commit_times[tx.tx_id] = self.sim.now
        self.sim.metrics.incr("quorum.public_commits")

    def verify_private(self, transfer: PrivateTransfer) -> bool:
        """The validator-side check: authorization, no double-spend
        (non-negative new balance), conservation. Zero knowledge of
        amounts is required or gained."""
        group = self.params.group
        sender_point = self.commitments.get(transfer.sender_account)
        owner_key = self.account_keys.get(transfer.sender_account)
        if sender_point is None or owner_key is None:
            return False
        if transfer.receiver_account not in self.commitments:
            return False
        # 1. Authorization: the prover holds the account owner's key.
        if not transfer.authorization.verify(
            group, owner_key, context=f"{transfer.tx_id}|auth"
        ):
            return False
        # 2. Conservation: old balance = new balance + amount.
        recombined = group.mul(
            transfer.new_sender_commitment, transfer.amount_commitment
        )
        if recombined != sender_point:
            return False
        # 3. Range proofs: amount >= 0 and new balance >= 0.
        amount_c = PedersenCommitment(
            params=self.params, point=transfer.amount_commitment
        )
        balance_c = PedersenCommitment(
            params=self.params, point=transfer.new_sender_commitment
        )
        if not transfer.amount_range_proof.verify(
            self.params, amount_c, context=f"{transfer.tx_id}|amt"
        ):
            return False
        if not transfer.balance_range_proof.verify(
            self.params, balance_c, context=f"{transfer.tx_id}|bal"
        ):
            return False
        return True

    def _apply_private(self, transfer: PrivateTransfer) -> None:
        self._height += 1
        if not self.verify_private(transfer):
            self._aborted[transfer.tx_id] = "zkp_rejected"
            self.sim.metrics.incr("quorum.zkp_rejections")
            return
        group = self.params.group
        self.commitments[transfer.sender_account] = (
            transfer.new_sender_commitment
        )
        self.commitments[transfer.receiver_account] = group.mul(
            self.commitments[transfer.receiver_account],
            transfer.amount_commitment,
        )
        marker = Transaction.create(
            "private_transfer",
            (transfer.tx_id,),
            submitter=transfer.sender_account,
        )
        block = self.ledger.next_block([marker], timestamp=self.sim.now)
        self.ledger.append(block)
        self._commit_times[transfer.tx_id] = self.sim.now
        self.sim.metrics.incr("quorum.private_commits")

    def _build_result(self) -> RunResult:
        result = RunResult(system="quorum")
        last = 0.0
        for tx_id, commit_time in self._commit_times.items():
            result.committed += 1
            result.latencies.record(commit_time - self._submit_times[tx_id])
            last = max(last, commit_time)
        result.aborted = len(self._aborted) + (
            len(self._pending) - len(self._commit_times) - len(self._aborted)
        )
        result.duration = last if last > 0 else self.sim.now
        result.messages = int(self.sim.metrics.get("net.messages"))
        result.extra = {
            key: val
            for key, val in self.sim.metrics.snapshot().items()
            if key.startswith("quorum.")
        }
        return result
