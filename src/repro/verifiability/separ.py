"""Separ (Amiri et al., WWW 2021) — token-based verifiability.

Paper section 2.3.2: "a centralized trusted authority models global
regulations using anonymous tokens and distributes them to participants.
For example, if a global constraint declares that the total work hours
of a worker per week must not exceed 40 hours to follow FLSA, the
authority assigns 40 tokens to each worker where a worker can consume
its tokens whenever the worker contributes to a task."

Pieces modelled:

* :class:`TokenAuthority` — the trusted issuer. Tokens carry a random
  serial and a Schnorr signature from the authority; nothing in a token
  identifies its worker (anonymity), and the authority enforces the
  per-worker issuance cap (the regulation).
* :class:`SeparSystem` — the multi-platform ledger. Platforms order
  work claims through consensus; validation checks every attached token
  (authority signature, serial unspent *anywhere*) so the 40-hour cap
  holds globally even when the worker splits hours across platforms that
  never share identities.
* Spent-token receipts double as portable proofs of hours worked, which
  is how a worker demonstrates crossing California Prop 22's 25-hour
  healthcare threshold without platforms sharing records.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError, ValidationError
from repro.common.metrics import RunResult
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.crypto.group import SchnorrGroup, simulation_group
from repro.sim.core import Simulation
from repro.sim.network import LanLatency
from repro.verifiability.zkp import SchnorrProof
from repro.workloads.crowdworking import FLSA_WEEKLY_CAP, WorkClaim


@dataclass(frozen=True)
class Token:
    """One anonymous hour-token: a serial plus the authority's signature.

    The signature is a Schnorr proof bound to the serial, so any
    platform holding the authority's public key verifies it offline.
    """

    serial: str
    week: int
    constraint: str
    signature: SchnorrProof

    def verify(self, group: SchnorrGroup, authority_key: int) -> bool:
        context = f"token|{self.serial}|{self.week}|{self.constraint}"
        return self.signature.verify(group, authority_key, context=context)


class TokenAuthority:
    """The trusted, centralized token issuer.

    The authority is the trust trade-off the Discussion paragraph
    names: it must be trusted by all platforms, but in exchange no
    zero-knowledge machinery is needed at validation time.
    """

    def __init__(self, weekly_cap: int = FLSA_WEEKLY_CAP,
                 group: SchnorrGroup | None = None) -> None:
        self.group = group or simulation_group()
        self.weekly_cap = weekly_cap
        self._signing_key = secrets.randbelow(self.group.q - 1) + 1
        self.public_key = self.group.exp(self.group.g, self._signing_key)
        self._issued: dict[tuple[str, int], int] = {}

    def issue(self, worker: str, week: int, count: int,
              constraint: str = "flsa-40h") -> list[Token]:
        """Issue up to the remaining weekly allowance for ``worker``."""
        if count < 0:
            raise ValidationError("cannot issue a negative token count")
        already = self._issued.get((worker, week), 0)
        if already + count > self.weekly_cap:
            raise ValidationError(
                f"{worker} would exceed the weekly cap "
                f"({already} + {count} > {self.weekly_cap})"
            )
        self._issued[(worker, week)] = already + count
        tokens = []
        for _ in range(count):
            serial = secrets.token_hex(16)
            context = f"token|{serial}|{week}|{constraint}"
            tokens.append(Token(
                serial=serial,
                week=week,
                constraint=constraint,
                signature=SchnorrProof.prove(
                    self.group, self._signing_key, context=context
                ),
            ))
        return tokens

    def issued_to(self, worker: str, week: int) -> int:
        return self._issued.get((worker, week), 0)


@dataclass(frozen=True)
class TokenizedClaim:
    """A work claim plus the hour-tokens paying for it.

    ``pseudonym`` is the worker's per-platform identity; the real worker
    id never reaches the ledger (anonymity audit in the tests).
    """

    claim_id: str
    pseudonym: str
    platform: str
    task: str
    hours: int
    week: int
    tokens: tuple[Token, ...]


@dataclass
class SeparConfig:
    """Deployment knobs for a Separ network."""

    protocol: str = "pbft"
    seed: int = 0
    max_time: float = 600.0
    arrival_rate: float | None = 1000.0
    #: Modelled per-token validation cost (one signature check).
    token_verify_cost: float = 0.0005


class SeparSystem:
    """The shared multi-platform ledger enforcing token spends."""

    def __init__(
        self,
        platforms: list[str],
        authority: TokenAuthority,
        config: SeparConfig | None = None,
    ) -> None:
        if len(platforms) < 2:
            raise ConfigError("Separ targets multi-platform settings")
        self.platforms = list(platforms)
        self.authority = authority
        self.config = config or SeparConfig()
        self.sim = Simulation(seed=self.config.seed)
        protocol_cls, byzantine = PROTOCOLS[self.config.protocol]
        n = max(len(platforms), 4 if byzantine else 3)
        self.cluster = ConsensusCluster(
            protocol_cls,
            n=n,
            byzantine=byzantine,
            sim=self.sim,
            latency=LanLatency(),
            id_prefix="plat",
            decide_listener=self._on_decide,
        )
        self._reference = self.cluster.config.replica_ids[0]
        self.spent_serials: set[str] = set()
        self.committed_claims: list[TokenizedClaim] = []
        self._claims: dict[str, TokenizedClaim] = {}
        self._submit_times: dict[str, float] = {}
        self._commit_times: dict[str, float] = {}
        self._rejected: dict[str, str] = {}
        self._pending: list[str] = []
        self._ran = False

    # -- client helpers -----------------------------------------------------------

    @staticmethod
    def tokenize(
        claim: WorkClaim, tokens: list[Token], pseudonym: str | None = None
    ) -> TokenizedClaim:
        """Attach tokens to a claim under a per-platform pseudonym."""
        if len(tokens) != claim.hours:
            raise ValidationError(
                f"claim of {claim.hours}h needs {claim.hours} tokens, "
                f"got {len(tokens)}"
            )
        return TokenizedClaim(
            claim_id=secrets.token_hex(8),
            pseudonym=pseudonym or f"{claim.platform}:{secrets.token_hex(4)}",
            platform=claim.platform,
            task=claim.task,
            hours=claim.hours,
            week=claim.week,
            tokens=tuple(tokens),
        )

    def submit(self, claim: TokenizedClaim) -> None:
        self._claims[claim.claim_id] = claim
        self._pending.append(claim.claim_id)

    # -- validation -----------------------------------------------------------------

    def validate_claim(self, claim: TokenizedClaim) -> str | None:
        """None when valid, else the rejection reason."""
        if len(claim.tokens) != claim.hours:
            return "token_count_mismatch"
        serials = {token.serial for token in claim.tokens}
        if len(serials) != len(claim.tokens):
            return "duplicate_token_in_claim"
        if serials & self.spent_serials:
            return "double_spend"
        for token in claim.tokens:
            if token.week != claim.week:
                return "wrong_week_token"
            if not token.verify(self.authority.group, self.authority.public_key):
                return "forged_token"
        return None

    # -- run --------------------------------------------------------------------------

    def run(self) -> RunResult:
        if self._ran:
            raise ConfigError("a SeparSystem runs exactly once")
        self._ran = True
        interval = (
            1.0 / self.config.arrival_rate if self.config.arrival_rate else 0.0
        )
        at = 0.0
        for claim_id in self._pending:
            self._submit_times[claim_id] = at

            def arrive(c=claim_id) -> None:
                self.cluster.submit(c, via=self._reference)

            self.sim.schedule_at(at, arrive)
            at += interval
        total = len(self._pending)
        horizon = self.config.max_time
        while self.sim.now < horizon:
            if len(self._commit_times) + len(self._rejected) >= total:
                break
            before = self.sim.now
            processed = self.sim.run(until=min(horizon, self.sim.now + 0.5))
            if processed == 0 and self.sim.now == before:
                break
        return self._build_result()

    def _on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if node_id != self._reference:
            return
        claim = self._claims[value]
        cost = self.config.token_verify_cost * max(1, len(claim.tokens))
        self.sim.schedule(cost, lambda: self._apply(claim))

    def _apply(self, claim: TokenizedClaim) -> None:
        reason = self.validate_claim(claim)
        self.sim.metrics.incr(
            "separ.token_verifications", len(claim.tokens)
        )
        if reason is not None:
            self._rejected[claim.claim_id] = reason
            self.sim.metrics.incr(f"separ.reject.{reason}")
            return
        self.spent_serials.update(token.serial for token in claim.tokens)
        self.committed_claims.append(claim)
        self._commit_times[claim.claim_id] = self.sim.now
        self.sim.metrics.incr("separ.commits")

    # -- audits & queries -----------------------------------------------------------------

    def hours_proven_by(self, serials: list[str]) -> int:
        """Count of presented receipts that are genuinely on the ledger —
        how a worker proves total hours (e.g. Prop 22's 25h threshold)
        without any platform revealing its records."""
        return len(set(serials) & self.spent_serials)

    def ledger_identifiers(self) -> set[str]:
        """Every identity-like string on the shared ledger (pseudonyms
        only — the anonymity audit asserts no real worker ids appear)."""
        return {claim.pseudonym for claim in self.committed_claims}

    def rejection_reasons(self) -> dict[str, str]:
        return dict(self._rejected)

    def _build_result(self) -> RunResult:
        result = RunResult(system="separ")
        last = 0.0
        for claim_id, commit_time in self._commit_times.items():
            result.committed += 1
            result.latencies.record(commit_time - self._submit_times[claim_id])
            last = max(last, commit_time)
        result.aborted = len(self._rejected) + (
            len(self._pending) - len(self._commit_times) - len(self._rejected)
        )
        result.duration = last if last > 0 else self.sim.now
        result.messages = int(self.sim.metrics.get("net.messages"))
        result.extra = {
            key: val
            for key, val in self.sim.metrics.snapshot().items()
            if key.startswith("separ.")
        }
        return result
