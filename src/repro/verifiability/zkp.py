"""Zero-knowledge proofs (paper section 2.3.2).

"A zero-knowledge proof is a method by which one party (the prover) can
prove to another party (the verifier) that they know a value x, without
conveying any information apart from the fact that they know the
value x."

Real sigma-protocol cryptography over the library's Schnorr group, made
non-interactive with the Fiat–Shamir transform:

* :class:`SchnorrProof` — knowledge of a discrete log (authorization).
* :class:`OpeningProof` — knowledge of a Pedersen commitment's opening.
* :class:`BitProof` — a commitment hides 0 or 1 (a CDS OR-proof).
* :class:`RangeProof` — a committed value lies in ``[0, 2^bits)``, by
  bit decomposition; with the homomorphic conservation check this gives
  Quorum's three private-transfer guarantees (authorized, no
  double-spend/overdraft, mass conservation) without revealing amounts.

The group is 1024-bit (see ``repro.crypto.group``), far below modern
deployment sizes but honestly asymmetric — proof generation and
verification costs scale exactly as the real constructions do.
"""

from __future__ import annotations

import secrets
from dataclasses import dataclass

from repro.common.errors import CryptoError
from repro.crypto.commitments import PedersenCommitment, PedersenParams
from repro.crypto.group import SchnorrGroup


@dataclass(frozen=True)
class SchnorrProof:
    """NIZK proof of knowledge of ``x`` with ``y = g^x``."""

    commitment: int  # t = g^r
    response: int  # s = r + c*x

    @staticmethod
    def prove(group: SchnorrGroup, x: int, context: str = "") -> "SchnorrProof":
        r = secrets.randbelow(group.q)
        t = group.exp(group.g, r)
        y = group.exp(group.g, x)
        c = group.hash_to_exponent(t, y, context)
        return SchnorrProof(commitment=t, response=(r + c * x) % group.q)

    def verify(self, group: SchnorrGroup, y: int, context: str = "") -> bool:
        if not group.is_element(y) or not group.is_element(self.commitment):
            return False
        c = group.hash_to_exponent(self.commitment, y, context)
        lhs = group.exp(group.g, self.response)
        rhs = group.mul(self.commitment, group.exp(y, c))
        return lhs == rhs


@dataclass(frozen=True)
class OpeningProof:
    """NIZK proof of knowledge of ``(v, r)`` with ``C = g^v h^r``."""

    commitment: int  # t = g^a h^b
    response_v: int  # s_v = a + c*v
    response_r: int  # s_r = b + c*r

    @staticmethod
    def prove(
        params: PedersenParams, value: int, blinding: int, context: str = ""
    ) -> "OpeningProof":
        group = params.group
        a = secrets.randbelow(group.q)
        b = secrets.randbelow(group.q)
        t = group.mul(group.exp(params.g, a), group.exp(params.h, b))
        point = params.commit(value, blinding).point
        c = group.hash_to_exponent(t, point, context)
        return OpeningProof(
            commitment=t,
            response_v=(a + c * value) % group.q,
            response_r=(b + c * blinding) % group.q,
        )

    def verify(
        self, params: PedersenParams, commitment: PedersenCommitment,
        context: str = "",
    ) -> bool:
        group = params.group
        c = group.hash_to_exponent(self.commitment, commitment.point, context)
        lhs = group.mul(
            group.exp(params.g, self.response_v),
            group.exp(params.h, self.response_r),
        )
        rhs = group.mul(self.commitment, group.exp(commitment.point, c))
        return lhs == rhs


@dataclass(frozen=True)
class EqualityProof:
    """NIZK proof that two commitments hide the *same* value.

    For ``C1 = g^v h^r1`` and ``C2 = g^v h^r2``, the quotient
    ``C1 / C2 = h^(r1 - r2)`` is a commitment to zero; proving knowledge
    of its discrete log w.r.t. ``h`` proves the values match. Used when
    the same confidential quantity must appear consistently in two
    places (e.g. an amount recorded by sender and receiver).
    """

    commitment: int  # t = h^a
    response: int  # s = a + c * (r1 - r2)

    @staticmethod
    def prove(
        params: PedersenParams, blinding1: int, blinding2: int,
        c1: PedersenCommitment, c2: PedersenCommitment, context: str = "",
    ) -> "EqualityProof":
        group = params.group
        delta = (blinding1 - blinding2) % group.q
        a = secrets.randbelow(group.q)
        t = group.exp(params.h, a)
        c = group.hash_to_exponent(t, c1.point, c2.point, context)
        return EqualityProof(
            commitment=t, response=(a + c * delta) % group.q
        )

    def verify(
        self, params: PedersenParams, c1: PedersenCommitment,
        c2: PedersenCommitment, context: str = "",
    ) -> bool:
        group = params.group
        c = group.hash_to_exponent(self.commitment, c1.point, c2.point, context)
        quotient = group.mul(c1.point, group.inv(c2.point))
        lhs = group.exp(params.h, self.response)
        rhs = group.mul(self.commitment, group.exp(quotient, c))
        return lhs == rhs


@dataclass(frozen=True)
class BitProof:
    """CDS OR-proof: the commitment hides 0 **or** 1, hiding which.

    For ``C = g^b h^r`` the prover shows knowledge of ``r`` such that
    either ``C = h^r`` (b = 0) or ``C / g = h^r`` (b = 1), simulating
    the branch it cannot prove.
    """

    t0: int
    t1: int
    c0: int
    c1: int
    s0: int
    s1: int

    @staticmethod
    def prove(
        params: PedersenParams, bit: int, blinding: int, context: str = ""
    ) -> "BitProof":
        if bit not in (0, 1):
            raise CryptoError(f"BitProof requires bit in {{0, 1}}, got {bit}")
        group = params.group
        point = params.commit(bit, blinding).point
        # Statement bases: y0 = C (proves C = h^r), y1 = C/g (proves C/g = h^r).
        y0 = point
        y1 = group.mul(point, group.inv(params.g))
        if bit == 0:
            # Real proof on branch 0, simulate branch 1.
            c1 = secrets.randbelow(group.q)
            s1 = secrets.randbelow(group.q)
            t1 = group.mul(group.exp(params.h, s1), group.inv(group.exp(y1, c1)))
            r0 = secrets.randbelow(group.q)
            t0 = group.exp(params.h, r0)
            c = group.hash_to_exponent(t0, t1, point, context)
            c0 = (c - c1) % group.q
            s0 = (r0 + c0 * blinding) % group.q
        else:
            c0 = secrets.randbelow(group.q)
            s0 = secrets.randbelow(group.q)
            t0 = group.mul(group.exp(params.h, s0), group.inv(group.exp(y0, c0)))
            r1 = secrets.randbelow(group.q)
            t1 = group.exp(params.h, r1)
            c = group.hash_to_exponent(t0, t1, point, context)
            c1 = (c - c0) % group.q
            s1 = (r1 + c1 * blinding) % group.q
        return BitProof(t0=t0, t1=t1, c0=c0, c1=c1, s0=s0, s1=s1)

    def verify(
        self, params: PedersenParams, commitment: PedersenCommitment,
        context: str = "",
    ) -> bool:
        group = params.group
        point = commitment.point
        c = group.hash_to_exponent(self.t0, self.t1, point, context)
        if (self.c0 + self.c1) % group.q != c:
            return False
        y0 = point
        y1 = group.mul(point, group.inv(params.g))
        ok0 = group.exp(params.h, self.s0) == group.mul(
            self.t0, group.exp(y0, self.c0)
        )
        ok1 = group.exp(params.h, self.s1) == group.mul(
            self.t1, group.exp(y1, self.c1)
        )
        return ok0 and ok1


@dataclass(frozen=True)
class RangeProof:
    """Bit-decomposition range proof: committed value in ``[0, 2^bits)``.

    The prover commits to each bit, proves every bit commitment hides
    0/1, and the verifier homomorphically checks that the weighted
    product of bit commitments equals the value commitment. Proof size
    and cost are linear in ``bits`` — the "considerable overhead" the
    Discussion paragraph attributes to ZKP-based verifiability is real
    and measured by benchmark E5.
    """

    bit_commitments: tuple[int, ...]
    bit_proofs: tuple[BitProof, ...]

    @staticmethod
    def prove(
        params: PedersenParams, value: int, blinding: int, bits: int = 16,
        context: str = "",
    ) -> "RangeProof":
        if not 0 <= value < (1 << bits):
            raise CryptoError(f"value {value} out of range [0, 2^{bits})")
        group = params.group
        bit_values = [(value >> i) & 1 for i in range(bits)]
        # Blindings must satisfy sum(r_i * 2^i) = blinding (mod q) so the
        # homomorphic product matches the value commitment exactly.
        blindings = [secrets.randbelow(group.q) for _ in range(bits - 1)]
        acc = sum(r << (i + 1) for i, r in enumerate(blindings)) % group.q
        r0 = (blinding - acc) % group.q
        blindings = [r0] + blindings
        commitments = []
        proofs = []
        for i in range(bits):
            point = params.commit(bit_values[i], blindings[i]).point
            commitments.append(point)
            proofs.append(
                BitProof.prove(
                    params, bit_values[i], blindings[i], context=f"{context}|bit{i}"
                )
            )
        return RangeProof(
            bit_commitments=tuple(commitments), bit_proofs=tuple(proofs)
        )

    @property
    def bits(self) -> int:
        return len(self.bit_commitments)

    def verify(
        self, params: PedersenParams, commitment: PedersenCommitment,
        context: str = "",
    ) -> bool:
        group = params.group
        if len(self.bit_commitments) != len(self.bit_proofs):
            return False
        # Each bit commitment hides 0 or 1.
        for i, (point, proof) in enumerate(
            zip(self.bit_commitments, self.bit_proofs)
        ):
            wrapped = PedersenCommitment(params=params, point=point)
            if not proof.verify(params, wrapped, context=f"{context}|bit{i}"):
                return False
        # The weighted product reassembles the value commitment.
        product = 1
        for i, point in enumerate(self.bit_commitments):
            product = group.mul(product, group.exp(point, 1 << i))
        return product == commitment.point
