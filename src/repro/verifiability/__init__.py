"""Verifiability techniques (paper section 2.3.2).

Two technique families behind the same goal — verifying other
enterprises' transactions against global constraints without learning
their data:

* **Cryptographic** (truly decentralized, higher overhead):
  the zero-knowledge toolkit in :mod:`repro.verifiability.zkp` and the
  Quorum private-transaction system in
  :mod:`repro.verifiability.quorum`.
* **Token-based** (needs a trusted authority, better performance):
  Separ in :mod:`repro.verifiability.separ`.
"""

from repro.verifiability.quorum import (
    PrivateTransfer,
    PrivateWallet,
    QuorumConfig,
    QuorumSystem,
)
from repro.verifiability.shielded import (
    LsagSignature,
    Note,
    ShieldedPool,
    SpendTx,
)
from repro.verifiability.separ import (
    SeparConfig,
    SeparSystem,
    Token,
    TokenAuthority,
    TokenizedClaim,
)
from repro.verifiability.zkp import (
    BitProof,
    OpeningProof,
    RangeProof,
    SchnorrProof,
)

__all__ = [
    "BitProof",
    "LsagSignature",
    "Note",
    "OpeningProof",
    "PrivateTransfer",
    "PrivateWallet",
    "QuorumConfig",
    "QuorumSystem",
    "RangeProof",
    "SchnorrProof",
    "SeparConfig",
    "SeparSystem",
    "ShieldedPool",
    "SpendTx",
    "Token",
    "TokenAuthority",
    "TokenizedClaim",
]
