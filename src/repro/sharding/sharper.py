"""SharPer (Amiri et al., SIGMOD 2021) — decentralized flattened sharding.

Paper section 2.3.4: "SharPer processes cross-shard transactions in a
decentralized manner among the involved clusters (without requiring a
reference committee) using decentralized flattened consensus protocols"
and "is able to process cross-shard transactions with non-overlapping
clusters in parallel".

Modelled protocol:

* **intra-shard** — the owning cluster orders the transaction through
  its own (message-level) consensus and executes it.
* **cross-shard** — the lowest-indexed involved cluster initiates a
  flattened round: CROSS-PROPOSE fans out to the involved clusters'
  ports (one WAN hop); each involved cluster anchors the transaction in
  its local log via consensus and locks the touched keys; ACKs return to
  the initiator (second WAN hop); once every involved cluster has
  anchored, the initiator executes and fans out CROSS-APPLY (third WAN
  hop). Three WAN exchanges and one consensus round per involved
  cluster — fewer phases than AHL's coordinator-based 2PC, and
  non-overlapping transactions proceed fully in parallel.

Conflicting transactions use no-wait locking: whoever finds a key locked
votes abort, and the initiator releases the others.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.types import Transaction
from repro.sharding.clusters import ShardedSystem


@dataclass(frozen=True)
class CrossPropose:
    tx_id: str
    initiator: str
    size_bytes: int = 640


@dataclass(frozen=True)
class CrossAck:
    tx_id: str
    shard: str
    ok: bool
    size_bytes: int = 128


@dataclass(frozen=True)
class CrossApply:
    tx_id: str
    commit: bool
    size_bytes: int = 640


class SharPerSystem(ShardedSystem):
    """SharPer: sharded ledger with flattened cross-shard consensus."""

    name = "sharper"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._acks: dict[str, dict[str, bool]] = {}

    # -- routing ------------------------------------------------------------

    def _route(self, tx: Transaction) -> None:
        if len(tx.involved) == 1:
            shard = next(iter(tx.involved))
            self.clusters[shard].submit(("intra", tx.tx_id))
            self.sim.metrics.incr("shard.intra_submitted")
        else:
            initiator = min(tx.involved)
            self._acks[tx.tx_id] = {}
            message = CrossPropose(tx_id=tx.tx_id, initiator=initiator)
            for shard in sorted(tx.involved):
                self.ports[initiator].send(f"{shard}-port", message)
            self.sim.metrics.incr("shard.cross_submitted")

    # -- local decisions ------------------------------------------------------

    def _on_cluster_decide(self, shard: str, value: Any) -> None:
        kind, tx_id = value
        tx = self._tx_by_id[tx_id]
        if kind == "intra":
            self.commit_intra(shard, tx)
        elif kind == "cross-anchor":
            self._anchor_cross(shard, tx)

    def _anchor_cross(self, shard: str, tx: Transaction) -> None:
        """Local consensus anchored the cross-shard tx in this shard's
        log; lock its keys and ACK the initiator."""
        touched = {
            op.key
            for op in tx.declared_ops
            if self.shard_of_key(op.key) == shard
        }
        locks = self._locks[shard]
        ok = not locks.conflicts(touched)
        if ok:
            locks.acquire(touched, tx.tx_id)
        initiator = min(tx.involved)
        self.ports[shard].send(
            f"{initiator}-port", CrossAck(tx_id=tx.tx_id, shard=shard, ok=ok)
        )

    # -- port traffic -------------------------------------------------------------

    def _on_port_message(self, shard: str, src: str, message: object) -> None:
        if isinstance(message, CrossPropose):
            # Anchor through this cluster's own consensus (the flattened
            # protocol's per-cluster quorum).
            self.clusters[shard].submit(("cross-anchor", message.tx_id))
        elif isinstance(message, CrossAck):
            self._collect_ack(message)
        elif isinstance(message, CrossApply):
            self._apply_cross(shard, message)

    def _collect_ack(self, message: CrossAck) -> None:
        tx = self._tx_by_id[message.tx_id]
        acks = self._acks.setdefault(message.tx_id, {})
        acks[message.shard] = message.ok
        if set(acks) != tx.involved:
            return
        initiator = min(tx.involved)
        commit = all(acks.values())
        rwset = None
        if commit:
            rwset = self.execute_on_shards(tx, sorted(tx.involved))
            commit = rwset.ok
        outcome = CrossApply(tx_id=tx.tx_id, commit=commit)
        for shard in sorted(tx.involved):
            self.ports[initiator].send(f"{shard}-port", outcome)
        if commit:
            assert rwset is not None
            self._cross_writes = getattr(self, "_cross_writes", {})
            self._cross_writes[tx.tx_id] = rwset.writes
            self.commit(tx)
            self.sim.metrics.incr("shard.cross_commits")
        else:
            reason = "lock_conflict" if rwset is None else "business_rule"
            self.abort(tx, reason)

    def _apply_cross(self, shard: str, message: CrossApply) -> None:
        tx = self._tx_by_id[message.tx_id]
        if message.commit:
            writes = getattr(self, "_cross_writes", {}).get(message.tx_id, {})
            self.apply_writes(shard, writes)
            self.append_to_ledger(shard, tx)
        self._locks[shard].release(message.tx_id)
