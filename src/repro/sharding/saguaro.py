"""Saguaro (Amiri et al., 2021) — hierarchical wide-area sharding.

Paper section 2.3.4: "nodes are organized in a hierarchical structure
following the wide area network infrastructure from edge devices to
edge, fog, and cloud servers ... At the lower level, Saguaro, similar to
SharPer, maintains a shard of the blockchain ledger on each cluster.
Saguaro, however, benefits from the hierarchical structure of the
network in the processing of cross-shard transactions. For each
cross-shard transaction, the internal cluster with the minimum total
distance from the involved clusters, i.e., the lowest common ancestor of
all involved clusters, is chosen as the coordinator resulting in lower
latency."

Topology modelled: leaf (edge) clusters own the shards; ``fanout``
consecutive leaves share a *fog* cluster; one *cloud* cluster roots the
tree. Link latencies grow with level, and the latency between any two
regions is the tree-path sum. Cross-shard transactions run the same
2PC shape as AHL — but coordinated by the LCA cluster, so transactions
between nearby shards never pay cloud-level round trips.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.sharding.ahl import Decision, Done, Prepare, Vote
from repro.sharding.clusters import ClusterPort, ShardedConfig, ShardedSystem


@dataclass
class SaguaroConfig(ShardedConfig):
    """Saguaro adds the tree shape and per-level link latencies."""

    fanout: int = 2
    #: One-way leaf <-> fog latency (metro distance).
    fog_latency: float = 0.01
    #: One-way fog <-> cloud latency (continental distance).
    cloud_latency: float = 0.04

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.fanout < 1:
            raise ConfigError("fanout must be >= 1")


class SaguaroSystem(ShardedSystem):
    """Saguaro: edge shards with LCA-coordinated cross-shard 2PC."""

    name = "saguaro"

    def __init__(self, registry, shard_of_key, config=None) -> None:
        config = config or SaguaroConfig()
        if not isinstance(config, SaguaroConfig):
            raise ConfigError("SaguaroSystem requires a SaguaroConfig")
        super().__init__(registry, shard_of_key, config)
        self.config: SaguaroConfig
        # Build the internal (fog + cloud) clusters.
        protocol_cls, byzantine = PROTOCOLS[config.protocol]
        self._fog_of: dict[str, str] = {}
        fog_names = []
        for index, shard in enumerate(self.shards):
            fog = f"fog{index // config.fanout}"
            self._fog_of[shard] = fog
            if fog not in fog_names:
                fog_names.append(fog)
        self.internal: dict[str, ConsensusCluster] = {}
        self.internal_ports: dict[str, ClusterPort] = {}
        for name in fog_names + ["cloud"]:
            cluster = ConsensusCluster(
                protocol_cls,
                n=config.nodes_per_cluster,
                byzantine=byzantine,
                sim=self.sim,
                network=self.network,
                id_prefix=f"{name}-n",
                decide_listener=self._make_internal_listener(name),
                trusted_hardware=config.trusted_hardware,
            )
            self.internal[name] = cluster
            for node_id in cluster.config.replica_ids:
                self._wan.assign(node_id, name)
            port = ClusterPort(
                f"{name}-port", self.sim, self.network,
                handler=self._make_coordinator_handler(name),
            )
            self._wan.assign(port.node_id, name)
            self.internal_ports[name] = port
        self._install_tree_latencies(fog_names)
        self._votes: dict[str, dict[str, bool]] = {}
        self._done: dict[str, set[str]] = {}
        self._cross_writes: dict[str, dict[str, Any]] = {}
        self._coordinator_of: dict[str, str] = {}

    # -- topology ---------------------------------------------------------------

    def _install_tree_latencies(self, fog_names: list[str]) -> None:
        """Latency between regions = sum of tree-path link latencies."""
        config = self.config
        matrix = self._wan.matrix
        for shard, fog in self._fog_of.items():
            matrix[(shard, fog)] = config.fog_latency
            matrix[(shard, "cloud")] = config.fog_latency + config.cloud_latency
        for fog in fog_names:
            matrix[(fog, "cloud")] = config.cloud_latency
            for other in fog_names:
                if fog < other:
                    matrix[(fog, other)] = 2 * config.cloud_latency
        # Leaf-to-leaf via the tree.
        for a in self.shards:
            for b in self.shards:
                if a < b:
                    if self._fog_of[a] == self._fog_of[b]:
                        matrix[(a, b)] = 2 * config.fog_latency
                    else:
                        matrix[(a, b)] = 2 * (
                            config.fog_latency + config.cloud_latency
                        )

    def lca_of(self, shards: set[str]) -> str:
        """Lowest common ancestor cluster of the involved shards."""
        fogs = {self._fog_of[s] for s in shards}
        if len(fogs) == 1:
            return next(iter(fogs))
        return "cloud"

    # -- routing -------------------------------------------------------------------

    def _route(self, tx: Transaction) -> None:
        if len(tx.involved) == 1:
            shard = next(iter(tx.involved))
            self.clusters[shard].submit(("intra", tx.tx_id))
            self.sim.metrics.incr("shard.intra_submitted")
            return
        coordinator = self.lca_of(set(tx.involved))
        self._coordinator_of[tx.tx_id] = coordinator
        self.internal[coordinator].submit(("begin", tx.tx_id))
        self.sim.metrics.incr("shard.cross_submitted")
        self.sim.metrics.incr(
            "shard.coordinated_by_fog" if coordinator != "cloud"
            else "shard.coordinated_by_cloud"
        )

    # -- leaf decisions ------------------------------------------------------------------

    def _on_cluster_decide(self, shard: str, value: Any) -> None:
        kind, tx_id = value
        tx = self._tx_by_id[tx_id]
        if kind == "intra":
            self.commit_intra(shard, tx)
        elif kind == "prepare":
            self._prepare_locally(shard, tx)
        elif kind == "apply":
            self._apply_locally(shard, tx, commit=True)
        elif kind == "rollback":
            self._apply_locally(shard, tx, commit=False)

    def _prepare_locally(self, shard: str, tx: Transaction) -> None:
        touched = {
            op.key
            for op in tx.declared_ops
            if self.shard_of_key(op.key) == shard
        }
        locks = self._locks[shard]
        ok = not locks.conflicts(touched)
        if ok:
            locks.acquire(touched, tx.tx_id)
        coordinator = self._coordinator_of[tx.tx_id]
        self.ports[shard].send(
            f"{coordinator}-port", Vote(tx_id=tx.tx_id, shard=shard, ok=ok)
        )

    def _apply_locally(self, shard: str, tx: Transaction, commit: bool) -> None:
        if commit:
            self.apply_writes(shard, self._cross_writes.get(tx.tx_id, {}))
            self.append_to_ledger(shard, tx)
        self._locks[shard].release(tx.tx_id)
        coordinator = self._coordinator_of[tx.tx_id]
        self.ports[shard].send(
            f"{coordinator}-port", Done(tx_id=tx.tx_id, shard=shard)
        )

    # -- coordinator (LCA) side -------------------------------------------------------------

    def _make_internal_listener(self, name: str):
        reference = f"{name}-n0"

        def listener(node_id: str, sequence: int, value: Any) -> None:
            if node_id != reference:
                return
            self._on_internal_decide(name, value)

        return listener

    def _on_internal_decide(self, name: str, value: Any) -> None:
        kind, tx_id = value[0], value[1]
        tx = self._tx_by_id[tx_id]
        port = self.internal_ports[name]
        if kind == "begin":
            self._votes[tx_id] = {}
            for shard in sorted(tx.involved):
                port.send(f"{shard}-port", Prepare(tx_id=tx_id))
        elif kind == "decide-commit":
            rwset = self.execute_on_shards(tx, sorted(tx.involved))
            commit = rwset.ok
            if commit:
                self._cross_writes[tx_id] = rwset.writes
                self._done[tx_id] = set()
            else:
                self.abort(tx, "business_rule")
            for shard in sorted(tx.involved):
                port.send(f"{shard}-port", Decision(tx_id=tx_id, commit=commit))
        elif kind == "decide-abort":
            self.abort(tx, "lock_conflict")
            for shard in sorted(tx.involved):
                port.send(f"{shard}-port", Decision(tx_id=tx_id, commit=False))

    def _make_coordinator_handler(self, name: str):
        def handler(src: str, message: object) -> None:
            if isinstance(message, Vote):
                tx = self._tx_by_id[message.tx_id]
                votes = self._votes.setdefault(message.tx_id, {})
                votes[message.shard] = message.ok
                if set(votes) != tx.involved:
                    return
                verdict = (
                    "decide-commit" if all(votes.values()) else "decide-abort"
                )
                self.internal[name].submit((verdict, message.tx_id))
            elif isinstance(message, Done):
                tx = self._tx_by_id[message.tx_id]
                done = self._done.setdefault(message.tx_id, set())
                done.add(message.shard)
                if done == tx.involved and message.tx_id in self._cross_writes:
                    self.commit(tx)
                    self.sim.metrics.incr("shard.cross_commits")

        return handler

    def _on_port_message(self, shard: str, src: str, message: object) -> None:
        if isinstance(message, Prepare):
            self.clusters[shard].submit(("prepare", message.tx_id))
        elif isinstance(message, Decision):
            kind = "apply" if message.commit else "rollback"
            self.clusters[shard].submit((kind, message.tx_id))
