"""Shared infrastructure for the sharded/clustered systems (section 2.3.4).

"Permissioned blockchain systems mainly use clustering to improve
scalability. Nodes are partitioned into fault-tolerant clusters where
each cluster processes (or at least orders) a disjoint set of
transactions."

This module wires the pieces every system in this package shares: one
simulation, one WAN network whose regions are the clusters, one
consensus cluster per shard, a per-shard store and ledger, and a
*port* node per cluster through which cross-cluster protocol traffic
flows (and is therefore charged WAN latency and counted as messages).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ConfigError, ValidationError
from repro.common.metrics import RunResult
from repro.common.types import Transaction, TxType
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.execution.conflict_index import KeyLockIndex
from repro.execution.contracts import ContractRegistry
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.chain import Blockchain
from repro.ledger.store import StateStore, Version
from repro.sim.core import Simulation
from repro.sim.network import LanLatency, Network, WanLatency
from repro.sim.node import Node


@dataclass
class ShardedConfig:
    """Deployment knobs shared by all sharded systems."""

    n_clusters: int = 4
    nodes_per_cluster: int = 4
    protocol: str = "pbft"
    trusted_hardware: bool = False
    #: One-way latency between any two distinct clusters (seconds).
    wan_latency: float = 0.05
    seed: int = 0
    arrival_rate: float | None = 1000.0
    max_time: float = 600.0
    #: Contract-invocation backend for :meth:`ShardedSystem.execute_on_shards`:
    #: ``"inline"`` runs contracts in-process against the union snapshot
    #: view; ``"process-pool"`` routes them through a forked
    #: :class:`~repro.execution.parallel_backend.RemoteContractRunner`
    #: (falling back inline on any worker failure or undeclared read).
    execution_backend: str = "inline"

    def __post_init__(self) -> None:
        if self.n_clusters < 1:
            raise ConfigError("need at least one cluster")
        if self.execution_backend not in ("inline", "process-pool"):
            raise ConfigError(
                "execution_backend must be 'inline' or 'process-pool', "
                f"got {self.execution_backend!r}"
            )


class ClusterPort(Node):
    """A cluster's endpoint for cross-cluster protocol messages.

    Cross-shard coordination (2PC votes, flattened consensus rounds,
    hierarchical forwarding) flows port-to-port over the WAN, so each
    hop pays inter-region latency and appears in the message counts.
    """

    def __init__(self, node_id, sim, network, handler) -> None:
        super().__init__(node_id, sim, network)
        self._handler = handler

    def on_message(self, src: str, message: object) -> None:
        self._handler(src, message)


class ShardedSystem:
    """Base class for ResilientDB, AHL, SharPer and Saguaro."""

    name = "sharded"

    def __init__(
        self,
        registry: ContractRegistry,
        shard_of_key: Callable[[str], str],
        config: ShardedConfig | None = None,
    ) -> None:
        self.config = config or ShardedConfig()
        self.registry = registry
        self.shard_of_key = shard_of_key
        self.sim = Simulation(seed=self.config.seed)
        self.shards = [f"shard{i}" for i in range(self.config.n_clusters)]
        self._wan = WanLatency(
            region_of={},
            matrix=self._wan_matrix(),
            lan=LanLatency(),
        )
        self.network = Network(self.sim, latency=self._wan)
        protocol_cls, byzantine = PROTOCOLS[self.config.protocol]
        self.clusters: dict[str, ConsensusCluster] = {}
        self.stores: dict[str, StateStore] = {}
        self.ledgers: dict[str, Blockchain] = {}
        self.heights: dict[str, int] = {}
        self.ports: dict[str, ClusterPort] = {}
        for shard in self.shards:
            cluster = ConsensusCluster(
                protocol_cls,
                n=self.config.nodes_per_cluster,
                byzantine=byzantine,
                sim=self.sim,
                network=self.network,
                id_prefix=f"{shard}-n",
                decide_listener=self._make_listener(shard),
                trusted_hardware=self.config.trusted_hardware,
            )
            self.clusters[shard] = cluster
            for node_id in cluster.config.replica_ids:
                self._wan.assign(node_id, shard)
            port = ClusterPort(
                f"{shard}-port", self.sim, self.network,
                handler=self._make_port_handler(shard),
            )
            self._wan.assign(port.node_id, shard)
            self.ports[shard] = port
            self.stores[shard] = StateStore()
            self.ledgers[shard] = Blockchain()
            self.heights[shard] = 0
        self._tx_by_id: dict[str, Transaction] = {}
        self._submit_times: dict[str, float] = {}
        self._commit_times: dict[str, float] = {}
        self._cross_ids: set[str] = set()
        self._aborted: dict[str, str] = {}
        self._pending: list[Transaction] = []
        # Per-shard no-wait lock tables: conflict probes are O(keys
        # touched), release O(keys held) — no per-tx table scans.
        self._locks: dict[str, KeyLockIndex] = {
            s: KeyLockIndex() for s in self.shards
        }
        self._exec_free: dict[str, float] = {s: 0.0 for s in self.shards}
        # Lazily-forked worker for execution_backend="process-pool";
        # daemonic, so it can never outlive the parent process.
        self._remote_runner = None
        self._ran = False

    def _wan_matrix(self) -> dict[tuple[str, str], float]:
        matrix = {}
        for i in range(self.config.n_clusters):
            for j in range(i + 1, self.config.n_clusters):
                matrix[(f"shard{i}", f"shard{j}")] = self.config.wan_latency
        return matrix

    def _make_listener(self, shard: str):
        reference = f"{shard}-n0"

        def listener(node_id: str, sequence: int, value: Any) -> None:
            if node_id == reference:
                self._on_cluster_decide(shard, value)

        return listener

    def _make_port_handler(self, shard: str):
        def handler(src: str, message: object) -> None:
            self._on_port_message(shard, src, message)

        return handler

    # -- submission & run -----------------------------------------------------

    def submit(self, tx: Transaction) -> None:
        if not tx.involved:
            raise ValidationError("sharded systems need tx.involved set")
        unknown = tx.involved - set(self.shards)
        if unknown:
            raise ValidationError(f"unknown shards: {unknown}")
        self._tx_by_id[tx.tx_id] = tx
        self._pending.append(tx)

    def run(self) -> RunResult:
        if self._ran:
            raise ConfigError("a sharded system runs exactly once")
        self._ran = True
        interval = (
            1.0 / self.config.arrival_rate if self.config.arrival_rate else 0.0
        )
        at = 0.0
        for tx in self._pending:
            self._submit_times[tx.tx_id] = at
            if len(tx.involved) > 1:
                self._cross_ids.add(tx.tx_id)

            def arrive(t=tx) -> None:
                self._route(t)

            self.sim.schedule_at(at, arrive)
            at += interval
        total = len(self._pending)
        horizon = self.config.max_time
        while self.sim.now < horizon:
            if len(self._commit_times) + len(self._aborted) >= total:
                break
            before = self.sim.now
            processed = self.sim.run(until=min(horizon, self.sim.now + 0.5))
            if processed == 0 and self.sim.now == before:
                break
        return self._build_result()

    # -- execution helpers --------------------------------------------------------

    def claim_shard_executor(self, shard: str, cost: float) -> float:
        """Occupy ``shard``'s execution pipeline for ``cost`` simulated
        seconds; returns the completion time. This is the per-shard
        capacity that makes sharding scale: K shards execute K disjoint
        streams concurrently, while a single-ledger design funnels every
        transaction through one pipeline."""
        start = max(self.sim.now, self._exec_free[shard])
        self._exec_free[shard] = start + cost
        return self._exec_free[shard]

    def commit_intra(self, shard: str, tx: Transaction) -> None:
        """Standard intra-shard commit path shared by the sharded-ledger
        systems: charge the shard's executor, then (in FIFO order) check
        locks, execute, apply, and append to the shard's ledger."""
        done_at = self.claim_shard_executor(shard, self.registry.cost(tx.contract))

        def finish() -> None:
            touched = {op.key for op in tx.declared_ops}
            if self._locks[shard].conflicts(touched):
                self.abort(tx, "lock_conflict")
                return
            rwset = self.execute_on_shards(tx, [shard])
            if not rwset.ok:
                self.abort(tx, "business_rule")
                return
            self.apply_writes(shard, rwset.writes)
            self.append_to_ledger(shard, tx)
            self.commit(tx)

        self.sim.schedule_at(done_at, finish)

    def execute_on_shards(
        self, tx: Transaction, shards: list[str], backend: str | None = None
    ) -> RWSet:
        """Run the contract against the union view of ``shards``.

        Each shard contributes an O(1) copy-on-write snapshot, so the
        execution reads a stable cut of every shard's state even while
        later decisions commit into the live stores. ``backend``
        overrides ``config.execution_backend`` per call: with
        ``"process-pool"`` the invocation runs in a forked worker fed
        the declared keys' entries, and silently degrades to the inline
        path on worker failure or an undeclared read (the captured
        read/write set is identical either way — asserted by the tests).
        """
        view = _ShardUnionView(
            {s: self.stores[s].snapshot() for s in shards}, self.shard_of_key
        )
        backend = backend or self.config.execution_backend
        if backend == "process-pool":
            rwset = self._execute_remote(tx, view)
            if rwset is not None:
                return rwset
        return execute_with_capture(self.registry, tx, view)

    def _execute_remote(self, tx: Transaction, view) -> RWSet | None:
        from repro.execution.parallel_backend import RemoteContractRunner

        if self._remote_runner is None:
            self._remote_runner = RemoteContractRunner(self.registry)
        return self._remote_runner.execute(tx, view)

    def apply_writes(self, shard: str, writes: dict[str, Any]) -> None:
        """Apply the writes that belong to ``shard``."""
        owned = {
            key: value
            for key, value in writes.items()
            if self.shard_of_key(key) == shard
        }
        if not owned:
            return
        self.heights[shard] += 1
        self.stores[shard].apply_writes(
            owned, Version(height=self.heights[shard], tx_index=0)
        )

    def append_to_ledger(self, shard: str, tx: Transaction) -> None:
        ledger = self.ledgers[shard]
        ledger.append(ledger.next_block([tx], timestamp=self.sim.now))

    def commit(self, tx: Transaction) -> None:
        if tx.tx_id not in self._commit_times:
            self._commit_times[tx.tx_id] = self.sim.now

    def abort(self, tx: Transaction, reason: str) -> None:
        if tx.tx_id not in self._aborted and tx.tx_id not in self._commit_times:
            self._aborted[tx.tx_id] = reason
            self.sim.metrics.incr(f"shard.abort.{reason}")

    # -- subclass hooks ---------------------------------------------------------------

    def _route(self, tx: Transaction) -> None:
        """A transaction arrived; send it into the architecture."""
        raise NotImplementedError

    def _on_cluster_decide(self, shard: str, value: Any) -> None:
        """``shard``'s local consensus decided ``value``."""
        raise NotImplementedError

    def _on_port_message(self, shard: str, src: str, message: object) -> None:
        """Cross-cluster message arrived at ``shard``'s port."""
        raise NotImplementedError

    # -- results ---------------------------------------------------------------------------

    def _build_result(self) -> RunResult:
        result = RunResult(system=self.name)
        last = 0.0
        intra_lat: list[float] = []
        cross_lat: list[float] = []
        for tx_id, commit_time in self._commit_times.items():
            result.committed += 1
            latency = commit_time - self._submit_times[tx_id]
            result.latencies.record(latency)
            (cross_lat if tx_id in self._cross_ids else intra_lat).append(latency)
            last = max(last, commit_time)
        result.aborted = len(self._aborted) + (
            len(self._pending) - len(self._commit_times) - len(self._aborted)
        )
        result.duration = last if last > 0 else self.sim.now
        result.messages = int(self.sim.metrics.get("net.messages"))
        result.extra = {
            "intra_mean_latency": (
                sum(intra_lat) / len(intra_lat) if intra_lat else 0.0
            ),
            "cross_mean_latency": (
                sum(cross_lat) / len(cross_lat) if cross_lat else 0.0
            ),
            "cross_committed": float(len(cross_lat)),
        }
        result.extra.update(
            {
                key: val
                for key, val in self.sim.metrics.snapshot().items()
                if key.startswith("shard.")
            }
        )
        return result


class _ShardUnionView:
    """Read view routing each key to its owning shard's snapshot."""

    def __init__(
        self, stores: dict[str, Any], shard_of_key: Callable[[str], str]
    ) -> None:
        self._stores = stores
        self._shard_of_key = shard_of_key

    def get_versioned(self, key: str):
        shard = self._shard_of_key(key)
        store = self._stores.get(shard)
        if store is None:
            store = next(iter(self._stores.values()))
        return store.get_versioned(key)
