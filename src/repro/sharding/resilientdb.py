"""ResilientDB / GeoBFT (Gupta et al., VLDB 2020) — single-ledger clustering.

Paper section 2.3.4: "ResilientDB uses a topological-aware clustering
approach and partitions the network into local fault-tolerant clusters
to minimize the cost of global communication. All clusters, however,
replicate the entire ledger on every node and, at every round, each
cluster locally establishes consensus on a single transaction and then
multicasts the locally-replicated transaction to other clusters. All
clusters then execute all transactions of that round in a predetermined
order. Since all transactions are executed by all clusters there is no
concept of intra- and cross-shard transactions."

Modelled exactly that way: transactions are assigned to clusters
round-robin; each cluster orders its stream locally (cheap LAN
consensus), certified transactions are multicast cluster-to-cluster
(one WAN hop each), and the global execution order interleaves the
clusters' streams round by round — round *k* contains the *k*-th
transaction of every cluster, executed in cluster-index order, on the
single fully replicated state.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.common.types import Transaction
from repro.execution.rwsets import execute_with_capture
from repro.ledger.chain import Blockchain
from repro.ledger.store import StateStore, Version
from repro.sharding.clusters import ShardedSystem


@dataclass(frozen=True)
class GlobalShare:
    """A locally ordered transaction certified to the other clusters."""

    tx_id: str
    cluster: str
    round: int
    size_bytes: int = 768


class ResilientDbSystem(ShardedSystem):
    """ResilientDB: clustered ordering over one fully replicated ledger."""

    name = "resilientdb"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # One global state and ledger: every cluster replicates everything.
        self.global_store = StateStore()
        self.global_ledger = Blockchain()
        self._global_height = 0
        self._next_cluster = 0
        self._local_round: dict[str, int] = {s: 0 for s in self.shards}
        #: shard -> round -> (tx id, time every port has received it).
        self._shares: dict[str, dict[int, str]] = {s: {} for s in self.shards}
        self._share_arrivals: dict[tuple[str, int], set[str]] = {}
        self._expected: dict[str, int] = {s: 0 for s in self.shards}
        self._exec_round = 0
        # Single execution pipeline: every cluster executes every
        # transaction, so the whole system has one logical executor —
        # the scalability ceiling of the single-ledger design.
        self._global_exec_free = 0.0

    def submit(self, tx: Transaction) -> None:  # noqa: D102 - see base
        # No intra/cross distinction: assign clusters round-robin.
        shard = self.shards[self._next_cluster % len(self.shards)]
        self._next_cluster += 1
        self._expected[shard] += 1
        super().submit(replace(tx, involved=frozenset({shard})))

    # -- pipeline -------------------------------------------------------------

    def _route(self, tx: Transaction) -> None:
        shard = next(iter(tx.involved))
        self.clusters[shard].submit(tx.tx_id)

    def _on_cluster_decide(self, shard: str, value: Any) -> None:
        round_ = self._local_round[shard]
        self._local_round[shard] += 1
        share = GlobalShare(tx_id=value, cluster=shard, round=round_)
        # Global multicast: the expensive step of the single-ledger design.
        for other in self.shards:
            if other != shard:
                self.ports[shard].send(f"{other}-port", share)
        self._record_share(shard, share)

    def _on_port_message(self, shard: str, src: str, message: object) -> None:
        if isinstance(message, GlobalShare):
            self._record_share(shard, message)

    def _record_share(self, at_shard: str, share: GlobalShare) -> None:
        key = (share.cluster, share.round)
        arrivals = self._share_arrivals.setdefault(key, set())
        arrivals.add(at_shard)
        self._shares[share.cluster][share.round] = share.tx_id
        if len(arrivals) == len(self.shards):
            self._try_execute_rounds()

    def _round_complete(self, round_: int) -> bool:
        for shard in self.shards:
            if round_ >= self._expected[shard]:
                continue  # this cluster has no more transactions
            arrivals = self._share_arrivals.get((shard, round_), set())
            if len(arrivals) < len(self.shards):
                return False
        return True

    def _try_execute_rounds(self) -> None:
        while self._round_complete(self._exec_round) and any(
            self._exec_round < self._expected[s] for s in self.shards
        ):
            round_ = self._exec_round
            self._exec_round += 1
            cost = sum(
                self.registry.cost(self._tx_by_id[tx_id].contract)
                for shard in self.shards
                if (tx_id := self._shares[shard].get(round_)) is not None
            )
            start = max(self.sim.now, self._global_exec_free)
            self._global_exec_free = start + cost
            self.sim.schedule_at(
                self._global_exec_free,
                lambda r=round_: self._execute_round(r),
            )

    def _execute_round(self, round_: int) -> None:
        """Execute round ``round_`` in the predetermined cluster order."""
        batch: list[Transaction] = []
        for shard in self.shards:
            tx_id = self._shares[shard].get(round_)
            if tx_id is None:
                continue
            tx = self._tx_by_id[tx_id]
            batch.append(tx)
            rwset = execute_with_capture(self.registry, tx, self.global_store)
            if rwset.ok:
                self._global_height += 1
                self.global_store.apply_writes(
                    rwset.writes, Version(self._global_height, 0)
                )
                self.commit(tx)
            else:
                self.abort(tx, "business_rule")
        if batch:
            self.global_ledger.append(
                self.global_ledger.next_block(batch, timestamp=self.sim.now)
            )
            self.sim.metrics.incr("shard.global_rounds")
