"""AHL (Dang et al., SIGMOD 2019) — coordinator-based sharding.

Paper section 2.3.4, three modelled ingredients:

* **Committee safety math** — nodes are *randomly* assigned to
  committees, so safety is probabilistic: a committee fails when a third
  or more of its members are malicious. :func:`committee_failure_probability`
  computes the hypergeometric tail the paper's "at least 80 nodes
  (instead of ~600 in OmniLedger)" figure comes from, and
  :func:`min_committee_size` inverts it (benchmark E7).
* **Trusted hardware** — attested messages make equivocation impossible,
  so committees need only ``2f + 1`` members instead of ``3f + 1``
  (``trusted_hardware=True`` in the cluster config).
* **Coordinator-based 2PC/2PL** — cross-shard transactions are driven by
  an extra *reference committee*: it orders a BEGIN, sends PREPAREs to
  the involved committees (each anchoring a lock through its own local
  consensus), collects votes, orders the global COMMIT/ABORT decision,
  and distributes it — the "large number of intra- and cross-cluster
  communication phases" the Discussion paragraph charges this design
  with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.sharding.clusters import ClusterPort, ShardedSystem


# -- committee-safety calculator (pure math, used by benchmark E7) ----------


def committee_failure_probability(
    total_nodes: int, byzantine_nodes: int, committee_size: int,
    resilience: float = 1.0 / 3.0,
) -> float:
    """P[a random committee draws >= resilience * size malicious nodes].

    Hypergeometric tail: committees are sampled without replacement from
    ``total_nodes`` of which ``byzantine_nodes`` are malicious.
    """
    if committee_size > total_nodes:
        raise ConfigError("committee larger than the population")
    threshold = math.ceil(committee_size * resilience)
    total = math.comb(total_nodes, committee_size)
    probability = 0.0
    for bad in range(threshold, committee_size + 1):
        good = committee_size - bad
        if bad > byzantine_nodes or good > total_nodes - byzantine_nodes:
            continue
        probability += (
            math.comb(byzantine_nodes, bad)
            * math.comb(total_nodes - byzantine_nodes, good)
            / total
        )
    return probability


def min_committee_size(
    total_nodes: int, byzantine_fraction: float, epsilon: float = 2 ** -20,
    resilience: float = 1.0 / 3.0,
) -> int:
    """Smallest committee with failure probability below ``epsilon``.

    With trusted hardware the resilience threshold rises from 1/3 to
    1/2, which is how AHL shrinks its committees.
    """
    byzantine = int(total_nodes * byzantine_fraction)
    for size in range(3, total_nodes + 1):
        if committee_failure_probability(
            total_nodes, byzantine, size, resilience
        ) < epsilon:
            return size
    return total_nodes


# -- the AHL system -----------------------------------------------------------


@dataclass(frozen=True)
class Prepare:
    tx_id: str
    size_bytes: int = 640


@dataclass(frozen=True)
class Vote:
    tx_id: str
    shard: str
    ok: bool
    size_bytes: int = 128


@dataclass(frozen=True)
class Decision:
    tx_id: str
    commit: bool
    size_bytes: int = 640


@dataclass(frozen=True)
class Done:
    tx_id: str
    shard: str
    size_bytes: int = 128


class AhlSystem(ShardedSystem):
    """AHL: sharded ledger, reference committee coordinating 2PC/2PL."""

    name = "ahl"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        protocol_cls, byzantine = PROTOCOLS[self.config.protocol]
        # The extra set of nodes the decentralized designs avoid.
        self.reference = ConsensusCluster(
            protocol_cls,
            n=self.config.nodes_per_cluster,
            byzantine=byzantine,
            sim=self.sim,
            network=self.network,
            id_prefix="refcom-n",
            decide_listener=self._on_reference_decide,
            trusted_hardware=self.config.trusted_hardware,
        )
        for node_id in self.reference.config.replica_ids:
            self._wan.assign(node_id, "refcom")
        self.ref_port = ClusterPort(
            "refcom-port", self.sim, self.network, handler=self._on_ref_port
        )
        self._wan.assign("refcom-port", "refcom")
        for shard in self.shards:
            self._wan.matrix[(shard, "refcom")] = self.config.wan_latency
        self._votes: dict[str, dict[str, bool]] = {}
        self._done: dict[str, set[str]] = {}
        self._cross_writes: dict[str, dict[str, Any]] = {}

    # -- routing ----------------------------------------------------------------

    def _route(self, tx: Transaction) -> None:
        if len(tx.involved) == 1:
            shard = next(iter(tx.involved))
            self.clusters[shard].submit(("intra", tx.tx_id))
            self.sim.metrics.incr("shard.intra_submitted")
        else:
            # Cross-shard: hand the transaction to the reference committee.
            self.reference.submit(("begin", tx.tx_id))
            self.sim.metrics.incr("shard.cross_submitted")

    # -- shard-local decisions -----------------------------------------------------

    def _on_cluster_decide(self, shard: str, value: Any) -> None:
        kind, tx_id = value
        tx = self._tx_by_id[tx_id]
        if kind == "intra":
            self.commit_intra(shard, tx)
        elif kind == "prepare":
            self._prepare_locally(shard, tx)
        elif kind == "apply":
            self._apply_locally(shard, tx, commit=True)
        elif kind == "rollback":
            self._apply_locally(shard, tx, commit=False)

    def _prepare_locally(self, shard: str, tx: Transaction) -> None:
        """2PL acquire (no-wait) anchored by local consensus; vote back."""
        touched = {
            op.key
            for op in tx.declared_ops
            if self.shard_of_key(op.key) == shard
        }
        locks = self._locks[shard]
        ok = not locks.conflicts(touched)
        if ok:
            locks.acquire(touched, tx.tx_id)
        self.ports[shard].send(
            "refcom-port", Vote(tx_id=tx.tx_id, shard=shard, ok=ok)
        )

    def _apply_locally(self, shard: str, tx: Transaction, commit: bool) -> None:
        if commit:
            writes = self._cross_writes.get(tx.tx_id, {})
            self.apply_writes(shard, writes)
            self.append_to_ledger(shard, tx)
        self._locks[shard].release(tx.tx_id)
        self.ports[shard].send("refcom-port", Done(tx_id=tx.tx_id, shard=shard))

    # -- reference committee -----------------------------------------------------------

    def _on_reference_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if node_id != "refcom-n0":
            return
        kind, payload = value[0], value[1]
        tx = self._tx_by_id[payload]
        if kind == "begin":
            self._votes[tx.tx_id] = {}
            for shard in sorted(tx.involved):
                self.ref_port.send(f"{shard}-port", Prepare(tx_id=tx.tx_id))
        elif kind == "decide-commit":
            rwset = self.execute_on_shards(tx, sorted(tx.involved))
            if rwset.ok:
                self._cross_writes[tx.tx_id] = rwset.writes
                self._done[tx.tx_id] = set()
                for shard in sorted(tx.involved):
                    self.ref_port.send(
                        f"{shard}-port", Decision(tx_id=tx.tx_id, commit=True)
                    )
            else:
                self.abort(tx, "business_rule")
                for shard in sorted(tx.involved):
                    self.ref_port.send(
                        f"{shard}-port", Decision(tx_id=tx.tx_id, commit=False)
                    )
        elif kind == "decide-abort":
            self.abort(tx, "lock_conflict")
            for shard in sorted(tx.involved):
                self.ref_port.send(
                    f"{shard}-port", Decision(tx_id=tx.tx_id, commit=False)
                )

    def _on_ref_port(self, src: str, message: object) -> None:
        if isinstance(message, Vote):
            tx = self._tx_by_id[message.tx_id]
            votes = self._votes.setdefault(message.tx_id, {})
            votes[message.shard] = message.ok
            if set(votes) != tx.involved:
                return
            # The commit/abort decision itself is ordered by the
            # reference committee (it must survive coordinator faults).
            verdict = "decide-commit" if all(votes.values()) else "decide-abort"
            self.reference.submit((verdict, message.tx_id))
        elif isinstance(message, Done):
            tx = self._tx_by_id[message.tx_id]
            done = self._done.setdefault(message.tx_id, set())
            done.add(message.shard)
            if done == tx.involved and message.tx_id in self._cross_writes:
                self.commit(tx)
                self.sim.metrics.incr("shard.cross_commits")

    # -- ports of the shards -------------------------------------------------------------

    def _on_port_message(self, shard: str, src: str, message: object) -> None:
        if isinstance(message, Prepare):
            self.clusters[shard].submit(("prepare", message.tx_id))
        elif isinstance(message, Decision):
            kind = "apply" if message.commit else "rollback"
            self.clusters[shard].submit((kind, message.tx_id))
