"""Scalability techniques (paper section 2.3.4).

Four systems spanning the design space:

=============  ==============  =======================================
System         Ledger          Cross-shard processing
=============  ==============  =======================================
ResilientDB    single, global  none — every cluster executes everything
AHL            sharded         centralized: reference committee, 2PC/2PL
SharPer        sharded         decentralized flattened consensus
Saguaro        sharded         hierarchical: LCA cluster coordinates
=============  ==============  =======================================

Plus the committee-safety calculator behind AHL's "80 nodes instead of
~600" claim (:func:`~repro.sharding.ahl.min_committee_size`).
"""

from repro.sharding.ahl import (
    AhlSystem,
    committee_failure_probability,
    min_committee_size,
)
from repro.sharding.clusters import ClusterPort, ShardedConfig, ShardedSystem
from repro.sharding.resilientdb import ResilientDbSystem
from repro.sharding.saguaro import SaguaroConfig, SaguaroSystem
from repro.sharding.sharper import SharPerSystem

__all__ = [
    "AhlSystem",
    "ClusterPort",
    "ResilientDbSystem",
    "SaguaroConfig",
    "SaguaroSystem",
    "ShardedConfig",
    "ShardedSystem",
    "SharPerSystem",
    "committee_failure_probability",
    "min_committee_size",
]
