"""The simulation driver: a virtual clock over an event heap."""

from __future__ import annotations

import random
from typing import Callable

from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.sim.events import Event, EventQueue


class Simulation:
    """A deterministic discrete-event simulation.

    All randomness used by components attached to a simulation must come
    from :attr:`rng`, which is seeded at construction — this is the single
    source of nondeterminism, so a ``Simulation(seed=42)`` run is exactly
    reproducible.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.metrics = MetricsRegistry()

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` after ``delay`` virtual seconds."""
        if delay < 0:
            raise ConfigError(f"cannot schedule into the past (delay={delay})")
        return self._queue.push(self._now + delay, callback)

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Run ``callback`` at absolute virtual ``time``."""
        if time < self._now:
            raise ConfigError(f"cannot schedule at {time}, now is {self._now}")
        return self._queue.push(time, callback)

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` have fired. Returns the number of events processed.

        ``max_events`` is a live-lock guard: a buggy protocol that
        endlessly reschedules timers terminates the run instead of
        hanging the test suite.
        """
        processed = 0
        self._running = True
        while self._running:
            next_time = self._queue.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            event = self._queue.pop()
            assert event is not None  # peek_time just saw a live event
            self._now = event.time
            event.callback()
            processed += 1
        self._running = False
        return processed

    def stop(self) -> None:
        """Halt :meth:`run` after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        return len(self._queue)
