"""The simulation driver: a virtual clock over an event heap."""

from __future__ import annotations

import heapq
import random
import time as _time
from typing import Callable

from repro.common.errors import ConfigError
from repro.common.metrics import MetricsRegistry
from repro.sim.events import Event, EventQueue


class Simulation:
    """A deterministic discrete-event simulation.

    All randomness used by components attached to a simulation must come
    from :attr:`rng`, which is seeded at construction — this is the single
    source of nondeterminism, so a ``Simulation(seed=42)`` run is exactly
    reproducible.

    After each :meth:`run`, :attr:`events_per_second` holds the measured
    event throughput of that run (wall-clock, so it is *not* part of the
    deterministic state — never feed it back into simulated behavior)
    and :attr:`events_processed` accumulates the lifetime event count.
    """

    def __init__(self, seed: int = 0) -> None:
        self._queue = EventQueue()
        self._now = 0.0
        self._running = False
        self.rng = random.Random(seed)
        self.metrics = MetricsRegistry()
        self.events_processed = 0
        self.events_per_second = 0.0
        self.last_run_wall_seconds = 0.0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def schedule(
        self, delay: float, callback: Callable[..., None], *args
    ) -> Event:
        """Run ``callback(*args)`` after ``delay`` virtual seconds.

        This is the hottest entry point in the simulator (every message
        and timer goes through it), so the queue push is inlined rather
        than delegated to :meth:`EventQueue.push` — one call frame per
        scheduled event is a measurable share of benchmark wall time.
        """
        if delay < 0:
            raise ConfigError(f"cannot schedule into the past (delay={delay})")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        time = self._now + delay
        event = Event(time, seq, callback, args)
        event._queue = queue
        heapq.heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args
    ) -> Event:
        """Run ``callback(*args)`` at absolute virtual ``time``."""
        if time < self._now:
            raise ConfigError(f"cannot schedule at {time}, now is {self._now}")
        queue = self._queue
        seq = queue._seq
        queue._seq = seq + 1
        event = Event(time, seq, callback, args)
        event._queue = queue
        heapq.heappush(queue._heap, (time, seq, event))
        queue._live += 1
        return event

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Process events until the queue drains, ``until`` passes, or
        ``max_events`` have fired. Returns the number of events processed.

        ``max_events`` is a live-lock guard: a buggy protocol that
        endlessly reschedules timers terminates the run instead of
        hanging the test suite.

        This loop dominates every benchmark's profile, so it works on
        the queue's heap directly: one ``heappop`` per event instead of
        a peek-then-pop pair, with the hot names bound locally.
        """
        processed = 0
        self._running = True
        queue = self._queue
        heap = queue._heap
        heappop = heapq.heappop
        wall_start = _time.perf_counter()
        while self._running:
            # Lazy cancellation: drop dead entries as they surface.
            while heap and heap[0][2].cancelled:
                heappop(heap)
            if not heap:
                break
            if until is not None and heap[0][0] > until:
                self._now = until
                break
            if max_events is not None and processed >= max_events:
                break
            event_time, _seq, event = heappop(heap)
            queue._live -= 1
            event._queue = None
            self._now = event_time
            event.callback(*event.args)
            processed += 1
        self._running = False
        wall = _time.perf_counter() - wall_start
        self.last_run_wall_seconds = wall
        self.events_processed += processed
        if wall > 0.0:
            self.events_per_second = processed / wall
        return processed

    def step(self, limit: int = 1) -> int:
        """Process at most ``limit`` events and return how many fired.

        The step-limited run hook for deterministic simulation testing:
        drivers that interleave invariant checks with execution (the DST
        explorer, schedule-perturbation tests) advance the world one
        event at a time instead of slicing on virtual time, which keeps
        the interleaving points themselves deterministic.
        """
        if limit < 0:
            raise ConfigError(f"step limit must be non-negative, got {limit}")
        return self.run(max_events=limit) if limit else 0

    def stop(self) -> None:
        """Halt :meth:`run` after the current event finishes."""
        self._running = False

    def pending_events(self) -> int:
        return len(self._queue)
