"""Declarative fault schedules for experiments.

A :class:`CrashSchedule` lists crash/recover actions at virtual times and
applies them to a simulation before it runs. Byzantine behaviours are
protocol-specific and live next to each protocol (e.g. the equivocating
PBFT replica in ``repro.consensus.pbft``); this module handles the
protocol-agnostic crash model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.sim.core import Simulation
from repro.sim.node import Node


@dataclass
class CrashSchedule:
    """Crash and recovery actions keyed by virtual time."""

    crashes: list[tuple[float, str]] = field(default_factory=list)
    recoveries: list[tuple[float, str]] = field(default_factory=list)

    def crash_at(self, time: float, node_id: str) -> "CrashSchedule":
        self.crashes.append((time, node_id))
        return self

    def recover_at(self, time: float, node_id: str) -> "CrashSchedule":
        self.recoveries.append((time, node_id))
        return self

    def apply(self, sim: Simulation, nodes: dict[str, Node]) -> None:
        """Schedule every action on ``sim`` against ``nodes``."""
        for time, node_id in self.crashes:
            if node_id not in nodes:
                raise ConfigError(f"crash schedule names unknown node: {node_id}")
            sim.schedule_at(time, nodes[node_id].crash)
        for time, node_id in self.recoveries:
            if node_id not in nodes:
                raise ConfigError(f"recovery schedule names unknown node: {node_id}")
            sim.schedule_at(time, nodes[node_id].recover)
