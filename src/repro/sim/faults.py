"""Declarative fault schedules for experiments.

Two layers:

* :class:`CrashSchedule` — the original crash/recover action list keyed
  by virtual time (kept as the minimal building block).
* :class:`FaultPlan` — the chaos engine: composes, on one virtual-time
  line, node crashes/recoveries, partition/heal *windows*, and
  message-level faults (targeted drops, duplication, delay spikes,
  one-shot reordering) injected through the network's interceptor hook.
  All randomness flows from the simulation RNG, so a same-seed run with
  the same plan is bit-for-bit deterministic.

Byzantine behaviours are protocol-specific and live next to each
protocol (e.g. the equivocating PBFT replica in
``repro.consensus.pbft``); this module handles the protocol-agnostic
crash, partition, and message-fault models from paper section 2.2.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from repro.common.errors import ConfigError
from repro.sim.core import Simulation
from repro.sim.network import DROP, Delay, Duplicate, Network
from repro.sim.node import Node

#: Predicate over one wire message: (src, dst, message) -> bool.
MessagePredicate = Callable[[str, str, object], bool]


def match(
    src: str | Iterable[str] | None = None,
    dst: str | Iterable[str] | None = None,
    message_type: str | type | Iterable[str | type] | None = None,
) -> MessagePredicate:
    """Build a message predicate from optional filters.

    Each filter accepts a single value or a collection; ``None`` means
    wildcard. ``message_type`` matches the message class name (a type is
    converted to its name, so ``match(message_type=AppendEntries)`` and
    ``match(message_type="AppendEntries")`` are equivalent).

        match(src="r0")                          # everything r0 sends
        match(dst="r3", message_type="Prepare")  # Prepares delivered to r3
    """

    def as_set(value, convert=lambda v: v):
        if value is None:
            return None
        if isinstance(value, (str, type)):
            return {convert(value)}
        return {convert(v) for v in value}

    def type_name(value):
        return value.__name__ if isinstance(value, type) else value

    srcs = as_set(src)
    dsts = as_set(dst)
    types = as_set(message_type, type_name)

    def predicate(msg_src: str, msg_dst: str, message: object) -> bool:
        if srcs is not None and msg_src not in srcs:
            return False
        if dsts is not None and msg_dst not in dsts:
            return False
        if types is not None and type(message).__name__ not in types:
            return False
        return True

    return predicate


def _match_all(_src: str, _dst: str, _message: object) -> bool:
    return True


@dataclass
class CrashSchedule:
    """Crash and recovery actions keyed by virtual time.

    At one virtual time, crashes apply before recoveries (they are
    scheduled first, and the event queue breaks ties by insertion
    order), so ``crash_at(t, n)`` + ``recover_at(t, n)`` deterministically
    leaves ``n`` recovered — with every pre-``t`` timer invalidated by
    the crash. Duplicate actions are idempotent.

    A recovery is the start of the restart, not its end: nodes with a
    positive ``recovery_delay()`` (durable nodes replaying their WAL)
    re-join — and re-arm timers — only after that modelled delay; see
    :meth:`FaultPlan.recover`.
    """

    crashes: list[tuple[float, str]] = field(default_factory=list)
    recoveries: list[tuple[float, str]] = field(default_factory=list)

    def crash_at(self, time: float, node_id: str) -> "CrashSchedule":
        self.crashes.append((self._valid_time(time), node_id))
        return self

    def recover_at(self, time: float, node_id: str) -> "CrashSchedule":
        self.recoveries.append((self._valid_time(time), node_id))
        return self

    @staticmethod
    def _valid_time(time: float) -> float:
        if not (time >= 0.0) or math.isinf(time):
            raise ConfigError(
                f"fault times must be finite and non-negative, got {time}"
            )
        return time

    def apply(self, sim: Simulation, nodes: Mapping[str, Node]) -> None:
        """Schedule every action on ``sim`` against ``nodes``."""
        for time, node_id in self.crashes:
            if node_id not in nodes:
                raise ConfigError(f"crash schedule names unknown node: {node_id}")
            sim.schedule_at(time, nodes[node_id].crash)
        for time, node_id in self.recoveries:
            if node_id not in nodes:
                raise ConfigError(f"recovery schedule names unknown node: {node_id}")
            sim.schedule_at(time, nodes[node_id].recover)


class _MessageRule:
    """One active-window message fault (internal to FaultPlan)."""

    __slots__ = (
        "kind", "start", "end", "predicate", "probability", "extra",
        "copies", "once", "fired",
    )

    def __init__(
        self,
        kind: str,
        start: float,
        end: float,
        predicate: MessagePredicate | None,
        probability: float = 1.0,
        extra: float = 0.0,
        copies: int = 1,
        once: bool = False,
    ) -> None:
        if not (0.0 <= start <= end):
            raise ConfigError(
                f"fault window must satisfy 0 <= start <= end, "
                f"got [{start}, {end})"
            )
        if not 0.0 < probability <= 1.0:
            raise ConfigError("fault probability must be in (0, 1]")
        self.kind = kind
        self.start = start
        self.end = end
        self.predicate = predicate or _match_all
        self.probability = probability
        self.extra = extra
        self.copies = copies
        self.once = once
        self.fired = False


class FaultPlan:
    """A composable, deterministic chaos schedule.

    Build declaratively, then :meth:`apply` once before the run::

        plan = (
            FaultPlan()
            .crash(1.0, "r0").recover(4.0, "r0")
            .partition_window(2.0, 5.0, [["r1", "r2", "r3"], ["r0", "r4"]])
            .drop_messages(0.0, 3.0, match(message_type="Prepare"),
                           probability=0.3)
            .delay_messages(2.0, 4.0, match(dst="r2"), extra=0.05)
            .duplicate_messages(1.0, 2.0, match(src="r1"))
            .reorder_once(1.5, 6.0, match(message_type="Commit"), hold=0.1)
        )
        plan.apply(cluster.sim, cluster.network, cluster.replicas)

    Crash/recover actions ride on a :class:`CrashSchedule`; partition
    windows schedule ``network.partition``/``heal`` pairs; message rules
    are served by a single network interceptor. Windows are half-open
    ``[start, end)`` in virtual time. For one message, the first
    matching rule wins (rules are consulted in declaration order).
    Probabilistic rules draw from ``sim.rng``, so the whole plan is
    deterministic under a fixed seed and composes with everything else
    the simulation randomises.
    """

    def __init__(self) -> None:
        self._crash_schedule = CrashSchedule()
        self._partitions: list[tuple[float, float, list[list[str]]]] = []
        self._rules: list[_MessageRule] = []
        self._applied = False

    # -- node faults -------------------------------------------------------

    def crash(self, time: float, *node_ids: str) -> "FaultPlan":
        """Crash ``node_ids`` at ``time`` (pre-crash timers die with it)."""
        for node_id in node_ids:
            self._crash_schedule.crash_at(time, node_id)
        return self

    def recover(self, time: float, *node_ids: str) -> "FaultPlan":
        """Restart ``node_ids`` at ``time``.

        ``time`` is when the process comes back *up*, not when it is
        back *in service*: a node whose
        :meth:`~repro.sim.node.Node.recovery_delay` is positive (durable
        nodes model WAL replay this way) spends that long in the
        ``recovering`` state first — dropping messages, owning no timers
        — and re-arms its protocol timers only when the replay
        completes. Plans asserting on post-recovery behaviour must
        therefore leave headroom after the recover event; the per-node
        epoch guard (see :meth:`~repro.sim.node.Node.crash`) extends to
        the replay window, so a re-crash inside it cleanly aborts the
        restart.
        """
        for node_id in node_ids:
            self._crash_schedule.recover_at(time, node_id)
        return self

    # -- partitions --------------------------------------------------------

    def partition_window(
        self, start: float, end: float, groups: Iterable[Iterable[str]]
    ) -> "FaultPlan":
        """Partition into ``groups`` at ``start``, heal at ``end``.

        Windows must not overlap (a network holds one partition at a
        time); the plan rejects overlapping windows at build time rather
        than silently healing the earlier one.
        """
        CrashSchedule._valid_time(start)
        if not (end > start) or math.isinf(end):
            raise ConfigError(
                f"partition window must have start < end < inf, "
                f"got [{start}, {end})"
            )
        for other_start, other_end, _ in self._partitions:
            if start < other_end and other_start < end:
                raise ConfigError(
                    f"partition window [{start}, {end}) overlaps "
                    f"[{other_start}, {other_end})"
                )
        self._partitions.append(
            (start, end, [list(group) for group in groups])
        )
        return self

    # -- message faults ----------------------------------------------------

    def drop_messages(
        self,
        start: float,
        end: float,
        predicate: MessagePredicate | None = None,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Drop matching messages in ``[start, end)`` (counted under
        ``net.dropped.fault``)."""
        self._rules.append(
            _MessageRule("drop", start, end, predicate, probability)
        )
        return self

    def delay_messages(
        self,
        start: float,
        end: float,
        predicate: MessagePredicate | None = None,
        extra: float = 0.05,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Add a latency spike of ``extra`` seconds to matching messages."""
        if extra < 0:
            raise ConfigError("delay spike must be non-negative")
        self._rules.append(
            _MessageRule(
                "delay", start, end, predicate, probability, extra=extra
            )
        )
        return self

    def duplicate_messages(
        self,
        start: float,
        end: float,
        predicate: MessagePredicate | None = None,
        copies: int = 1,
        probability: float = 1.0,
    ) -> "FaultPlan":
        """Deliver matching messages ``copies`` extra times."""
        if copies < 1:
            raise ConfigError("duplicate needs at least one copy")
        self._rules.append(
            _MessageRule(
                "duplicate", start, end, predicate, probability, copies=copies
            )
        )
        return self

    def reorder_once(
        self,
        start: float,
        end: float,
        predicate: MessagePredicate | None = None,
        hold: float = 0.05,
    ) -> "FaultPlan":
        """Hold back the *first* matching message in the window by
        ``hold`` seconds, letting later messages overtake it — a
        one-shot reordering."""
        if hold <= 0:
            raise ConfigError("reorder hold must be positive")
        self._rules.append(
            _MessageRule("reorder", start, end, predicate, extra=hold, once=True)
        )
        return self

    # -- application -------------------------------------------------------

    def apply(
        self,
        sim: Simulation,
        network: Network | None = None,
        nodes: Mapping[str, Node] | None = None,
    ) -> "FaultPlan":
        """Schedule the whole plan on ``sim``.

        ``nodes`` defaults to the network's registered nodes. A plan
        applies exactly once; reusing one across simulations would share
        the one-shot rule state.
        """
        if self._applied:
            raise ConfigError("a FaultPlan can only be applied once")
        if (self._crash_schedule.crashes or self._crash_schedule.recoveries
                or self._partitions) and network is None and nodes is None:
            raise ConfigError("this FaultPlan needs a network or nodes")
        self._applied = True
        if nodes is None and network is not None:
            nodes = {nid: network.node(nid) for nid in network.node_ids}
        if nodes is not None:
            self._crash_schedule.apply(sim, nodes)
        for start, end, groups in self._partitions:
            if network is None:
                raise ConfigError("partition windows need a network")
            sim.schedule_at(start, network.partition, groups)
            sim.schedule_at(end, network.heal)
        if self._rules and network is not None:
            network.add_interceptor(self._interceptor(sim))
        return self

    def apply_to_cluster(self, cluster) -> "FaultPlan":
        """Convenience for :class:`repro.consensus.ConsensusCluster`."""
        return self.apply(cluster.sim, cluster.network, cluster.replicas)

    def _interceptor(self, sim: Simulation):
        rules = self._rules

        def intercept(src: str, dst: str, message: object):
            now = sim.now
            for rule in rules:
                if not (rule.start <= now < rule.end):
                    continue
                if rule.once and rule.fired:
                    continue
                if not rule.predicate(src, dst, message):
                    continue
                if rule.probability < 1.0 and (
                    sim.rng.random() >= rule.probability
                ):
                    continue
                kind = rule.kind
                if kind == "drop":
                    return DROP
                if kind == "delay":
                    return Delay(rule.extra)
                if kind == "duplicate":
                    return Duplicate(rule.copies)
                rule.fired = True  # reorder: one shot
                return Delay(rule.extra)
            return None

        return intercept
