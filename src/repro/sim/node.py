"""Base class for simulated nodes (replicas, orderers, endorsers, clients)."""

from __future__ import annotations

from typing import Callable

from repro.sim.core import Simulation
from repro.sim.events import Event
from repro.sim.network import Network


class Timer:
    """A cancellable timer owned by a node.

    ``label`` names the timer for diagnostics (the liveness watchdog
    reports outstanding timers per node); it defaults to the callback's
    function name.
    """

    __slots__ = ("_event", "label")

    def __init__(self, event: Event, label: str | None = None) -> None:
        self._event = event
        self.label = label

    def cancel(self) -> None:
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def pending(self) -> bool:
        """Still queued: neither cancelled nor fired."""
        return self._event._queue is not None and not self._event.cancelled

    @property
    def fires_at(self) -> float:
        """Absolute virtual time this timer is due."""
        return self._event.time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if self.pending else "done"
        return f"Timer({self.label!r}, fires_at={self.fires_at!r}, {state})"


#: Prune the per-node timer list when it grows past this many entries
#: (fired/cancelled timers are dropped; live protocols keep a handful).
_TIMER_PRUNE_THRESHOLD = 32

#: TEST-ONLY: re-introduce the historical "ghost timer" crash-semantics
#: bug (crash neither cancels timers nor bumps the epoch, and recovery
#: re-arms nothing). The DST acceptance suite flips this to prove the
#: fuzzer finds and shrinks a real, previously-shipped bug; it must
#: never be set outside tests/capsule replays.
GHOST_TIMER_BUG = False


class Node:
    """A process on the simulated network.

    Subclasses implement :meth:`on_message`. A crashed node drops all
    incoming messages and its timer callbacks never fire (the crash
    failure model from paper section 2.2: "when a node fails it stops
    processing completely"). Crashing also *invalidates* every timer the
    node had outstanding — a restart must not resurrect pre-crash timers
    — via a per-node epoch counter: timers capture the epoch at arm time
    and refuse to fire in a later epoch. Subclasses re-arm whatever
    timers a fresh restart needs in :meth:`on_recover`.
    """

    def __init__(self, node_id: str, sim: Simulation, network: Network) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.crashed = False
        #: True while a restart is replaying its durable state: the
        #: process exists but is not serving yet (messages are dropped,
        #: no timers armed). See :meth:`recovery_delay`.
        self.recovering = False
        self._epoch = 0
        self._timers: list[Timer] = []
        network.join(self)

    # -- transport ---------------------------------------------------------

    def send(self, dst: str, message: object) -> None:
        if self.crashed:
            return
        self.network.send(self.node_id, dst, message)

    def broadcast(self, message: object, targets=None) -> None:
        if self.crashed:
            return
        self.network.broadcast(self.node_id, message, targets)

    def deliver(self, src: str, message: object) -> None:
        """Called by the network when a message arrives."""
        if self.crashed or self.recovering:
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: object) -> None:
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(
        self,
        delay: float,
        callback: Callable[[], None],
        label: str | None = None,
    ) -> Timer:
        """Run ``callback`` after ``delay`` unless cancelled or crashed.

        A timer armed before a crash never fires after recovery: the
        fire guard checks both the crashed flag and the arming epoch.
        """
        epoch = self._epoch

        def fire() -> None:
            if not self.crashed and self._epoch == epoch:
                callback()

        timer = Timer(
            self.sim.schedule(delay, fire),
            label=label or getattr(callback, "__name__", "timer"),
        )
        timers = self._timers
        timers.append(timer)
        if len(timers) > _TIMER_PRUNE_THRESHOLD:
            self._timers = [t for t in timers if t.pending]
        return timer

    def outstanding_timers(self) -> list[Timer]:
        """Timers armed but not yet fired or cancelled (diagnostics)."""
        self._timers = [t for t in self._timers if t.pending]
        return list(self._timers)

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        """Stop processing entirely (crash failure).

        Outstanding timers are cancelled and the epoch is bumped, so
        nothing armed before the crash can fire after :meth:`recover`.
        """
        self.crashed = True
        self.recovering = False  # a crash mid-recovery aborts the restart
        if GHOST_TIMER_BUG:
            return  # bug mode: pre-crash timers survive into recovery
        self._epoch += 1
        for timer in self._timers:
            timer.cancel()
        self._timers.clear()

    def recover(self) -> None:
        """Resume processing; protocol state is whatever the subclass kept.

        Calls :meth:`on_recover` so subclasses can re-arm the timers a
        restarted process needs (pre-crash timers are gone for good).

        When :meth:`recovery_delay` returns a positive duration —
        durable nodes model WAL replay this way — the restart is *not*
        instantaneous: the node enters the ``recovering`` state (alive
        but not serving; messages are dropped) and :meth:`on_recover`
        runs only once the modelled replay completes. Protocol timers
        are therefore re-armed after replay, never at the recover-event
        timestamp. A crash during the window aborts the restart (the
        epoch guard keeps the pending completion from firing).
        """
        if not self.crashed:
            return
        self.crashed = False
        if GHOST_TIMER_BUG:
            return  # bug mode: nothing re-armed, ghosts may still fire
        delay = self.recovery_delay()
        if delay <= 0.0:
            self.on_recover()
            return
        self.recovering = True
        epoch = self._epoch

        def finish_recovery() -> None:
            if self.crashed or self._epoch != epoch:
                return
            self.recovering = False
            self.on_recover()

        self.sim.schedule(delay, finish_recovery)

    def recovery_delay(self) -> float:
        """Hook: modelled restart work (e.g. WAL replay) in virtual
        seconds before the node re-joins. Default 0.0 — recovery
        completes at the recover event, preserving the historical
        semantics for purely in-memory nodes."""
        return 0.0

    def on_recover(self) -> None:
        """Hook: re-arm restart timers. Default is a no-op."""
