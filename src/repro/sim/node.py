"""Base class for simulated nodes (replicas, orderers, endorsers, clients)."""

from __future__ import annotations

from typing import Callable

from repro.sim.core import Simulation
from repro.sim.events import Event
from repro.sim.network import Network


class Timer:
    """A cancellable timer owned by a node."""

    def __init__(self, event: Event) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled


class Node:
    """A process on the simulated network.

    Subclasses implement :meth:`on_message`. A crashed node drops all
    incoming messages and its timer callbacks never fire (the crash
    failure model from paper section 2.2: "when a node fails it stops
    processing completely").
    """

    def __init__(self, node_id: str, sim: Simulation, network: Network) -> None:
        self.node_id = node_id
        self.sim = sim
        self.network = network
        self.crashed = False
        network.join(self)

    # -- transport ---------------------------------------------------------

    def send(self, dst: str, message: object) -> None:
        if self.crashed:
            return
        self.network.send(self.node_id, dst, message)

    def broadcast(self, message: object, targets=None) -> None:
        if self.crashed:
            return
        self.network.broadcast(self.node_id, message, targets)

    def deliver(self, src: str, message: object) -> None:
        """Called by the network when a message arrives."""
        if self.crashed:
            return
        self.on_message(src, message)

    def on_message(self, src: str, message: object) -> None:
        raise NotImplementedError

    # -- timers ------------------------------------------------------------

    def set_timer(self, delay: float, callback: Callable[[], None]) -> Timer:
        """Run ``callback`` after ``delay`` unless cancelled or crashed."""

        def fire() -> None:
            if not self.crashed:
                callback()

        return Timer(self.sim.schedule(delay, fire))

    # -- fault injection ---------------------------------------------------

    def crash(self) -> None:
        """Stop processing entirely (crash failure)."""
        self.crashed = True

    def recover(self) -> None:
        """Resume processing; protocol state is whatever the subclass kept."""
        self.crashed = False
