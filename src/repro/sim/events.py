"""The event heap at the heart of the simulator.

This is the hottest code in the repository — every message delivery,
timer, and block cut in all sixteen experiments passes through here —
so it trades a little abstraction for speed:

* Heap entries are plain ``(time, seq, event)`` tuples. ``seq`` is a
  per-queue insertion counter that is always unique, so heap ordering
  resolves on the first two tuple slots and never falls through to
  comparing :class:`Event` objects. Tuple comparison is a single C-level
  operation, where the previous ``@dataclass(order=True)`` event built
  two fresh tuples per comparison in Python.
* :class:`Event` is a ``__slots__`` class: no per-instance ``__dict__``
  to allocate on the schedule path.
* Cancellation stays lazy (cancelled entries are dropped when they
  surface at the heap top), but the queue tracks a live count so
  ``len(queue)`` and :meth:`Simulation.pending_events` are O(1) instead
  of an O(n) scan — and ``bool(queue)`` agrees with ``len(queue)``: a
  queue holding only cancelled events is both falsy and zero-length.
"""

from __future__ import annotations

import heapq
from typing import Callable

_NO_ARGS: tuple = ()


class Event:
    """A callback scheduled at a virtual time.

    Events order by ``(time, seq)``; ``seq`` is an insertion counter
    that breaks ties deterministically (first scheduled fires first),
    which is what makes same-seed runs replay identically. The callback
    is invoked as ``callback(*args)`` — carrying arguments on the event
    lets hot callers (the network's delivery path) schedule a shared
    bound method instead of allocating a fresh closure per message.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled", "_queue")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[..., None],
        args: tuple = _NO_ARGS,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False
        self._queue: EventQueue | None = None

    def cancel(self) -> None:
        """Mark the event dead; idempotent, safe after it has fired."""
        if not self.cancelled:
            self.cancelled = True
            queue = self._queue
            if queue is not None:
                # Still sitting in a heap: keep the live count exact.
                queue._live -= 1
                self._queue = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "live"
        return f"Event(time={self.time!r}, seq={self.seq}, {state})"


class EventQueue:
    """A min-heap of events with lazy cancellation and an O(1) length.

    Invariant: ``_live`` counts entries in ``_heap`` that are neither
    cancelled nor popped. ``push`` increments it; ``pop`` of a live
    event and :meth:`Event.cancel` of a still-queued event decrement it;
    pruning already-cancelled entries leaves it untouched.
    """

    __slots__ = ("_heap", "_seq", "_live")

    def __init__(self) -> None:
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        self._live = 0

    def push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple = _NO_ARGS,
    ) -> Event:
        seq = self._seq
        self._seq = seq + 1
        event = Event(time, seq, callback, args)
        event._queue = self
        heapq.heappush(self._heap, (time, seq, event))
        self._live += 1
        return event

    def pop(self) -> Event | None:
        """Next non-cancelled event, or None when the queue is drained."""
        heap = self._heap
        while heap:
            event = heapq.heappop(heap)[2]
            if not event.cancelled:
                self._live -= 1
                event._queue = None
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
        if not heap:
            return None
        return heap[0][0]

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0
