"""The event heap at the heart of the simulator."""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class Event:
    """A callback scheduled at a virtual time.

    Events compare by ``(time, seq)``; ``seq`` is a global insertion
    counter that breaks ties deterministically (first scheduled fires
    first), which is what makes same-seed runs replay identically.
    """

    time: float
    seq: int
    callback: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        self.cancelled = True


class EventQueue:
    """A min-heap of events with lazy cancellation."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._counter = itertools.count()

    def push(self, time: float, callback: Callable[[], None]) -> Event:
        event = Event(time=time, seq=next(self._counter), callback=callback)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Next non-cancelled event, or None when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Time of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        if not self._heap:
            return None
        return self._heap[0].time

    def __len__(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
