"""Deterministic discrete-event simulation substrate.

Every protocol in this library runs as message-passing state machines on
top of this kernel: a virtual clock, an event heap, a network with
configurable latency (LAN or WAN region matrices), message loss and
partitions, and nodes with timers plus crash/Byzantine fault injection.

Determinism is a design requirement (DESIGN.md): given the same seed,
every experiment replays event-for-event, which is what makes the
benchmark tables in EXPERIMENTS.md reproducible.
"""

from repro.sim.core import Simulation
from repro.sim.events import Event, EventQueue
from repro.sim.faults import CrashSchedule, FaultPlan, match
from repro.sim.network import (
    DROP,
    Delay,
    Duplicate,
    LanLatency,
    LatencyModel,
    Network,
    WanLatency,
)
from repro.sim.node import Node, Timer
from repro.sim.trace import NetworkTracer, TraceEvent
from repro.sim.watchdog import LivenessWatchdog, StallDiagnostic, TimerInfo

__all__ = [
    "DROP",
    "CrashSchedule",
    "Delay",
    "Duplicate",
    "Event",
    "EventQueue",
    "FaultPlan",
    "LanLatency",
    "LatencyModel",
    "LivenessWatchdog",
    "Network",
    "NetworkTracer",
    "Node",
    "Simulation",
    "StallDiagnostic",
    "Timer",
    "TimerInfo",
    "TraceEvent",
    "WanLatency",
    "match",
]
