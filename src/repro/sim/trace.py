"""Network tracing: see exactly what a protocol says on the wire.

A :class:`NetworkTracer` attached to a network records every send with
its virtual timestamp, endpoints, and message type. Protocol debugging,
the message-complexity numbers in EXPERIMENTS.md, and several tests are
built on these traces — e.g. asserting that a PBFT decision really is
pre-prepare → prepare → commit and nothing else.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

from repro.sim.network import Network, message_size


@dataclass(frozen=True)
class TraceEvent:
    """One message on the wire."""

    time: float
    src: str
    dst: str
    message_type: str
    size_bytes: int


class NetworkTracer:
    """Records every message a network carries.

    Attach before the run::

        tracer = NetworkTracer.attach(cluster.network)
        ... run ...
        tracer.summary()   # {"PrePrepare": 3, "Prepare": 12, ...}

    ``capacity`` bounds the record to the most recent N events (a ring
    buffer) — what the liveness watchdog uses to keep "the last N
    delivered messages" around on long fault runs without unbounded
    memory.
    """

    def __init__(self, capacity: int | None = None) -> None:
        self.events: "list[TraceEvent] | deque[TraceEvent]" = (
            deque(maxlen=capacity) if capacity else []
        )

    @classmethod
    def attach(cls, network: Network, capacity: int | None = None) -> "NetworkTracer":
        tracer = cls(capacity=capacity)
        events = tracer.events
        original_send = network.send
        original_broadcast = network.broadcast

        def traced_send(src: str, dst: str, message: object) -> None:
            events.append(
                TraceEvent(
                    time=network.sim.now,
                    src=src,
                    dst=dst,
                    message_type=type(message).__name__,
                    size_bytes=message_size(message),
                )
            )
            original_send(src, dst, message)

        # broadcast no longer funnels through send (it batches the
        # per-target work), so it is traced separately: one event per
        # target, exactly as the equivalent serial sends would record.
        def traced_broadcast(src: str, message: object, targets=None) -> None:
            resolved = (
                [nid for nid in network.node_ids if nid != src]
                if targets is None
                else list(targets)
            )
            now = network.sim.now
            message_type = type(message).__name__
            size = message_size(message)
            for dst in resolved:
                events.append(
                    TraceEvent(
                        time=now,
                        src=src,
                        dst=dst,
                        message_type=message_type,
                        size_bytes=size,
                    )
                )
            original_broadcast(src, message, resolved)

        network.send = traced_send  # type: ignore[method-assign]
        network.broadcast = traced_broadcast  # type: ignore[method-assign]
        return tracer

    def __len__(self) -> int:
        return len(self.events)

    def summary(self) -> dict[str, int]:
        """Message counts by type."""
        return dict(Counter(event.message_type for event in self.events))

    def bytes_by_type(self) -> dict[str, int]:
        totals: Counter[str] = Counter()
        for event in self.events:
            totals[event.message_type] += event.size_bytes
        return dict(totals)

    def between(self, start: float, end: float) -> list[TraceEvent]:
        """Events in the half-open virtual-time window [start, end)."""
        return [e for e in self.events if start <= e.time < end]

    def involving(self, node_id: str) -> list[TraceEvent]:
        return [
            e for e in self.events if node_id in (e.src, e.dst)
        ]

    def of_type(self, *message_types: str) -> list[TraceEvent]:
        wanted = set(message_types)
        return [e for e in self.events if e.message_type in wanted]

    def tail(self, n: int = 20) -> list[TraceEvent]:
        """The most recent ``n`` events, oldest first."""
        if n <= 0:
            return []
        events = self.events
        if isinstance(events, deque):
            events = list(events)
        return events[-n:]

    def timeline(self, limit: int = 50) -> str:
        """Human-readable trace (first ``limit`` events)."""
        events = list(self.events) if isinstance(self.events, deque) else self.events
        lines = [
            f"{e.time:9.4f}  {e.src:>12s} -> {e.dst:<12s} {e.message_type}"
            for e in events[:limit]
        ]
        if len(events) > limit:
            lines.append(f"... {len(events) - limit} more")
        return "\n".join(lines)

    def fan_out(self) -> dict[str, int]:
        """Messages sent per node — who talks the most."""
        return dict(Counter(event.src for event in self.events))
