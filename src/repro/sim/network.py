"""Simulated network: latency models, loss, partitions, traffic accounting.

The tutorial's scalability section (2.3.4) hinges on network geometry —
ResilientDB's topology-aware clusters, Saguaro's edge/fog/cloud
hierarchy — so the network distinguishes LAN and WAN links through
pluggable latency models and a per-node region map.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Callable, Iterable

from repro.common.errors import ConfigError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.sim.core import Simulation
    from repro.sim.node import Node

#: Modelled wire size for a message that does not say otherwise.
DEFAULT_MESSAGE_BYTES = 256

#: Interceptor verdict: swallow the message (counted under
#: ``net.dropped.fault``).
DROP = "drop"


class Delay:
    """Interceptor verdict: deliver, but ``extra`` seconds later.

    Models a latency spike on one link without touching the latency
    model; multiple matching interceptors accumulate their extras.
    """

    __slots__ = ("extra",)

    def __init__(self, extra: float) -> None:
        if extra < 0:
            raise ConfigError("fault delay must be non-negative")
        self.extra = extra


class Duplicate:
    """Interceptor verdict: deliver normally *and* schedule ``copies``
    extra deliveries, each with its own latency sample (so the copies
    interleave with other traffic exactly as a duplicating network
    path would)."""

    __slots__ = ("copies",)

    def __init__(self, copies: int = 1) -> None:
        if copies < 1:
            raise ConfigError("duplicate needs at least one copy")
        self.copies = copies


#: An interceptor sees every (src, dst, message) about to be scheduled
#: and returns None (no opinion), DROP, a Delay, or a Duplicate.
Interceptor = Callable[[str, str, object], object]


def message_size(message: object) -> int:
    """Modelled wire size of a message.

    Messages may expose ``size_bytes`` (an int attribute or property);
    anything else — including ``bool``, which is an ``int`` subclass and
    would otherwise charge ``True`` as a 1-byte wire size — is charged
    :data:`DEFAULT_MESSAGE_BYTES`.
    """
    size = getattr(message, "size_bytes", None)
    if type(size) is int and size > 0:
        return size
    return DEFAULT_MESSAGE_BYTES


class LatencyModel:
    """Interface: one-way delay between two nodes."""

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        raise NotImplementedError


class LanLatency(LatencyModel):
    """Uniform base-plus-jitter delay, the single-datacenter case."""

    def __init__(self, base: float = 0.001, jitter: float = 0.0005) -> None:
        if base < 0 or jitter < 0:
            raise ConfigError("latency parameters must be non-negative")
        self.base = base
        self.jitter = jitter

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        return self.base + rng.uniform(0.0, self.jitter)


class WanLatency(LatencyModel):
    """Region-matrix delay: LAN within a region, WAN across regions.

    ``region_of`` maps node id to a region name; ``matrix`` gives one-way
    delay between region pairs (symmetric — the reverse pair is looked
    up automatically). Unknown nodes fall back to the LAN model.
    """

    def __init__(
        self,
        region_of: dict[str, str],
        matrix: dict[tuple[str, str], float],
        lan: LanLatency | None = None,
        jitter_fraction: float = 0.1,
    ) -> None:
        self.region_of = dict(region_of)
        self.matrix = dict(matrix)
        self.lan = lan or LanLatency()
        self.jitter_fraction = jitter_fraction

    def assign(self, node_id: str, region: str) -> None:
        self.region_of[node_id] = region

    def sample(self, rng: random.Random, src: str, dst: str) -> float:
        src_region = self.region_of.get(src)
        dst_region = self.region_of.get(dst)
        if src_region is None or dst_region is None or src_region == dst_region:
            return self.lan.sample(rng, src, dst)
        base = self.matrix.get((src_region, dst_region))
        if base is None:
            base = self.matrix.get((dst_region, src_region))
        if base is None:
            raise ConfigError(
                f"no WAN latency configured for {src_region}<->{dst_region}"
            )
        return base * (1.0 + rng.uniform(0.0, self.jitter_fraction))


class Network:
    """Message transport between registered nodes.

    Supports probabilistic drops and named partitions (messages between
    different partition groups are silently dropped, as in a real
    network split). All traffic is accounted in the simulation's
    metrics registry under ``net.messages`` and ``net.bytes``.
    """

    def __init__(
        self,
        sim: "Simulation",
        latency: LatencyModel | None = None,
        drop_probability: float = 0.0,
    ) -> None:
        if not 0.0 <= drop_probability < 1.0:
            raise ConfigError("drop_probability must be in [0, 1)")
        self.sim = sim
        self.latency = latency or LanLatency()
        self.drop_probability = drop_probability
        self._nodes: dict[str, "Node"] = {}
        # Bound delivery methods, cached at join time: the send hot path
        # schedules these directly instead of allocating a closure per
        # message (``deliver`` itself checks the crashed flag on fire).
        self._delivers: dict[str, Callable[[str, object], None]] = {}
        self._partition_of: dict[str, int] = {}
        self._interceptors: list[Interceptor] = []

    def join(self, node: "Node") -> None:
        if node.node_id in self._nodes:
            raise ConfigError(f"duplicate node id on network: {node.node_id}")
        self._nodes[node.node_id] = node
        self._delivers[node.node_id] = node.deliver

    def node(self, node_id: str) -> "Node":
        try:
            return self._nodes[node_id]
        except KeyError:
            raise ConfigError(f"unknown node: {node_id}") from None

    @property
    def node_ids(self) -> list[str]:
        return list(self._nodes)

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Install a message-fault hook on the send path.

        Interceptors run in installation order on every message after
        the partition check and before probabilistic loss. They are the
        mechanism behind :class:`repro.sim.faults.FaultPlan`'s targeted
        drop/delay/duplicate/reorder rules; any randomness they need
        must come from ``sim.rng`` to keep same-seed runs identical.
        """
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        self._interceptors.remove(interceptor)

    def _intercept(
        self,
        src: str,
        dst: str,
        message: object,
        deliver: Callable[[str, object], None],
    ) -> float | None:
        """Run interceptors; returns the accumulated extra delay, or
        None when a DROP verdict swallowed the message. Duplicate
        verdicts schedule their extra copies here."""
        sim = self.sim
        extra = 0.0
        for interceptor in self._interceptors:
            action = interceptor(src, dst, message)
            if action is None:
                continue
            if action is DROP:
                sim.metrics.incr("net.dropped.fault")
                return None
            if type(action) is Delay:
                sim.metrics.incr("net.delayed.fault")
                extra += action.extra
            elif type(action) is Duplicate:
                rng = sim.rng
                sim.metrics.incr("net.duplicated.fault", action.copies)
                for _ in range(action.copies):
                    sim.schedule(
                        self.latency.sample(rng, src, dst), deliver, src, message
                    )
            else:
                raise ConfigError(f"unknown fault action: {action!r}")
        return extra

    def partition(self, groups: Iterable[Iterable[str]]) -> None:
        """Split the network: traffic only flows within one group.

        Every registered node must appear in exactly one group — a node
        silently omitted from all groups would land in an implicit
        "unlisted" group that can still talk to other omitted nodes,
        which is never what an experiment means. Unknown or repeated
        names are rejected for the same reason.
        """
        partition_of: dict[str, int] = {}
        for index, group in enumerate(groups):
            for node_id in group:
                if node_id not in self._nodes:
                    raise ConfigError(
                        f"partition names unregistered node: {node_id}"
                    )
                if node_id in partition_of:
                    raise ConfigError(
                        f"node {node_id} appears in more than one "
                        "partition group"
                    )
                partition_of[node_id] = index
        missing = [nid for nid in self._nodes if nid not in partition_of]
        if missing:
            raise ConfigError(
                "partition omits registered nodes "
                f"{missing}: every node must be in exactly one group"
            )
        self._partition_of.clear()
        self._partition_of.update(partition_of)

    def heal(self) -> None:
        """Remove any partition."""
        self._partition_of.clear()

    def _partitioned(self, src: str, dst: str) -> bool:
        if not self._partition_of:
            return False
        return self._partition_of.get(src) != self._partition_of.get(dst)

    def send(self, src: str, dst: str, message: object) -> None:
        """Deliver ``message`` from ``src`` to ``dst`` after sampled latency.

        Sends to unknown/crashed destinations and across partitions are
        dropped silently — exactly what a sender observes in a real
        asynchronous network.
        """
        sim = self.sim
        metrics = sim.metrics
        metrics.incr("net.messages")
        metrics.incr("net.bytes", message_size(message))
        deliver = self._delivers.get(dst)
        if deliver is None:
            return
        if self._partition_of and self._partitioned(src, dst):
            metrics.incr("net.dropped.partition")
            return
        extra = 0.0
        if self._interceptors:
            verdict = self._intercept(src, dst, message, deliver)
            if verdict is None:
                return
            extra = verdict
        rng = sim.rng
        if self.drop_probability and rng.random() < self.drop_probability:
            metrics.incr("net.dropped.loss")
            return
        sim.schedule(
            extra + self.latency.sample(rng, src, dst), deliver, src, message
        )

    def broadcast(
        self, src: str, message: object, targets: Iterable[str] | None = None
    ) -> None:
        """Send ``message`` to every target (default: all other nodes).

        Equivalent to one :meth:`send` per target but a single pass:
        the wire size is computed once and the traffic counters are
        charged in one batch. Per-target RNG draws (loss, latency)
        happen in the same order as serial sends, so same-seed runs are
        bit-for-bit identical either way.
        """
        if targets is None:
            targets = [nid for nid in self._nodes if nid != src]
        elif not isinstance(targets, (list, tuple)):
            targets = list(targets)
        sim = self.sim
        metrics = sim.metrics
        n = len(targets)
        metrics.incr_many(
            (("net.messages", n), ("net.bytes", n * message_size(message)))
        )
        delivers = self._delivers
        partition_of = self._partition_of
        interceptors = self._interceptors
        drop_probability = self.drop_probability
        rng = sim.rng
        random_ = rng.random
        sample = self.latency.sample
        # Push delivery events straight onto the queue: latency samples
        # are non-negative by the LatencyModel contract, so the
        # schedule() guard is redundant here, and one (src, message)
        # args tuple is shared by every delivery event of the round.
        push = sim._queue.push
        now = sim._now
        args = (src, message)
        for dst in targets:
            deliver = delivers.get(dst)
            if deliver is None:
                continue
            if partition_of and partition_of.get(src) != partition_of.get(dst):
                metrics.incr("net.dropped.partition")
                continue
            extra = 0.0
            if interceptors:
                # Same per-destination order as serial sends, so the
                # RNG draw sequence (and thus the run) is identical.
                verdict = self._intercept(src, dst, message, deliver)
                if verdict is None:
                    continue
                extra = verdict
            if drop_probability and random_() < drop_probability:
                metrics.incr("net.dropped.loss")
                continue
            push(now + extra + sample(rng, src, dst), deliver, args)
