"""Liveness watchdog: turn silent stalls into structured diagnostics.

A simulation that stops making progress normally just drains its event
queue (or spins on retry timers until a timeout) and leaves the caller
staring at an empty result. The watchdog observes a set of nodes through
a caller-supplied progress function and, when progress freezes, produces
a :class:`StallDiagnostic` naming the laggard nodes, their outstanding
timers, and the last messages seen on the wire (via an attached
:class:`~repro.sim.trace.NetworkTracer`).

The watchdog is driven from *outside* the simulation (callers invoke
:meth:`LivenessWatchdog.observe` between run slices), so attaching one
adds no events to the queue and leaves same-seed runs bit-for-bit
identical to unwatched runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.sim.node import Node
from repro.sim.trace import NetworkTracer, TraceEvent


@dataclass(frozen=True)
class TimerInfo:
    """One outstanding timer, for diagnostics."""

    node_id: str
    label: str | None
    fires_at: float


@dataclass
class StallDiagnostic:
    """Structured description of a liveness failure.

    ``reason`` is ``"no-progress"`` (nodes alive but frozen for longer
    than the stall threshold), ``"queue-exhausted"`` (the event queue
    drained before the goal was met — nothing left that could ever make
    progress), or ``"timeout"`` (the run deadline passed with the goal
    unmet before the stall threshold tripped).
    """

    time: float
    reason: str
    stalled_nodes: list[str]
    crashed_nodes: list[str]
    progress: dict[str, int]
    pending_timers: list[TimerInfo]
    recent_messages: list[TraceEvent] = field(default_factory=list)

    def summary(self) -> str:
        """Multi-line human-readable rendering."""
        lines = [
            f"liveness failure ({self.reason}) at t={self.time:.3f}",
            f"  stalled nodes: {', '.join(self.stalled_nodes) or '-'}",
            f"  crashed nodes: {', '.join(self.crashed_nodes) or '-'}",
            "  progress: "
            + ", ".join(f"{n}={c}" for n, c in sorted(self.progress.items())),
        ]
        if self.pending_timers:
            lines.append("  outstanding timers:")
            for info in self.pending_timers:
                lines.append(
                    f"    {info.node_id}: {info.label} @ {info.fires_at:.3f}"
                )
        else:
            lines.append("  outstanding timers: none")
        if self.recent_messages:
            lines.append("  last messages on the wire:")
            for e in self.recent_messages:
                lines.append(
                    f"    {e.time:9.4f}  {e.src} -> {e.dst}  {e.message_type}"
                )
        return "\n".join(lines)


class LivenessWatchdog:
    """Detects frozen progress across a set of simulated nodes.

    ``progress_of`` maps a node to a monotonically non-decreasing
    counter (for consensus replicas: the decided-log length). Call
    :meth:`observe` periodically with the current virtual time; when no
    node's counter has advanced for ``stall_after`` virtual seconds, it
    returns a :class:`StallDiagnostic` (then resets, so a genuinely dead
    run reports once per stall window rather than every slice).
    """

    def __init__(
        self,
        nodes: Mapping[str, Node],
        progress_of: Callable[[Node], int],
        stall_after: float = 5.0,
        tracer: NetworkTracer | None = None,
        recent: int = 10,
    ) -> None:
        self.nodes = dict(nodes)
        self.progress_of = progress_of
        self.stall_after = stall_after
        self.tracer = tracer
        self.recent = recent
        self._last_progress: dict[str, int] | None = None
        self._last_change = 0.0
        self.diagnostics: list[StallDiagnostic] = []

    def _snapshot(self) -> dict[str, int]:
        return {
            node_id: self.progress_of(node)
            for node_id, node in self.nodes.items()
        }

    def observe(self, now: float) -> StallDiagnostic | None:
        """Record current progress; report a stall when frozen too long."""
        snapshot = self._snapshot()
        if snapshot != self._last_progress:
            self._last_progress = snapshot
            self._last_change = now
            return None
        if now - self._last_change < self.stall_after:
            return None
        self._last_change = now  # report once per stall window
        return self._diagnose("no-progress", now, snapshot)

    def queue_exhausted(self, now: float) -> StallDiagnostic:
        """Build the diagnostic for an event queue that drained before
        the goal was met (call from the run driver)."""
        return self._diagnose("queue-exhausted", now, self._snapshot())

    def timed_out(self, now: float) -> StallDiagnostic:
        """Build the diagnostic for a run that hit its deadline with the
        goal unmet but without a tripped stall window (call from the
        run driver so timeouts are never silent)."""
        return self._diagnose("timeout", now, self._snapshot())

    def _diagnose(
        self, reason: str, now: float, progress: dict[str, int]
    ) -> StallDiagnostic:
        crashed = sorted(
            nid for nid, node in self.nodes.items() if node.crashed
        )
        live = {
            nid: node for nid, node in self.nodes.items() if not node.crashed
        }
        # The laggards: live nodes at the minimum progress count — the
        # nodes the run is actually waiting on.
        floor = min(
            (progress[nid] for nid in live), default=0
        )
        stalled = sorted(nid for nid in live if progress[nid] == floor)
        timers = [
            TimerInfo(node_id=nid, label=t.label, fires_at=t.fires_at)
            for nid in stalled
            for t in live[nid].outstanding_timers()
        ]
        diagnostic = StallDiagnostic(
            time=now,
            reason=reason,
            stalled_nodes=stalled,
            crashed_nodes=crashed,
            progress=progress,
            pending_timers=timers,
            recent_messages=(
                self.tracer.tail(self.recent) if self.tracer is not None else []
            ),
        )
        self.diagnostics.append(diagnostic)
        return diagnostic
