"""The standard YCSB workload profiles as named presets.

The Fabric-family papers the tutorial surveys (FastFabric, Fabric++,
FabricSharp) all evaluate on YCSB-style mixes; these presets pin the
canonical profiles onto :class:`~repro.workloads.kv.KvWorkload` so a
benchmark can say ``ycsb("a", theta=0.9)`` and mean the same thing the
literature does.

=======  =======================  ======================
profile  mix                      canonical description
=======  =======================  ======================
a        50% read / 50% update    update heavy
b        95% read / 5% update     read mostly
c        100% read                read only
f        50% read / 50% RMW       read-modify-write
=======  =======================  ======================

(Profiles d and e involve inserts-with-recency and scans, which a plain
key-value contract model does not distinguish; they are intentionally
omitted rather than approximated silently.)
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.workloads.kv import KvWorkload

#: profile -> (read_fraction, rmw_fraction-among-writes)
_PROFILES = {
    "a": (0.50, 0.0),  # updates are blind writes
    "b": (0.95, 0.0),
    "c": (1.00, 0.0),
    "f": (0.50, 1.0),  # all writes are read-modify-writes
}


def ycsb(
    profile: str,
    n_keys: int = 10_000,
    theta: float = 0.99,
    seed: int = 0,
) -> KvWorkload:
    """A :class:`KvWorkload` configured as YCSB profile ``profile``.

    ``theta`` defaults to YCSB's canonical Zipfian constant 0.99.
    """
    try:
        read_fraction, rmw_fraction = _PROFILES[profile.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown YCSB profile {profile!r}; choose from "
            f"{sorted(_PROFILES)} (d/e need scans, deliberately unsupported)"
        ) from None
    return KvWorkload(
        n_keys=n_keys,
        theta=theta,
        read_fraction=read_fraction,
        rmw_fraction=rmw_fraction,
        seed=seed,
    )


def profiles() -> list[str]:
    """The supported profile names."""
    return sorted(_PROFILES)
