"""Multi-platform crowdworking workload (paper sections 2.1.3 / 2.3.2).

Workers contribute hours to tasks on several platforms. The regulatory
constraints the paper names — FLSA's 40-hour week and California
Prop 22's 25-hour healthcare threshold — are *global across platforms*:
no single platform can verify them alone, which is exactly the
verifiability problem Separ and the ZKP systems solve (experiment E5).

The generator emits work claims ``(worker, platform, task, hours)``,
with a tunable share of workers active on multiple platforms and a
tunable pressure on the weekly cap.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigError


#: FLSA: maximum work hours per worker per week.
FLSA_WEEKLY_CAP = 40
#: California Prop 22: healthcare subsidy threshold (hours/week).
PROP22_HEALTHCARE_THRESHOLD = 25


@dataclass(frozen=True)
class WorkClaim:
    """One unit of crowdwork: a worker books hours on a platform task."""

    worker: str
    platform: str
    task: str
    hours: int
    week: int = 0


@dataclass
class CrowdworkWorkload:
    """Stream of work claims across platforms.

    ``multi_platform_fraction`` is the share of workers who work on every
    platform (the Uber-and-Lyft drivers of the paper's example);
    remaining workers stick to a home platform. ``pressure`` scales how
    close the average worker's weekly demand comes to the FLSA cap —
    above 1.0 the workload *attempts* violations, which the
    verifiability layer must reject.
    """

    platforms: int = 3
    workers: int = 50
    tasks_per_platform: int = 20
    multi_platform_fraction: float = 0.3
    pressure: float = 0.8
    mean_claim_hours: int = 4
    seed: int = 0

    def __post_init__(self) -> None:
        if self.platforms < 1 or self.workers < 1:
            raise ConfigError("need at least one platform and one worker")
        if self.pressure <= 0:
            raise ConfigError("pressure must be positive")
        self._rng = random.Random(self.seed)
        self._multi = {
            f"w{i}"
            for i in range(self.workers)
            if self._rng.random() < self.multi_platform_fraction
        }
        self._home = {
            f"w{i}": f"p{self._rng.randrange(self.platforms)}"
            for i in range(self.workers)
        }

    @property
    def platform_ids(self) -> list[str]:
        return [f"p{i}" for i in range(self.platforms)]

    @property
    def worker_ids(self) -> list[str]:
        return [f"w{i}" for i in range(self.workers)]

    def is_multi_platform(self, worker: str) -> bool:
        return worker in self._multi

    def next_claim(self, week: int = 0) -> WorkClaim:
        worker = f"w{self._rng.randrange(self.workers)}"
        if worker in self._multi:
            platform = f"p{self._rng.randrange(self.platforms)}"
        else:
            platform = self._home[worker]
        task = f"{platform}-t{self._rng.randrange(self.tasks_per_platform)}"
        hours = max(1, round(self._rng.gauss(self.mean_claim_hours, 1.5)))
        return WorkClaim(
            worker=worker, platform=platform, task=task, hours=hours, week=week
        )

    def generate_week(self, week: int = 0) -> list[WorkClaim]:
        """Roughly ``pressure * cap`` hours of demand per worker."""
        target_total = int(
            self.workers * FLSA_WEEKLY_CAP * self.pressure
        )
        claims: list[WorkClaim] = []
        booked = 0
        while booked < target_total:
            claim = self.next_claim(week)
            claims.append(claim)
            booked += claim.hours
        return claims
