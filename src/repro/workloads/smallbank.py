"""SmallBank: the banking workload behind the scalability experiments.

SmallBank is the standard OLTP benchmark sharded-blockchain papers
(AHL, SharPer) evaluate on: each customer has a checking and a savings
account, and six transaction profiles mix single-customer updates with
two-customer payments. Two-customer payments are what become
*cross-shard* transactions once accounts are partitioned (experiment
E6) — the generator therefore controls the probability that the two
customers live in different shards.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.types import Operation, OpType, Transaction, TxType
from repro.execution.contracts import ContractContext, ContractRegistry


def _checking(customer: str) -> str:
    return f"checking:{customer}"


def _savings(customer: str) -> str:
    return f"savings:{customer}"


def _transact_savings(ctx: ContractContext, customer: str, amount: int) -> int:
    balance = ctx.get(_savings(customer), 0) + amount
    ctx.require(balance >= 0, f"savings of {customer} would go negative")
    ctx.put(_savings(customer), balance)
    return balance


def _deposit_checking(ctx: ContractContext, customer: str, amount: int) -> int:
    balance = ctx.get(_checking(customer), 0) + amount
    ctx.put(_checking(customer), balance)
    return balance


def _send_payment(ctx: ContractContext, src: str, dst: str, amount: int) -> int:
    balance = ctx.get(_checking(src), 0)
    ctx.require(balance >= amount, f"checking of {src} too low")
    ctx.put(_checking(src), balance - amount)
    ctx.put(_checking(dst), ctx.get(_checking(dst), 0) + amount)
    return amount


def _write_check(ctx: ContractContext, customer: str, amount: int) -> int:
    total = ctx.get(_checking(customer), 0) + ctx.get(_savings(customer), 0)
    ctx.require(total >= amount, f"total balance of {customer} too low")
    ctx.put(_checking(customer), ctx.get(_checking(customer), 0) - amount)
    return amount


def _amalgamate(ctx: ContractContext, customer: str) -> int:
    total = ctx.get(_checking(customer), 0) + ctx.get(_savings(customer), 0)
    ctx.put(_savings(customer), 0)
    ctx.put(_checking(customer), total)
    return total


def _balance(ctx: ContractContext, customer: str) -> int:
    return ctx.get(_checking(customer), 0) + ctx.get(_savings(customer), 0)


def smallbank_registry() -> ContractRegistry:
    """A contract registry with the six SmallBank profiles."""
    registry = ContractRegistry()
    registry.register("transact_savings", _transact_savings)
    registry.register("deposit_checking", _deposit_checking)
    registry.register("send_payment", _send_payment)
    registry.register("write_check", _write_check)
    registry.register("amalgamate", _amalgamate)
    registry.register("balance", _balance)
    return registry


@dataclass
class SmallBankWorkload:
    """SmallBank transaction stream over ``n_customers`` customers.

    ``cross_shard_fraction`` only matters when ``shard_of`` is provided:
    it is the probability that a ``send_payment`` picks its two customers
    from *different* shards (making the transaction cross-shard).
    """

    n_customers: int = 1000
    payment_fraction: float = 0.4
    query_fraction: float = 0.15
    cross_shard_fraction: float = 0.1
    n_shards: int = 1
    initial_balance: int = 10_000
    seed: int = 0

    def __post_init__(self) -> None:
        if self.n_customers < 2:
            raise ConfigError("SmallBank needs at least two customers")
        if self.n_shards < 1:
            raise ConfigError("n_shards must be >= 1")
        self._rng = random.Random(self.seed)

    # -- sharding helpers ----------------------------------------------------

    def shard_of(self, customer: str) -> str:
        """Deterministic customer -> shard assignment (range partitioned)."""
        index = int(customer.split("c")[1])
        return f"shard{index * self.n_shards // self.n_customers}"

    def _customer(self, shard: str | None = None) -> str:
        if shard is None:
            return f"c{self._rng.randrange(self.n_customers)}"
        per_shard = self.n_customers // self.n_shards
        shard_index = int(shard.removeprefix("shard"))
        lo = shard_index * per_shard
        return f"c{lo + self._rng.randrange(per_shard)}"

    # -- generation --------------------------------------------------------------

    def setup_transactions(self) -> list[Transaction]:
        """Deposits that give every customer an initial balance."""
        txs = []
        for i in range(self.n_customers):
            customer = f"c{i}"
            txs.append(self._single_tx(
                "deposit_checking", (customer, self.initial_balance), customer))
        return txs

    def _single_tx(self, contract: str, args: tuple, customer: str) -> Transaction:
        ops = _DECLARED_OPS[contract](*args)
        shard = self.shard_of(customer)
        return Transaction.create(
            contract,
            args,
            tx_type=TxType.INTRA_SHARD if self.n_shards > 1 else TxType.PUBLIC,
            declared_ops=ops,
            involved={shard} if self.n_shards > 1 else frozenset(),
        )

    def next_tx(self) -> Transaction:
        roll = self._rng.random()
        if roll < self.query_fraction:
            customer = self._customer()
            return self._single_tx("balance", (customer,), customer)
        if roll < self.query_fraction + self.payment_fraction:
            return self._payment_tx()
        customer = self._customer()
        contract = self._rng.choice(
            ["transact_savings", "deposit_checking", "write_check", "amalgamate"]
        )
        if contract == "amalgamate":
            return self._single_tx(contract, (customer,), customer)
        amount = self._rng.randrange(1, 100)
        return self._single_tx(contract, (customer, amount), customer)

    def _payment_tx(self) -> Transaction:
        src = self._customer()
        cross = (
            self.n_shards > 1
            and self._rng.random() < self.cross_shard_fraction
        )
        if cross:
            other_shards = [
                f"shard{i}"
                for i in range(self.n_shards)
                if f"shard{i}" != self.shard_of(src)
            ]
            dst = self._customer(self._rng.choice(other_shards))
        else:
            dst = self._customer(self.shard_of(src) if self.n_shards > 1 else None)
            while dst == src:
                dst = self._customer(
                    self.shard_of(src) if self.n_shards > 1 else None
                )
        amount = self._rng.randrange(1, 50)
        involved = (
            {self.shard_of(src), self.shard_of(dst)}
            if self.n_shards > 1
            else frozenset()
        )
        tx_type = TxType.PUBLIC
        if self.n_shards > 1:
            tx_type = (
                TxType.CROSS_SHARD if len(involved) > 1 else TxType.INTRA_SHARD
            )
        return Transaction.create(
            "send_payment",
            (src, dst, amount),
            tx_type=tx_type,
            declared_ops=_DECLARED_OPS["send_payment"](src, dst, amount),
            involved=involved,
        )

    def generate(self, count: int) -> list[Transaction]:
        return [self.next_tx() for _ in range(count)]


def _ops_transact_savings(customer: str, amount: int) -> tuple[Operation, ...]:
    return (Operation(OpType.READ_WRITE, _savings(customer)),)


def _ops_deposit_checking(customer: str, amount: int) -> tuple[Operation, ...]:
    return (Operation(OpType.READ_WRITE, _checking(customer)),)


def _ops_send_payment(src: str, dst: str, amount: int) -> tuple[Operation, ...]:
    return (
        Operation(OpType.READ_WRITE, _checking(src)),
        Operation(OpType.READ_WRITE, _checking(dst)),
    )


def _ops_write_check(customer: str, amount: int) -> tuple[Operation, ...]:
    return (
        Operation(OpType.READ_WRITE, _checking(customer)),
        Operation(OpType.READ, _savings(customer)),
    )


def _ops_amalgamate(customer: str) -> tuple[Operation, ...]:
    return (
        Operation(OpType.READ_WRITE, _checking(customer)),
        Operation(OpType.READ_WRITE, _savings(customer)),
    )


def _ops_balance(customer: str) -> tuple[Operation, ...]:
    return (
        Operation(OpType.READ, _checking(customer)),
        Operation(OpType.READ, _savings(customer)),
    )


_DECLARED_OPS = {
    "transact_savings": _ops_transact_savings,
    "deposit_checking": _ops_deposit_checking,
    "send_payment": _ops_send_payment,
    "write_check": _ops_write_check,
    "amalgamate": _ops_amalgamate,
    "balance": _ops_balance,
}
