"""Multi-enterprise supply-chain workload (paper section 2.1.1).

Enterprises (supplier, manufacturer, carrier, retailer, ...) run
*internal* transactions on their own confidential state (production
steps, inventory adjustments) and *cross-enterprise* transactions
(shipments, payments) that every participant must see. The
``internal_fraction`` knob drives experiment E4/E9: Caper orders
internal transactions locally, so its global-consensus load shrinks as
the internal share grows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.common.errors import ConfigError
from repro.common.types import Operation, OpType, Transaction, TxType
from repro.execution.contracts import ContractContext, ContractRegistry


def inventory_key(enterprise: str, item: str) -> str:
    return f"inv:{enterprise}:{item}"


def balance_key(enterprise: str) -> str:
    return f"bal:{enterprise}"


def _produce(ctx: ContractContext, enterprise: str, item: str, qty: int) -> int:
    stock = ctx.get(inventory_key(enterprise, item), 0) + qty
    ctx.put(inventory_key(enterprise, item), stock)
    return stock


def _consume(ctx: ContractContext, enterprise: str, item: str, qty: int) -> int:
    stock = ctx.get(inventory_key(enterprise, item), 0)
    ctx.require(stock >= qty, f"{enterprise} lacks {qty} x {item}")
    ctx.put(inventory_key(enterprise, item), stock - qty)
    return stock - qty


def _ship(
    ctx: ContractContext, src: str, dst: str, item: str, qty: int
) -> int:
    stock = ctx.get(inventory_key(src, item), 0)
    ctx.require(stock >= qty, f"{src} cannot ship {qty} x {item}")
    ctx.put(inventory_key(src, item), stock - qty)
    ctx.put(inventory_key(dst, item), ctx.get(inventory_key(dst, item), 0) + qty)
    return qty


def _pay(ctx: ContractContext, src: str, dst: str, amount: int) -> int:
    balance = ctx.get(balance_key(src), 0)
    ctx.require(balance >= amount, f"{src} cannot pay {amount}")
    ctx.put(balance_key(src), balance - amount)
    ctx.put(balance_key(dst), ctx.get(balance_key(dst), 0) + amount)
    return amount


def _fund(ctx: ContractContext, enterprise: str, amount: int) -> int:
    balance = ctx.get(balance_key(enterprise), 0) + amount
    ctx.put(balance_key(enterprise), balance)
    return balance


def supply_chain_registry() -> ContractRegistry:
    """Contracts for the supply-chain application."""
    registry = ContractRegistry()
    registry.register("produce", _produce)
    registry.register("consume", _consume)
    registry.register("ship", _ship)
    registry.register("pay", _pay)
    registry.register("fund", _fund)
    return registry


@dataclass
class SupplyChainWorkload:
    """Stream of internal and cross-enterprise supply-chain transactions."""

    enterprises: list[str] = field(
        default_factory=lambda: ["supplier", "manufacturer", "carrier", "retailer"]
    )
    items: int = 20
    internal_fraction: float = 0.8
    seed: int = 0

    def __post_init__(self) -> None:
        if len(self.enterprises) < 2:
            raise ConfigError("need at least two enterprises")
        if not 0 <= self.internal_fraction <= 1:
            raise ConfigError("internal_fraction must be in [0, 1]")
        self._rng = random.Random(self.seed)

    def setup_transactions(self) -> list[Transaction]:
        """Initial funding and stock so shipments/payments succeed."""
        txs = []
        for enterprise in self.enterprises:
            txs.append(self._internal_tx(
                enterprise, "fund", (enterprise, 1_000_000),
                (Operation(OpType.READ_WRITE, balance_key(enterprise)),),
            ))
            for item in range(self.items):
                txs.append(self._internal_tx(
                    enterprise, "produce", (enterprise, f"item{item}", 1000),
                    (Operation(
                        OpType.READ_WRITE, inventory_key(enterprise, f"item{item}")
                    ),),
                ))
        return txs

    def _internal_tx(
        self, enterprise: str, contract: str, args: tuple,
        ops: tuple[Operation, ...],
    ) -> Transaction:
        return Transaction.create(
            contract,
            args,
            submitter=enterprise,
            tx_type=TxType.INTERNAL,
            declared_ops=ops,
            involved={enterprise},
        )

    def next_tx(self) -> Transaction:
        if self._rng.random() < self.internal_fraction:
            enterprise = self._rng.choice(self.enterprises)
            item = f"item{self._rng.randrange(self.items)}"
            contract = self._rng.choice(["produce", "consume"])
            qty = self._rng.randrange(1, 5)
            return self._internal_tx(
                enterprise, contract, (enterprise, item, qty),
                (Operation(OpType.READ_WRITE, inventory_key(enterprise, item)),),
            )
        src, dst = self._rng.sample(self.enterprises, 2)
        if self._rng.random() < 0.5:
            item = f"item{self._rng.randrange(self.items)}"
            qty = self._rng.randrange(1, 5)
            ops = (
                Operation(OpType.READ_WRITE, inventory_key(src, item)),
                Operation(OpType.READ_WRITE, inventory_key(dst, item)),
            )
            contract, args = "ship", (src, dst, item, qty)
        else:
            amount = self._rng.randrange(1, 100)
            ops = (
                Operation(OpType.READ_WRITE, balance_key(src)),
                Operation(OpType.READ_WRITE, balance_key(dst)),
            )
            contract, args = "pay", (src, dst, amount)
        return Transaction.create(
            contract,
            args,
            submitter=src,
            tx_type=TxType.CROSS_ENTERPRISE,
            declared_ops=ops,
            involved={src, dst},
        )

    def generate(self, count: int) -> list[Transaction]:
        return [self.next_tx() for _ in range(count)]
