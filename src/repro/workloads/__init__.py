"""Synthetic workload generators.

The tutorial motivates permissioned blockchains with financial
applications, supply chains, large-scale databases and crowdworking
(section 2.1). The generators here expose exactly the knobs those
motivations turn on: key skew (contention), read/write mix,
cross-enterprise ratio, cross-shard ratio, and constraint pressure.
"""

from repro.workloads.kv import KvWorkload, ZipfSampler
from repro.workloads.openloop import (
    Arrival,
    OpenLoopConfig,
    OpenLoopWorkload,
    Phase,
    ScalableZipfSampler,
    ramp_steady_burst,
)
from repro.workloads.smallbank import SmallBankWorkload, smallbank_registry
from repro.workloads.supply_chain import SupplyChainWorkload, supply_chain_registry
from repro.workloads.crowdworking import CrowdworkWorkload
from repro.workloads.ycsb import ycsb, profiles as ycsb_profiles

__all__ = [
    "Arrival",
    "CrowdworkWorkload",
    "KvWorkload",
    "OpenLoopConfig",
    "OpenLoopWorkload",
    "Phase",
    "ScalableZipfSampler",
    "SmallBankWorkload",
    "SupplyChainWorkload",
    "ZipfSampler",
    "ramp_steady_burst",
    "smallbank_registry",
    "supply_chain_registry",
    "ycsb",
    "ycsb_profiles",
]
