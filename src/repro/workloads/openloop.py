"""Open-loop load generation over millions of simulated clients.

Closed-loop benchmarks (a fixed transaction list injected as fast as
the system drains it) can never show saturation: the injector slows
down with the system. The end-to-end methodology this reproduces
(Geyer et al., arXiv:2311.15433) is *open loop* — arrivals fire on
their own Poisson clock regardless of how the system is coping, so
p50/p99 latency and goodput under overload are real measurements.

Three pieces:

* :class:`ScalableZipfSampler` — the YCSB/Gray rejection-free Zipfian
  generator: O(n) setup once (one zeta sum, cached per (n, theta)),
  O(1) per draw, so a client population in the millions is practical
  where the exact inverse-CDF table of
  :class:`~repro.workloads.kv.ZipfSampler` would not be.
* :class:`Phase` — a piecewise load shape: constant plateaus, linear
  ramps (Lewis–Shedler thinning keeps arrivals exact within the
  phase), and bursts are just short high-rate phases.
* :class:`OpenLoopWorkload` — composes client skew, key skew, a
  read/write mix, an optional fraction of invalid signatures, and the
  phase schedule into a deterministic, sorted list of
  :class:`Arrival` records. Transaction ids are derived from the
  arrival index (never from the process-global counter), so two
  same-seed schedules are identical byte for byte — across processes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator

from repro.common.errors import ConfigError
from repro.common.types import Operation, OpType, Transaction

#: zeta(n, theta) cache — the only O(n) cost, paid once per shape.
_ZETA_CACHE: dict[tuple[int, float], float] = {}


def zeta(n: int, theta: float) -> float:
    """Generalized harmonic number H_{n,theta} = sum_{i=1..n} i^-theta."""
    key = (n, round(theta, 9))
    cached = _ZETA_CACHE.get(key)
    if cached is None:
        cached = _ZETA_CACHE[key] = float(
            sum(i ** -theta for i in range(1, n + 1))
        )
    return cached


class ScalableZipfSampler:
    """Zipf-distributed ranks in ``[0, n)`` with O(1) draws.

    The Gray et al. quantile approximation used by YCSB's
    ``ZipfianGenerator``: after one zeta(n, theta) sum, each draw costs
    two ``pow`` calls — no table, so ``n`` in the millions is fine.
    ``theta = 0`` degenerates to uniform; ``theta = 1`` is excluded
    (the closed form divides by ``1 - theta``; use 0.99…).
    """

    __slots__ = ("n", "theta", "_rng", "_alpha", "_eta", "_zetan", "_half")

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n < 1:
            raise ConfigError("ScalableZipfSampler needs at least one item")
        if theta < 0:
            raise ConfigError("theta must be non-negative")
        if abs(theta - 1.0) < 1e-9:
            raise ConfigError(
                "theta=1 hits a pole of the Zipf quantile approximation; "
                "use 0.99 or 1.01"
            )
        self.n = n
        self.theta = theta
        self._rng = rng
        if theta == 0:
            return
        self._zetan = zeta(n, theta)
        zeta2 = zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta)
        self._eta = (1.0 - (2.0 / n) ** (1.0 - theta)) / (
            1.0 - zeta2 / self._zetan
        )
        self._half = 1.0 + 0.5 ** theta

    def sample(self) -> int:
        if self.theta == 0:
            return self._rng.randrange(self.n)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < self._half:
            return 1
        rank = int(self.n * (self._eta * u - self._eta + 1.0) ** self._alpha)
        return rank if rank < self.n else self.n - 1

    def top_mass(self, k: int) -> float:
        """Analytic probability mass of the ``k`` hottest ranks — the
        oracle the skew sanity tests compare empirical draws against."""
        if self.theta == 0:
            return k / self.n
        return zeta(k, self.theta) / zeta(self.n, self.theta)


@dataclass(frozen=True)
class Phase:
    """One segment of the load shape.

    ``rate`` is the arrival rate (tx/s) through the phase; a non-``None``
    ``start_rate`` makes it a linear ramp from ``start_rate`` to
    ``rate``. A burst is simply a short phase at a high constant rate.
    """

    name: str
    duration: float
    rate: float
    start_rate: float | None = None

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ConfigError(f"phase {self.name!r} needs a positive duration")
        if self.rate < 0 or (self.start_rate is not None and self.start_rate < 0):
            raise ConfigError(f"phase {self.name!r} rates must be non-negative")
        if max(self.rate, self.start_rate or 0.0) <= 0:
            raise ConfigError(f"phase {self.name!r} never fires an arrival")

    def rate_at(self, offset: float) -> float:
        """Instantaneous rate ``offset`` seconds into the phase."""
        if self.start_rate is None:
            return self.rate
        return self.start_rate + (self.rate - self.start_rate) * (
            offset / self.duration
        )

    def expected_arrivals(self) -> float:
        """Integral of the rate over the phase (mean of the Poisson count)."""
        if self.start_rate is None:
            return self.rate * self.duration
        return (self.start_rate + self.rate) / 2.0 * self.duration


def ramp_steady_burst(
    rate: float,
    steady: float = 2.0,
    ramp: float = 0.5,
    burst: float = 0.0,
    burst_multiplier: float = 3.0,
) -> tuple[Phase, ...]:
    """The canonical E22 shape: ramp up, hold, optionally burst."""
    phases = [
        Phase("ramp", ramp, rate, start_rate=max(rate / 10.0, 1.0)),
        Phase("steady", steady, rate),
    ]
    if burst > 0:
        phases.append(Phase("burst", burst, rate * burst_multiplier))
    return tuple(phases)


@dataclass(frozen=True)
class Arrival:
    """One open-loop submission: who fires what, when, and whether the
    signature it will carry is valid."""

    index: int
    time: float
    client: str
    tx: Transaction
    sig_valid: bool = True


@dataclass
class OpenLoopConfig:
    """Load-generator knobs.

    Attributes:
        clients: Size of the simulated client population (ids are drawn
            Zipfian from this space — millions are practical).
        client_theta: Zipf skew of *who submits* (0 = uniform).
        n_keys: Key-space size for the KV mix.
        key_theta: Zipf skew of *what they touch*.
        read_fraction / rmw_fraction / keys_per_read: Same mix knobs as
            :class:`~repro.workloads.kv.KvWorkload`.
        invalid_fraction: Share of submissions carrying a forged
            signature (exercises the gateway's pre-check shed path).
        phases: The load shape; see :class:`Phase`.
        seed: Master seed; the schedule is a pure function of config.
    """

    clients: int = 1_000_000
    client_theta: float = 0.9
    n_keys: int = 10_000
    key_theta: float = 0.8
    read_fraction: float = 0.3
    rmw_fraction: float = 0.5
    keys_per_read: int = 2
    invalid_fraction: float = 0.0
    phases: tuple[Phase, ...] = field(
        default_factory=lambda: (Phase("steady", 2.0, 500.0),)
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ConfigError("clients must be >= 1")
        if not self.phases:
            raise ConfigError("at least one phase is required")
        if not 0 <= self.read_fraction <= 1:
            raise ConfigError("read_fraction must be in [0, 1]")
        if not 0 <= self.rmw_fraction <= 1:
            raise ConfigError("rmw_fraction must be in [0, 1]")
        if not 0 <= self.invalid_fraction <= 1:
            raise ConfigError("invalid_fraction must be in [0, 1]")

    @property
    def duration(self) -> float:
        return sum(phase.duration for phase in self.phases)

    @property
    def offered_load(self) -> float:
        """Mean offered arrival rate over the whole schedule (tx/s)."""
        total = sum(phase.expected_arrivals() for phase in self.phases)
        return total / self.duration

    def phase_windows(self) -> list[tuple[str, float, float]]:
        """(name, start, end) per phase, in schedule order."""
        windows, at = [], 0.0
        for phase in self.phases:
            windows.append((phase.name, at, at + phase.duration))
            at += phase.duration
        return windows


class OpenLoopWorkload:
    """Deterministic generator of the full arrival schedule."""

    def __init__(self, config: OpenLoopConfig) -> None:
        self.config = config
        self._rng = random.Random(config.seed)
        self._clients = ScalableZipfSampler(
            config.clients, config.client_theta, self._rng
        )
        self._keys = ScalableZipfSampler(
            config.n_keys, config.key_theta, self._rng
        )
        self._index = 0

    # -- arrival times ------------------------------------------------------

    def _phase_times(self, phase: Phase, start: float) -> Iterator[float]:
        """Poisson arrival times within ``[start, start + duration)``.

        Constant phases draw exponential inter-arrivals directly; ramps
        use Lewis–Shedler thinning against the phase's max rate, so the
        inhomogeneous process stays exact and every arrival lands
        strictly inside the phase window.
        """
        rng = self._rng
        end = start + phase.duration
        if phase.start_rate is None:
            t = start
            while True:
                t += rng.expovariate(phase.rate)
                if t >= end:
                    return
                yield t
        else:
            rate_max = max(phase.rate, phase.start_rate)
            t = start
            while True:
                t += rng.expovariate(rate_max)
                if t >= end:
                    return
                if rng.random() * rate_max <= phase.rate_at(t - start):
                    yield t

    # -- transactions -------------------------------------------------------

    def _make_tx(self, index: int, client: str) -> Transaction:
        """One KV transaction with a deterministic, process-independent
        id (``Transaction.create`` derives ids from a process-global
        counter, which would break cross-process byte-identity)."""
        rng = self._rng
        roll = rng.random()
        if roll < self.config.read_fraction:
            keys = tuple(
                f"k{self._keys.sample()}"
                for _ in range(self.config.keys_per_read)
            )
            contract, args = "read_many", keys
            ops = tuple(Operation(OpType.READ, k) for k in keys)
        else:
            key = f"k{self._keys.sample()}"
            if rng.random() < self.config.rmw_fraction:
                contract, args = "increment", (key, 1)
                ops = (Operation(OpType.READ_WRITE, key),)
            else:
                contract, args = "kv_set", (key, index)
                ops = (Operation(OpType.WRITE, key),)
        return Transaction(
            tx_id=f"g{index:08d}",
            contract=contract,
            args=args,
            submitter=client,
            declared_ops=ops,
        )

    # -- the schedule -------------------------------------------------------

    def arrivals(self) -> list[Arrival]:
        """The full schedule, sorted by time, deterministic per config."""
        out: list[Arrival] = []
        invalid = self.config.invalid_fraction
        at = 0.0
        for phase in self.config.phases:
            for t in self._phase_times(phase, at):
                client = f"c{self._clients.sample()}"
                tx = self._make_tx(self._index, client)
                sig_valid = invalid <= 0 or self._rng.random() >= invalid
                out.append(Arrival(
                    index=self._index, time=t, client=client, tx=tx,
                    sig_valid=sig_valid,
                ))
                self._index += 1
            at += phase.duration
        return out
