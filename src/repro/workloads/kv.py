"""YCSB-style key-value workload with Zipfian contention.

This is the workload behind experiments E1/E2: a pool of keys accessed
with tunable skew, a read/write/read-modify-write mix, and declared
operations on every transaction so that both the OXII dependency graph
(built before execution) and the XOV endorsement path can run it.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

from repro.common.errors import ConfigError
from repro.common.types import Operation, OpType, Transaction


class ZipfSampler:
    """Draws ranks in ``[0, n)`` with Zipf parameter ``theta``.

    ``theta = 0`` is uniform; ``theta`` around 0.9–1.2 produces the
    heavily skewed access patterns database papers use to model
    contention. Sampling is inverse-CDF over a precomputed table, so a
    sampler is cheap to draw from after O(n) setup.
    """

    def __init__(self, n: int, theta: float, rng: random.Random) -> None:
        if n < 1:
            raise ConfigError("ZipfSampler needs at least one item")
        if theta < 0:
            raise ConfigError("theta must be non-negative")
        self._rng = rng
        weights = [1.0 / (rank + 1) ** theta for rank in range(n)]
        total = sum(weights)
        cumulative = []
        acc = 0.0
        for weight in weights:
            acc += weight / total
            cumulative.append(acc)
        cumulative[-1] = 1.0  # absorb float error
        self._cumulative = cumulative

    def sample(self) -> int:
        return bisect.bisect_left(self._cumulative, self._rng.random())


@dataclass
class KvWorkload:
    """Generator of key-value transactions.

    Attributes:
        n_keys: Size of the key space.
        theta: Zipf skew (0 = uniform).
        read_fraction: Share of read-only transactions.
        rmw_fraction: Share of read-modify-write transactions among the
            non-read transactions (the rest are blind writes).
        keys_per_read: Keys touched by a read-only transaction.
        seed: Generator seed.
    """

    n_keys: int = 10_000
    theta: float = 0.0
    read_fraction: float = 0.3
    rmw_fraction: float = 0.5
    keys_per_read: int = 3
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 <= self.read_fraction <= 1:
            raise ConfigError("read_fraction must be in [0, 1]")
        if not 0 <= self.rmw_fraction <= 1:
            raise ConfigError("rmw_fraction must be in [0, 1]")
        self._rng = random.Random(self.seed)
        self._sampler = ZipfSampler(self.n_keys, self.theta, self._rng)
        self._counter = 0

    def _key(self) -> str:
        return f"k{self._sampler.sample()}"

    def next_tx(self) -> Transaction:
        """Generate the next transaction of the stream."""
        self._counter += 1
        roll = self._rng.random()
        if roll < self.read_fraction:
            keys = tuple(self._key() for _ in range(self.keys_per_read))
            return Transaction.create(
                "read_many",
                keys,
                declared_ops=tuple(Operation(OpType.READ, k) for k in keys),
            )
        key = self._key()
        if self._rng.random() < self.rmw_fraction:
            return Transaction.create(
                "increment",
                (key,),
                declared_ops=(Operation(OpType.READ_WRITE, key),),
            )
        return Transaction.create(
            "kv_set",
            (key, self._counter),
            declared_ops=(Operation(OpType.WRITE, key),),
        )

    def generate(self, count: int) -> list[Transaction]:
        """A batch of ``count`` transactions."""
        return [self.next_tx() for _ in range(count)]
