"""Large-scale sharded database application (paper section 2.1.2).

"In the presence of untrusted infrastructure, i.e., Byzantine nodes, a
blockchain system can be used to achieve scalability while tolerating
malicious failures." This module deploys a SmallBank-style banking
database over any of the library's sharded systems and provides the
balance-conservation audit a database operator would run.
"""

from __future__ import annotations

from repro.common.errors import ConfigError
from repro.common.metrics import RunResult
from repro.sharding import (
    AhlSystem,
    ResilientDbSystem,
    SaguaroConfig,
    SaguaroSystem,
    ShardedConfig,
    SharPerSystem,
)
from repro.workloads.smallbank import SmallBankWorkload, smallbank_registry

#: name -> sharded system class.
BACKENDS = {
    "sharper": SharPerSystem,
    "ahl": AhlSystem,
    "resilientdb": ResilientDbSystem,
    "saguaro": SaguaroSystem,
}


class ShardedBankDatabase:
    """A SmallBank database partitioned over Byzantine clusters."""

    def __init__(
        self,
        backend: str = "sharper",
        n_shards: int = 4,
        n_customers: int = 1000,
        cross_shard_fraction: float = 0.1,
        config: ShardedConfig | None = None,
        seed: int = 0,
    ) -> None:
        if backend not in BACKENDS:
            raise ConfigError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        self.workload = SmallBankWorkload(
            n_customers=n_customers,
            n_shards=n_shards,
            cross_shard_fraction=cross_shard_fraction,
            seed=seed,
        )
        if config is None:
            config = (
                SaguaroConfig(n_clusters=n_shards, seed=seed)
                if backend == "saguaro"
                else ShardedConfig(n_clusters=n_shards, seed=seed)
            )
        system_cls = BACKENDS[backend]
        self.system = system_cls(
            smallbank_registry(), self._shard_of_key, config
        )
        self.backend = backend
        self._loaded = False

    def _shard_of_key(self, key: str) -> str:
        # Keys look like "checking:c17" / "savings:c17".
        return self.workload.shard_of(key.split(":")[1])

    # -- operations ---------------------------------------------------------------

    def load(self) -> int:
        """Submit the initial deposits; returns the row count."""
        setup = self.workload.setup_transactions()
        for tx in setup:
            self.system.submit(tx)
        self._loaded = True
        return len(setup)

    def submit_transactions(self, count: int) -> int:
        if not self._loaded:
            raise ConfigError("call load() before submitting transactions")
        for tx in self.workload.generate(count):
            self.system.submit(tx)
        return count

    def run(self) -> RunResult:
        return self.system.run()

    # -- audits ------------------------------------------------------------------------

    def total_balance(self) -> int:
        """Sum of every account balance across all shards.

        Payments move money, deposits/withdrawals change the total in
        recorded amounts — the audit in the example recomputes the
        expected total from the committed ledger and compares.
        """
        total = 0
        if self.backend == "resilientdb":
            stores = [self.system.global_store]
        else:
            stores = list(self.system.stores.values())
        for store in stores:
            for key in store.keys():
                if key.startswith(("checking:", "savings:")):
                    total += store.get(key, 0)
        return total

    def committed_transactions(self):
        """Every committed transaction, from the per-shard ledgers."""
        if self.backend == "resilientdb":
            yield from self.system.global_ledger.all_transactions()
            return
        seen: set[str] = set()
        for ledger in self.system.ledgers.values():
            for tx in ledger.all_transactions():
                if tx.tx_id not in seen:
                    seen.add(tx.tx_id)
                    yield tx
