"""Supply-chain management application (paper section 2.1.1).

A thin, opinionated layer over the library: a consortium of enterprises
runs its collaborative process on a Caper network, internal steps stay
confidential, shipments and payments are cross-enterprise, and SLA
conformance is checked against the shared (cross-enterprise) part of
the ledger — "monitor the execution of the collaborative process and
check conformance between the execution and SLAs".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.metrics import RunResult
from repro.common.types import Operation, OpType, Transaction, TxType
from repro.confidentiality.caper import CaperConfig, CaperSystem
from repro.workloads.supply_chain import (
    balance_key,
    inventory_key,
    supply_chain_registry,
)


@dataclass(frozen=True)
class Sla:
    """A service-level agreement between two enterprises.

    ``min_shipments`` units of ``item`` must flow from ``supplier`` to
    ``consumer`` over the monitored window, and every shipment must be
    paid for (``price_per_unit``).
    """

    supplier: str
    consumer: str
    item: str
    min_shipments: int
    price_per_unit: int


@dataclass
class SlaReport:
    """Conformance-check outcome for one SLA."""

    sla: Sla
    shipments_seen: int = 0
    units_shipped: int = 0
    payments_seen: int = 0
    amount_paid: int = 0
    violations: list[str] = field(default_factory=list)

    @property
    def conformant(self) -> bool:
        return not self.violations


class SupplyChainConsortium:
    """A supply-chain deployment over Caper."""

    def __init__(
        self,
        enterprises: list[str],
        slas: list[Sla] | None = None,
        config: CaperConfig | None = None,
    ) -> None:
        self.enterprises = list(enterprises)
        self.slas = list(slas or [])
        self.system = CaperSystem(
            enterprises, supply_chain_registry(), config
        )

    # -- business operations --------------------------------------------------

    def internal_step(
        self, enterprise: str, contract: str, item: str, qty: int
    ) -> Transaction:
        """A confidential production step inside one enterprise."""
        if contract not in ("produce", "consume"):
            raise ValidationError(f"not an internal step: {contract}")
        tx = Transaction.create(
            contract,
            (enterprise, item, qty),
            submitter=enterprise,
            tx_type=TxType.INTERNAL,
            declared_ops=(
                Operation(OpType.READ_WRITE, inventory_key(enterprise, item)),
            ),
            involved={enterprise},
        )
        self.system.submit(tx)
        return tx

    def ship(self, src: str, dst: str, item: str, qty: int) -> Transaction:
        tx = Transaction.create(
            "ship",
            (src, dst, item, qty),
            submitter=src,
            tx_type=TxType.CROSS_ENTERPRISE,
            declared_ops=(
                Operation(OpType.READ_WRITE, inventory_key(src, item)),
                Operation(OpType.READ_WRITE, inventory_key(dst, item)),
            ),
            involved={src, dst},
        )
        self.system.submit(tx)
        return tx

    def pay(self, src: str, dst: str, amount: int) -> Transaction:
        tx = Transaction.create(
            "pay",
            (src, dst, amount),
            submitter=src,
            tx_type=TxType.CROSS_ENTERPRISE,
            declared_ops=(
                Operation(OpType.READ_WRITE, balance_key(src)),
                Operation(OpType.READ_WRITE, balance_key(dst)),
            ),
            involved={src, dst},
        )
        self.system.submit(tx)
        return tx

    def fund(self, enterprise: str, amount: int) -> Transaction:
        tx = Transaction.create(
            "fund",
            (enterprise, amount),
            submitter=enterprise,
            tx_type=TxType.INTERNAL,
            declared_ops=(
                Operation(OpType.READ_WRITE, balance_key(enterprise)),
            ),
            involved={enterprise},
        )
        self.system.submit(tx)
        return tx

    def run(self) -> RunResult:
        return self.system.run()

    # -- SLA conformance (on the shared part of the ledger) ---------------------

    def check_sla(self, sla: Sla) -> SlaReport:
        """Audit the cross-enterprise spine of any participant's view.

        Conformance checking needs no confidential data: shipments and
        payments are cross-enterprise transactions, visible in every
        enterprise's view.
        """
        report = SlaReport(sla=sla)
        for vertex in self.system.view(sla.supplier):
            if vertex.enterprise is not None:
                continue  # internal tx: not part of the shared process
            tx = vertex.tx
            if tx.contract == "ship":
                src, dst, item, qty = tx.args
                if (src, dst, item) == (sla.supplier, sla.consumer, sla.item):
                    report.shipments_seen += 1
                    report.units_shipped += qty
            elif tx.contract == "pay":
                src, dst, amount = tx.args
                if (src, dst) == (sla.consumer, sla.supplier):
                    report.payments_seen += 1
                    report.amount_paid += amount
        if report.units_shipped < sla.min_shipments:
            report.violations.append(
                f"only {report.units_shipped}/{sla.min_shipments} units shipped"
            )
        owed = report.units_shipped * sla.price_per_unit
        if report.amount_paid < owed:
            report.violations.append(
                f"paid {report.amount_paid} of {owed} owed"
            )
        return report

    def check_all_slas(self) -> list[SlaReport]:
        return [self.check_sla(sla) for sla in self.slas]
