"""The three motivating applications (paper section 2.1), as libraries.

Each wraps the relevant technique packages into the scenario the paper
describes; the runnable scripts in ``examples/`` are thin drivers over
these classes.
"""

from repro.apps.crowdworking import CrowdworkingDeployment, WorkerWallet
from repro.apps.sharded_db import BACKENDS, ShardedBankDatabase
from repro.apps.supply_chain import Sla, SlaReport, SupplyChainConsortium

__all__ = [
    "BACKENDS",
    "CrowdworkingDeployment",
    "ShardedBankDatabase",
    "Sla",
    "SlaReport",
    "SupplyChainConsortium",
    "WorkerWallet",
]
