"""Multi-platform crowdworking application (paper section 2.1.3).

Wires the Separ pieces into the scenario the paper motivates with: a
worker who drives for several platforms, a trusted authority modelling
FLSA's 40-hour cap as tokens, and platforms collectively enforcing the
cap on a shared ledger — plus the Prop 22 side: a worker proving 25+
hours across platforms to claim a healthcare subsidy.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.common.errors import ValidationError
from repro.common.metrics import RunResult
from repro.verifiability.separ import (
    SeparConfig,
    SeparSystem,
    Token,
    TokenAuthority,
)
from repro.workloads.crowdworking import (
    FLSA_WEEKLY_CAP,
    PROP22_HEALTHCARE_THRESHOLD,
    WorkClaim,
)


@dataclass
class WorkerWallet:
    """A worker's client-side token wallet and spent-token receipts."""

    worker: str
    tokens: list[Token] = field(default_factory=list)
    receipts: list[str] = field(default_factory=list)

    def spend(self, hours: int) -> list[Token]:
        if hours > len(self.tokens):
            raise ValidationError(
                f"{self.worker} has {len(self.tokens)} tokens, needs {hours}"
            )
        spent = [self.tokens.pop() for _ in range(hours)]
        self.receipts.extend(token.serial for token in spent)
        return spent

    @property
    def remaining_hours(self) -> int:
        return len(self.tokens)


class CrowdworkingDeployment:
    """Authority + platforms + workers, ready to process claims."""

    def __init__(
        self,
        platforms: list[str],
        workers: list[str],
        weekly_cap: int = FLSA_WEEKLY_CAP,
        config: SeparConfig | None = None,
    ) -> None:
        self.authority = TokenAuthority(weekly_cap=weekly_cap)
        self.system = SeparSystem(platforms, self.authority, config)
        self.wallets = {worker: WorkerWallet(worker=worker) for worker in workers}
        self._rejected_at_wallet = 0

    def issue_week(self, week: int = 0) -> None:
        """The authority hands every worker a fresh week of hour-tokens."""
        for worker, wallet in self.wallets.items():
            wallet.tokens.extend(
                self.authority.issue(worker, week, self.authority.weekly_cap)
            )

    def submit_claim(self, claim: WorkClaim) -> bool:
        """The worker spends tokens and the platform submits the claim.

        Returns False when the worker's wallet cannot cover the hours —
        the cap binding client-side, before anything reaches the ledger.
        """
        wallet = self.wallets[claim.worker]
        if wallet.remaining_hours < claim.hours:
            self._rejected_at_wallet += 1
            return False
        tokens = wallet.spend(claim.hours)
        self.system.submit(SeparSystem.tokenize(claim, tokens))
        return True

    def run(self) -> RunResult:
        return self.system.run()

    # -- regulatory queries --------------------------------------------------------

    def hours_worked(self, worker: str) -> int:
        """Hours the worker can *prove* across all platforms."""
        return self.system.hours_proven_by(self.wallets[worker].receipts)

    def qualifies_for_healthcare(self, worker: str) -> bool:
        """California Prop 22: 25+ proven hours per week."""
        return self.hours_worked(worker) >= PROP22_HEALTHCARE_THRESHOLD

    def flsa_compliant(self) -> bool:
        """No worker can have worked more than the cap: the cap is the
        token issuance limit and every committed hour burned a token."""
        return all(
            self.hours_worked(worker) <= self.authority.weekly_cap
            for worker in self.wallets
        )

    @property
    def wallet_rejections(self) -> int:
        return self._rejected_at_wallet
