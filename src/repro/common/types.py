"""Domain types shared by every subsystem.

The central type is :class:`Transaction`. A transaction names a smart
contract function and its arguments; its effects on state are produced by
the execution layer (``repro.execution``). Transactions optionally carry
*declared* operations — the keys they intend to touch — which the
order-parallel-execute architecture (ParBlockchain, paper section 2.3.3)
uses to build dependency graphs before execution.
"""

from __future__ import annotations

import enum
import hashlib
import itertools
from dataclasses import dataclass, field

_TX_COUNTER = itertools.count()


class TxType(enum.Enum):
    """Visibility/scope class of a transaction (paper sections 2.3.1, 2.3.4)."""

    PUBLIC = "public"
    INTERNAL = "internal"
    CROSS_ENTERPRISE = "cross_enterprise"
    INTRA_SHARD = "intra_shard"
    CROSS_SHARD = "cross_shard"
    PRIVATE = "private"


class TxStatus(enum.Enum):
    """Lifecycle state of a transaction as seen by a blockchain system."""

    PENDING = "pending"
    COMMITTED = "committed"
    ABORTED = "aborted"
    REEXECUTED = "reexecuted"


class OpType(enum.Enum):
    """Kind of access a declared operation performs on a key."""

    READ = "read"
    WRITE = "write"
    READ_WRITE = "read_write"

    @property
    def reads(self) -> bool:
        return self in (OpType.READ, OpType.READ_WRITE)

    @property
    def writes(self) -> bool:
        return self in (OpType.WRITE, OpType.READ_WRITE)


@dataclass(frozen=True)
class Operation:
    """A declared access to a single state key."""

    op_type: OpType
    key: str


@dataclass(frozen=True)
class Transaction:
    """An immutable client transaction.

    Attributes:
        tx_id: Globally unique identifier (derived hash by default).
        contract: Name of the contract function to invoke.
        args: Positional arguments for the contract function.
        submitter: Identifier of the submitting client or enterprise.
        tx_type: Visibility/scope class.
        declared_ops: Keys the transaction intends to access, if known
            up front. Used by OXII dependency graphs and by lock-based
            cross-shard protocols (AHL's 2PL).
        involved: Enterprises, channels, or shards the transaction spans.
            Empty for single-scope transactions.
        submitted_at: Simulated time of submission (seconds).
    """

    tx_id: str
    contract: str
    args: tuple = ()
    submitter: str = "client"
    tx_type: TxType = TxType.PUBLIC
    declared_ops: tuple[Operation, ...] = ()
    involved: frozenset[str] = field(default_factory=frozenset)
    submitted_at: float = 0.0

    @staticmethod
    def create(
        contract: str,
        args: tuple = (),
        submitter: str = "client",
        tx_type: TxType = TxType.PUBLIC,
        declared_ops: tuple[Operation, ...] = (),
        involved: frozenset[str] | set[str] = frozenset(),
        submitted_at: float = 0.0,
    ) -> "Transaction":
        """Build a transaction with a derived, collision-free identifier."""
        seq = next(_TX_COUNTER)
        material = f"{contract}|{args!r}|{submitter}|{seq}".encode()
        tx_id = hashlib.sha256(material).hexdigest()[:16]
        return Transaction(
            tx_id=tx_id,
            contract=contract,
            args=tuple(args),
            submitter=submitter,
            tx_type=tx_type,
            declared_ops=tuple(declared_ops),
            involved=frozenset(involved),
            submitted_at=submitted_at,
        )

    @property
    def read_keys(self) -> frozenset[str]:
        """Keys this transaction declared it will read."""
        return frozenset(op.key for op in self.declared_ops if op.op_type.reads)

    @property
    def write_keys(self) -> frozenset[str]:
        """Keys this transaction declared it will write."""
        return frozenset(op.key for op in self.declared_ops if op.op_type.writes)

    def conflicts_with(self, other: "Transaction") -> bool:
        """Two transactions conflict when one writes a key the other touches."""
        mine = self.read_keys | self.write_keys
        theirs = other.read_keys | other.write_keys
        return bool(self.write_keys & theirs) or bool(other.write_keys & mine)

    def digest(self) -> str:
        """Stable content digest used inside block Merkle trees.

        Memoized per instance: a transaction is digested when its block
        is assembled, again when the block is validated on append, and
        once more per audit — the bytes never change, so hash once.
        """
        cached = getattr(self, "_digest_memo", None)
        if cached is not None:
            return cached
        material = f"{self.tx_id}|{self.contract}|{self.args!r}|{self.submitter}"
        digest = hashlib.sha256(material.encode()).hexdigest()
        object.__setattr__(self, "_digest_memo", digest)
        return digest


@dataclass(frozen=True)
class Endorsement:
    """An endorser's signed vote for a simulated execution result (XOV)."""

    endorser: str
    tx_id: str
    rwset_digest: str
    signature: bytes
