"""Shared primitives used across the library.

This package contains the domain types (transactions, identifiers),
the error hierarchy, and the metrics machinery that every subsystem
reports into. Nothing in here depends on any other ``repro`` package.
"""

from repro.common.errors import (
    ConfigError,
    ConsensusError,
    CryptoError,
    ExecutionError,
    LedgerError,
    ReproError,
    ValidationError,
)
from repro.common.metrics import LatencyRecorder, MetricsRegistry, RunResult
from repro.common.types import (
    Endorsement,
    Operation,
    OpType,
    Transaction,
    TxStatus,
    TxType,
)

__all__ = [
    "ConfigError",
    "ConsensusError",
    "CryptoError",
    "Endorsement",
    "ExecutionError",
    "LatencyRecorder",
    "LedgerError",
    "MetricsRegistry",
    "Operation",
    "OpType",
    "ReproError",
    "RunResult",
    "Transaction",
    "TxStatus",
    "TxType",
    "ValidationError",
]
