"""Metrics collection shared by all systems and benchmarks.

Every blockchain system in this library reports into a
:class:`MetricsRegistry` (cheap named counters) and returns a
:class:`RunResult` summarising a workload run. Benchmarks print rows
derived from ``RunResult`` so that each experiment in EXPERIMENTS.md has
one canonical shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable


class MetricsRegistry:
    """Named monotonically increasing counters.

    A registry is deliberately dumb: it never interprets names. Systems
    use dotted names such as ``"consensus.messages"`` or
    ``"xov.aborts.mvcc"`` so benchmarks can aggregate by prefix.

    ``incr`` sits on the network send path, so the store is a plain
    dict updated with one membership test — no ``defaultdict`` factory
    machinery per miss. Counter values are always floats, matching the
    old ``defaultdict(float)`` behavior.
    """

    __slots__ = ("_counters",)

    def __init__(self) -> None:
        self._counters: dict[str, float] = {}

    def incr(self, name: str, amount: float = 1.0) -> None:
        """Add ``amount`` to counter ``name`` (creating it at zero)."""
        counters = self._counters
        if name in counters:
            counters[name] += amount
        else:
            counters[name] = amount + 0.0

    def incr_many(self, pairs: Iterable[tuple[str, float]]) -> None:
        """Batch :meth:`incr`: apply ``(name, amount)`` pairs in order."""
        counters = self._counters
        for name, amount in pairs:
            if name in counters:
                counters[name] += amount
            else:
                counters[name] = amount + 0.0

    def get(self, name: str) -> float:
        """Current value of counter ``name`` (zero if never incremented)."""
        return self._counters.get(name, 0.0)

    def by_prefix(self, prefix: str) -> dict[str, float]:
        """All counters whose name starts with ``prefix``."""
        return {k: v for k, v in self._counters.items() if k.startswith(prefix)}

    def total(self, prefix: str) -> float:
        """Sum of all counters under ``prefix``."""
        return sum(self.by_prefix(prefix).values())

    def snapshot(self) -> dict[str, float]:
        """Copy of every counter."""
        return dict(self._counters)

    def reset(self) -> None:
        self._counters.clear()


class LatencyRecorder:
    """Collects individual latency samples and reports percentiles.

    The sorted view is computed lazily and cached: ``RunResult.to_row``
    asks for ``mean``/``p50``/``p99`` back to back, and re-sorting the
    sample list for each percentile was a visible benchmark cost. Any
    new sample invalidates the cache.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._sorted: list[float] | None = None

    def record(self, value: float) -> None:
        if value < 0:
            raise ValueError(f"latency sample must be non-negative, got {value}")
        self._samples.append(value)
        self._sorted = None

    def extend(self, values) -> None:
        for value in values:
            self.record(value)

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def samples(self) -> list[float]:
        return list(self._samples)

    def mean(self) -> float:
        if not self._samples:
            return 0.0
        return sum(self._samples) / len(self._samples)

    def percentile(self, pct: float) -> float:
        """Nearest-rank percentile; ``pct`` in [0, 100]."""
        if not 0 <= pct <= 100:
            raise ValueError(f"percentile must be in [0, 100], got {pct}")
        if not self._samples:
            return 0.0
        ordered = self._sorted
        if ordered is None:
            ordered = self._sorted = sorted(self._samples)
        rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def p50(self) -> float:
        return self.percentile(50)

    def p99(self) -> float:
        return self.percentile(99)


@dataclass
class RunResult:
    """Summary of one workload run on one blockchain system.

    Attributes:
        system: Human-readable system name (e.g. ``"xov"``).
        committed: Number of transactions committed to the ledger.
        aborted: Number of transactions aborted (e.g. MVCC conflicts).
        duration: Simulated wall-clock duration of the run (seconds).
        messages: Total protocol messages exchanged.
        bytes_sent: Total protocol bytes exchanged (modelled sizes).
        latencies: Per-transaction commit latencies (simulated seconds).
        extra: System-specific counters worth reporting.
    """

    system: str
    committed: int = 0
    aborted: int = 0
    duration: float = 0.0
    messages: int = 0
    bytes_sent: int = 0
    latencies: LatencyRecorder = field(default_factory=LatencyRecorder)
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def submitted(self) -> int:
        return self.committed + self.aborted

    @property
    def throughput(self) -> float:
        """Committed transactions per simulated second (goodput)."""
        if self.duration <= 0:
            return 0.0
        return self.committed / self.duration

    @property
    def abort_rate(self) -> float:
        if self.submitted == 0:
            return 0.0
        return self.aborted / self.submitted

    def to_row(self) -> dict[str, float | str]:
        """Flat row for benchmark tables."""
        return {
            "system": self.system,
            "committed": self.committed,
            "aborted": self.aborted,
            "abort_rate": round(self.abort_rate, 4),
            "throughput_tps": round(self.throughput, 2),
            "mean_latency": round(self.latencies.mean(), 5),
            "p99_latency": round(self.latencies.p99(), 5),
            "messages": self.messages,
        }
