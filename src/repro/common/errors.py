"""Error hierarchy for the library.

Every exception raised by ``repro`` derives from :class:`ReproError`, so
callers can catch one base class at an API boundary. Subclasses mark which
subsystem detected the problem, not which subsystem caused it.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """A configuration value is missing, out of range, or inconsistent."""


class CryptoError(ReproError):
    """A cryptographic check failed (bad signature, broken proof, ...)."""


class LedgerError(ReproError):
    """A ledger invariant was violated (broken hash chain, bad block, ...)."""


class StorageError(ReproError):
    """A durable-storage operation failed or found corruption on disk."""


class ValidationError(ReproError):
    """A transaction or block failed semantic validation."""


class ConsensusError(ReproError):
    """A consensus protocol detected an unrecoverable inconsistency."""


class ExecutionError(ReproError):
    """A smart contract failed or accessed state illegally."""
