"""Safety monitors and the guarded run driver for fault experiments.

The paper's Discussion claims are fundamentally about behaviour under
faults: BFT protocols may *stall* when quorums are unreachable but must
never commit conflicting values. These monitors watch a
:class:`~repro.consensus.base.ConsensusCluster` live during a fault run
and record any violation, independently of the per-replica assertions
inside each protocol (a replica can only see its own log; monitors see
the whole cluster):

* :class:`ConflictingCommitMonitor` — no two correct replicas commit
  different values at the same sequence/height (the agreement property).
* :class:`PrefixConsistencyMonitor` — correct replicas' decided logs
  stay prefix-consistent on every decide.

:func:`guarded_run_until_decided` drives a cluster like
``run_until_decided`` but wires a :class:`~repro.sim.watchdog.LivenessWatchdog`
between run slices, converting silent stalls and exhausted event queues
into a structured :class:`~repro.sim.watchdog.StallDiagnostic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.sim.trace import NetworkTracer
from repro.sim.watchdog import LivenessWatchdog, StallDiagnostic


class SafetyMonitor:
    """Base class: collects violation descriptions during a run.

    Monitors attach via ``cluster.add_monitor(monitor)`` and receive
    every in-order decide of every replica (Byzantine attack replicas
    excluded — safety is a property of the *correct* replicas).
    """

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster

    @property
    def ok(self) -> bool:
        return not self.violations

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        raise NotImplementedError

    def check(self) -> bool:
        """End-of-run check; default just reports collected violations."""
        return self.ok


class ConflictingCommitMonitor(SafetyMonitor):
    """No two committed values at the same sequence across the cluster."""

    def __init__(self) -> None:
        super().__init__()
        self._committed: dict[int, tuple[str, str]] = {}  # seq -> (repr, node)

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        key = repr(value)
        existing = self._committed.get(sequence)
        if existing is None:
            self._committed[sequence] = (key, node_id)
        elif existing[0] != key:
            self.violations.append(
                f"seq {sequence}: {node_id} committed {key} but "
                f"{existing[1]} committed {existing[0]}"
            )


class PrefixConsistencyMonitor(SafetyMonitor):
    """Correct replicas' decided logs are prefix-consistent, checked on
    every decide (catches transient divergence an end-of-run comparison
    would miss if logs later converge by overwrite)."""

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if self._cluster is None:
            return
        if not self._cluster.agreement_holds():
            self.violations.append(
                f"prefix divergence after {node_id} decided seq {sequence}"
            )


@dataclass
class GuardedRun:
    """Outcome of :func:`guarded_run_until_decided`."""

    decided: bool
    diagnostic: StallDiagnostic | None
    monitors_ok: bool
    violations: list[str]

    @property
    def ok(self) -> bool:
        return self.decided and self.monitors_ok


def guarded_run_until_decided(
    cluster,
    count: int,
    timeout: float = 60.0,
    stall_after: float = 5.0,
    tracer: NetworkTracer | None = None,
    slice_seconds: float = 0.25,
    max_events: int = 2_000_000,
) -> GuardedRun:
    """Run until every correct replica decided ``count`` values, with a
    liveness watchdog converting stalls into diagnostics.

    The watchdog observes between run slices (never from inside the
    event queue), so a guarded run replays the exact same event sequence
    as an unguarded one. On a stall — no replica's decided log grew for
    ``stall_after`` virtual seconds, or the event queue drained with the
    goal unmet — the returned :class:`GuardedRun` carries the first
    structured diagnostic; the run keeps going until ``timeout`` in case
    the stall resolves (e.g. a scheduled heal), so ``decided`` can be
    True even when a transient stall was diagnosed mid-run.
    """
    watchdog = LivenessWatchdog(
        cluster.replicas,
        progress_of=lambda replica: len(replica.decided),
        stall_after=stall_after,
        tracer=tracer,
    )
    sim = cluster.sim
    watchdog.observe(sim.now)
    deadline = sim.now + timeout
    diagnostic: StallDiagnostic | None = None

    def goal_met() -> bool:
        return all(
            len(r.decided) >= count for r in cluster.correct_replicas()
        )

    while sim.now < deadline:
        if goal_met():
            break
        processed = sim.run(
            until=min(deadline, sim.now + slice_seconds), max_events=max_events
        )
        observed = watchdog.observe(sim.now)
        if observed is not None and diagnostic is None:
            diagnostic = observed
        if processed == 0 and sim.pending_events() == 0:
            if not goal_met() and diagnostic is None:
                diagnostic = watchdog.queue_exhausted(sim.now)
            break
    decided = goal_met()
    violations = [
        violation
        for monitor in getattr(cluster, "monitors", [])
        for violation in monitor.violations
    ]
    return GuardedRun(
        decided=decided,
        diagnostic=diagnostic,
        monitors_ok=not violations,
        violations=violations,
    )
