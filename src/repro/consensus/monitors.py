"""Safety monitors and the guarded run driver for fault experiments.

The paper's Discussion claims are fundamentally about behaviour under
faults: BFT protocols may *stall* when quorums are unreachable but must
never commit conflicting values. These monitors watch a
:class:`~repro.consensus.base.ConsensusCluster` live during a fault run
and record any violation, independently of the per-replica assertions
inside each protocol (a replica can only see its own log; monitors see
the whole cluster):

* :class:`ConflictingCommitMonitor` — no two correct replicas commit
  different values at the same sequence/height (the agreement property).
* :class:`PrefixConsistencyMonitor` — correct replicas' decided logs
  stay prefix-consistent on every decide.
* :class:`DurableDecisionMonitor` — each replica's decided log grows
  strictly in order and is never rewritten or truncated, including
  across crash/recover cycles (the durability property).

Monitors register by name in :data:`MONITOR_REGISTRY` so the DST engine
(:mod:`repro.simtest`) can select invariants declaratively; use
:func:`standard_monitors` for the full set.

:func:`guarded_run_until_decided` drives a cluster like
``run_until_decided`` but wires a :class:`~repro.sim.watchdog.LivenessWatchdog`
between run slices, converting silent stalls and exhausted event queues
into a structured :class:`~repro.sim.watchdog.StallDiagnostic`. A run
that fails for *any* reason always carries a diagnostic — including
plain timeouts, which previously surfaced as a bare ``decided=False``
with the stall details swallowed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.sim.trace import NetworkTracer
from repro.sim.watchdog import LivenessWatchdog, StallDiagnostic

#: Named invariant registry: name -> zero-arg monitor factory. The DST
#: fuzzer, capsules, and CLI select monitors through these names.
MONITOR_REGISTRY: dict[str, Callable[[], "SafetyMonitor"]] = {}


def register_monitor(name: str):
    """Class decorator: publish a monitor under ``name``."""

    def decorate(cls):
        MONITOR_REGISTRY[name] = cls
        cls.registry_name = name
        return cls

    return decorate


def standard_monitors() -> list["SafetyMonitor"]:
    """Fresh instances of every registered monitor (sorted by name)."""
    return [MONITOR_REGISTRY[name]() for name in sorted(MONITOR_REGISTRY)]


class SafetyMonitor:
    """Base class: collects violation descriptions during a run.

    Monitors attach via ``cluster.add_monitor(monitor)`` and receive
    every in-order decide of every replica (Byzantine attack replicas
    excluded — safety is a property of the *correct* replicas).
    """

    def __init__(self) -> None:
        self.violations: list[str] = []
        self._cluster = None

    def bind(self, cluster) -> None:
        self._cluster = cluster

    @property
    def ok(self) -> bool:
        return not self.violations

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        raise NotImplementedError

    def check(self) -> bool:
        """End-of-run check; default just reports collected violations."""
        return self.ok


@register_monitor("conflicting-commit")
class ConflictingCommitMonitor(SafetyMonitor):
    """No two committed values at the same sequence across the cluster."""

    def __init__(self) -> None:
        super().__init__()
        self._committed: dict[int, tuple[str, str]] = {}  # seq -> (repr, node)

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        key = repr(value)
        existing = self._committed.get(sequence)
        if existing is None:
            self._committed[sequence] = (key, node_id)
        elif existing[0] != key:
            self.violations.append(
                f"seq {sequence}: {node_id} committed {key} but "
                f"{existing[1]} committed {existing[0]}"
            )


@register_monitor("prefix-consistency")
class PrefixConsistencyMonitor(SafetyMonitor):
    """Correct replicas' decided logs are prefix-consistent, checked on
    every decide (catches transient divergence an end-of-run comparison
    would miss if logs later converge by overwrite)."""

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        if self._cluster is None:
            return
        if not self._cluster.agreement_holds():
            self.violations.append(
                f"prefix divergence after {node_id} decided seq {sequence}"
            )


@register_monitor("durable-decision")
class DurableDecisionMonitor(SafetyMonitor):
    """Decisions are durable: each replica reports sequences strictly in
    order (0, 1, 2, …), never rewrites one, and its ``decided`` log at
    the end of the run still starts with everything it ever reported —
    a crash/recover cycle must not lose or mutate committed entries."""

    def __init__(self) -> None:
        super().__init__()
        self._logs: dict[str, list[Any]] = {}

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        log = self._logs.setdefault(node_id, [])
        if sequence < len(log):
            if log[sequence] != value:
                self.violations.append(
                    f"{node_id} rewrote seq {sequence}: "
                    f"{log[sequence]!r} -> {value!r}"
                )
        elif sequence == len(log):
            log.append(value)
        else:
            self.violations.append(
                f"{node_id} decided seq {sequence} out of order "
                f"(expected {len(log)})"
            )

    def check(self) -> bool:
        if self._cluster is not None:
            for node_id, log in self._logs.items():
                replica = self._cluster.replicas.get(node_id)
                if replica is None:
                    continue
                if list(replica.decided[:len(log)]) != log:
                    self.violations.append(
                        f"{node_id} lost durability: decided log no longer "
                        f"starts with its {len(log)} reported decisions"
                    )
        return self.ok


@register_monitor("durable-recovery")
class DurableRecoveryMonitor(SafetyMonitor):
    """Crash-restart recovery preserves the committed ledger prefix.

    Written for :class:`~repro.storage.durable.DurableCluster` (decides
    are ``(node, height, block_hash)``; recoveries arrive through
    :meth:`on_recovery`) but registered like every invariant, so it must
    be harmless under plain consensus clusters too — there it degrades
    to a conflicting-commit check, and :meth:`on_recovery` simply never
    fires.

    Checked live:

    * no two nodes ever commit different values at one height, and no
      node rewrites a height it already committed (same-value re-commits
      after catch-up are fine);
    * a recovered node's replayed ledger is a *prefix-consistent
      extension*: its post-replay tip must match both what the node
      itself had committed at that height before the crash and the
      cluster's canonical chain (losing a non-durable suffix is legal —
      that is the fsync policy's loss window — rewriting history is
      not).
    """

    def __init__(self) -> None:
        super().__init__()
        #: node -> {sequence: value} as reported through on_decide.
        self._logs: dict[str, dict[int, Any]] = {}
        #: sequence -> (value, first reporting node), across the cluster.
        self._global: dict[int, tuple[Any, str]] = {}
        self.recoveries: list[dict[str, Any]] = []

    def on_decide(self, node_id: str, sequence: int, value: Any) -> None:
        log = self._logs.setdefault(node_id, {})
        previous = log.get(sequence)
        if previous is not None and previous != value:
            self.violations.append(
                f"{node_id} rewrote seq {sequence}: "
                f"{previous!r} -> {value!r}"
            )
        log[sequence] = value
        existing = self._global.get(sequence)
        if existing is None:
            self._global[sequence] = (value, node_id)
        elif existing[0] != value:
            self.violations.append(
                f"seq {sequence}: {node_id} committed {value!r} but "
                f"{existing[1]} committed {existing[0]!r}"
            )

    def on_recovery(
        self,
        node_id: str,
        height: int,
        tip_hash: str,
        replayed: int = 0,
        torn: bool = False,
        resync: bool = False,
    ) -> None:
        """A node finished WAL replay and re-joined at (height, tip)."""
        self.recoveries.append({
            "node": node_id, "height": height, "tip_hash": tip_hash,
            "replayed": replayed, "torn": torn, "resync": resync,
        })
        if height == 0:
            return  # recovered to genesis (resync) — nothing to contradict
        own = self._logs.get(node_id, {}).get(height)
        if own is not None and own != tip_hash:
            self.violations.append(
                f"{node_id} recovered a different block at height {height} "
                "than it had committed before the crash"
            )
        canonical_of = getattr(self._cluster, "canonical_block_hash", None)
        if canonical_of is not None:
            canonical = canonical_of(height)
            if canonical is not None and canonical != tip_hash:
                self.violations.append(
                    f"{node_id} recovered tip at height {height} diverges "
                    "from the canonical chain"
                )


@dataclass
class GuardedRun:
    """Outcome of :func:`guarded_run_until_decided`.

    A failed run (``decided`` False) always carries ``diagnostic`` —
    stalls, exhausted queues, *and* plain timeouts all produce one — so
    callers (the fuzz loop, test assertions) never lose the stall
    details to a silent ``False``.
    """

    decided: bool
    diagnostic: StallDiagnostic | None
    monitors_ok: bool
    violations: list[str]

    @property
    def ok(self) -> bool:
        return self.decided and self.monitors_ok

    def failure_summary(self) -> str:
        """The full failure payload: violations plus the structured
        stall diagnostic (for assertion messages and fuzz capsules)."""
        lines: list[str] = []
        if not self.decided:
            lines.append("liveness: goal not reached")
        lines.extend(f"safety: {violation}" for violation in self.violations)
        if self.diagnostic is not None:
            lines.append(self.diagnostic.summary())
        return "\n".join(lines) if lines else "ok"


def guarded_run_until_decided(
    cluster,
    count: int,
    timeout: float = 60.0,
    stall_after: float = 5.0,
    tracer: NetworkTracer | None = None,
    slice_seconds: float = 0.25,
    max_events: int = 2_000_000,
) -> GuardedRun:
    """Run until every correct replica decided ``count`` values, with a
    liveness watchdog converting stalls into diagnostics.

    The watchdog observes between run slices (never from inside the
    event queue), so a guarded run replays the exact same event sequence
    as an unguarded one. On a stall — no replica's decided log grew for
    ``stall_after`` virtual seconds, or the event queue drained with the
    goal unmet — the returned :class:`GuardedRun` carries the first
    structured diagnostic; the run keeps going until ``timeout`` in case
    the stall resolves (e.g. a scheduled heal), so ``decided`` can be
    True even when a transient stall was diagnosed mid-run.
    """
    watchdog = LivenessWatchdog(
        cluster.replicas,
        progress_of=lambda replica: len(replica.decided),
        stall_after=stall_after,
        tracer=tracer,
    )
    sim = cluster.sim
    watchdog.observe(sim.now)
    deadline = sim.now + timeout
    diagnostic: StallDiagnostic | None = None

    def goal_met() -> bool:
        return all(
            len(r.decided) >= count for r in cluster.correct_replicas()
        )

    while sim.now < deadline:
        if goal_met():
            break
        processed = sim.run(
            until=min(deadline, sim.now + slice_seconds), max_events=max_events
        )
        observed = watchdog.observe(sim.now)
        if observed is not None and diagnostic is None:
            diagnostic = observed
        if processed == 0 and sim.pending_events() == 0:
            if not goal_met() and diagnostic is None:
                diagnostic = watchdog.queue_exhausted(sim.now)
            break
    decided = goal_met()
    if not decided and diagnostic is None:
        # Timed out before the stall threshold ever elapsed between
        # slices (e.g. short timeout, or progress froze only near the
        # deadline): still surface the structured diagnostic instead of
        # a bare False.
        diagnostic = watchdog.timed_out(sim.now)
    monitors = list(getattr(cluster, "monitors", []))
    for monitor in monitors:
        monitor.check()  # end-of-run invariants (e.g. durability)
    violations = [
        violation
        for monitor in monitors
        for violation in monitor.violations
    ]
    return GuardedRun(
        decided=decided,
        diagnostic=diagnostic,
        monitors_ok=not violations,
        violations=violations,
    )
