"""Chained HotStuff (Yin et al., PODC 2019).

The linear-communication BFT protocol the paper lists among modern
Byzantine ordering options (section 2.3.3). Each view has one leader who
proposes a node extending the highest known quorum certificate; replicas
vote to the *next* leader, so view change is free ("linearity"). A node
is committed through the three-chain rule: when three consecutive-view
nodes form a chain, the oldest is final.

This implementation follows the event-driven/chained formulation:

* ``highQC`` — highest QC seen; new proposals extend it.
* lock rule — on seeing proposal b*, with b'' = b*.justify.node and
  b' = b''.justify.node: if b' is newer than the locked node, lock b''.
* commit rule — commit b when b'' , b', b are chained with consecutive
  views.
* pacemaker — per-view timers; on timeout replicas send NEW-VIEW with
  their highQC to the next leader, which proposes after n - f of them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest_value(value: Any) -> str:
    return sha256_hex(repr(value))


@dataclass(frozen=True)
class QC:
    """Quorum certificate: n - f votes for one node in one view."""

    view: int
    node_digest: str
    signers: frozenset[str]
    size_bytes: int = 256


@dataclass(frozen=True)
class HSNode:
    """One vertex of the HotStuff chain."""

    view: int
    parent: str  # parent digest ("" for genesis)
    value: Any  # None for a leaf that only advances the chain
    justify: QC | None  # QC for the parent (None only at genesis)

    def digest(self) -> str:
        justify_part = (
            f"{self.justify.view}:{self.justify.node_digest}" if self.justify else "-"
        )
        return sha256_hex(f"{self.view}|{self.parent}|{self.value!r}|{justify_part}")


@dataclass(frozen=True)
class Proposal:
    node: HSNode
    size_bytes: int = 768


@dataclass(frozen=True)
class Vote:
    view: int
    node_digest: str
    voter: str
    size_bytes: int = 128


@dataclass(frozen=True)
class NewView:
    view: int  # the view being abandoned
    high_qc: QC
    sender: str
    size_bytes: int = 384


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


@dataclass(frozen=True)
class FetchNode:
    """Block-sync request: a replica discovered a hole in its chain
    ancestry (a proposal it never received) and asks peers for it."""

    digest: str
    sender: str
    size_bytes: int = 96


@dataclass(frozen=True)
class NodeReply:
    """Block-sync response. Self-certifying: the receiver recomputes the
    node digest, so a Byzantine responder cannot plant a forged node."""

    node: HSNode
    size_bytes: int = 768


class HotStuffReplica(ConsensusReplica):
    """One chained-HotStuff replica."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        genesis = HSNode(view=0, parent="", value=None, justify=None)
        self._genesis_digest = genesis.digest()
        self._nodes: dict[str, HSNode] = {self._genesis_digest: genesis}
        self._committed: set[str] = {self._genesis_digest}
        qc0 = QC(
            view=0,
            node_digest=self._genesis_digest,
            signers=frozenset(config.replica_ids),
        )
        self.high_qc = qc0
        self.locked_qc = qc0
        self.view = 1
        self._voted_view = 0
        self._votes: dict[tuple[int, str], set[str]] = {}
        self._newviews: dict[int, dict[str, QC]] = {}
        self._sent_newview: set[int] = set()
        self._last_proposed_view = 0
        self._grace_scheduled_view = 0
        self._timeout_quorum_seen = -1
        self._requests: dict[str, Any] = {}
        #: value digest -> view it was last proposed in. An undecided
        #: value becomes proposable again after STALE_PROPOSAL_VIEWS,
        #: covering proposals orphaned by loss or forks.
        self._proposed_at: dict[str, int] = {}
        self._decided_value_digests: set[str] = set()
        self._chain_seq = 0
        self._pending_commit_roots: set[str] = set()
        self._view_timer = None
        self._arm_view_timer()
        if self._leader_of(self.view) == self.node_id:
            self.set_timer(0.0, self._maybe_propose)

    # -- helpers ----------------------------------------------------------

    def _leader_of(self, view: int) -> str:
        return self.config.leader_of_view(view)

    def _qc_quorum(self) -> int:
        return self.config.n - self.config.f

    def _node(self, digest: str) -> HSNode | None:
        return self._nodes.get(digest)

    def _arm_view_timer(self) -> None:
        if self._view_timer is not None:
            self._view_timer.cancel()
        # Randomized (Raft-style) timeout: identical deterministic timers
        # across replicas can lock the cluster into a periodic pattern
        # where a replica one view ahead always expires the moment its
        # peers arrive; jitter breaks the alignment.
        delay = self.config.base_timeout * (1.0 + 0.25 * self.sim.rng.random())
        self._view_timer = self.set_timer(
            delay, self._on_view_timeout, label="view"
        )

    def on_recover(self) -> None:
        """Restart semantics: re-arm the view timer so a recovered
        replica rejoins the pacemaker instead of waiting silently."""
        super().on_recover()
        self._arm_view_timer()

    def _has_uncommitted_values(self) -> bool:
        """True while any proposed value has not reached a decision."""
        return any(
            digest not in self._decided_value_digests
            for digest in self._proposed_at
        )

    # -- client path ---------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest_value(value)
        if digest in self._decided_value_digests:
            # Duplicate of a decided request (client retry): retransmit
            # so lagging replicas learn of it, but don't reopen it.
            self.broadcast(ClientRequest(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        if self._leader_of(self.view) == self.node_id:
            self._maybe_propose()

    # -- proposing -------------------------------------------------------------

    STALE_PROPOSAL_VIEWS = 8  # ~2 full 3-chains before re-proposing

    def _next_value(self) -> Any:
        for digest, value in self._requests.items():
            last = self._proposed_at.get(digest)
            if last is None or self.view - last > self.STALE_PROPOSAL_VIEWS:
                self._proposed_at[digest] = self.view
                return value
        return None

    def _maybe_propose(self) -> None:
        if self._leader_of(self.view) != self.node_id:
            return
        if self._last_proposed_view >= self.view:
            return  # one proposal per view; extra values wait their turn
        if self.high_qc.view != self.view - 1:
            # Timeout path: entitled only through a quorum of NEW-VIEWs,
            # and even then after a short grace period — a QC for the
            # previous view may be milliseconds away, and proposing with
            # a stale justify would fork the chain and break the
            # consecutive-view commit rule (all sibling proposals, no
            # 3-chains).
            if not self._newview_quorum(self.view - 1):
                return
            if self._grace_scheduled_view < self.view:
                self._grace_scheduled_view = self.view
                self.set_timer(
                    self.config.base_timeout * 0.05,
                    lambda view=self.view: self._propose_after_grace(view),
                )
                self._arm_view_timer()  # the proposal is coming: be patient
            return
        self._propose_now()

    def _propose_now(self) -> None:
        value = self._next_value()
        if value is None and not self._has_uncommitted_values():
            return  # nothing to order and nothing to flush through the chain
        self._last_proposed_view = self.view
        node = HSNode(
            view=self.view,
            parent=self.high_qc.node_digest,
            value=value,
            justify=self.high_qc,
        )
        self._nodes[node.digest()] = node
        proposal = Proposal(node=node)
        self.broadcast(proposal, targets=self.peers)
        self._on_proposal(self.node_id, proposal)

    def _propose_after_grace(self, view: int) -> None:
        """Timeout-path proposal, after giving the happy path a chance."""
        if self.view != view or self._leader_of(view) != self.node_id:
            return
        if self._last_proposed_view >= view:
            return  # a fresher QC arrived and we proposed the happy way
        self._propose_now()

    def _newview_quorum(self, view: int) -> bool:
        return len(self._newviews.get(view, {})) >= self._qc_quorum()

    # -- dispatch -----------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, ClientRequest):
            digest = _digest_value(message.value)
            if digest not in self._decided_value_digests:
                self._requests.setdefault(digest, message.value)
                if self._leader_of(self.view) == self.node_id:
                    self._maybe_propose()
        elif isinstance(message, Proposal):
            self._on_proposal(src, message)
        elif isinstance(message, Vote):
            self._on_vote(message)
        elif isinstance(message, NewView):
            self._on_new_view(message)
        elif isinstance(message, FetchNode):
            node = self._nodes.get(message.digest)
            if node is not None:
                self.send(message.sender, NodeReply(node=node))
        elif isinstance(message, NodeReply):
            self._on_node_reply(message)

    # -- proposal handling -----------------------------------------------------------

    def _safe_node(self, node: HSNode) -> bool:
        """HotStuff's safeNode predicate: extends the lock, or justifies
        with a QC newer than the lock (liveness rule)."""
        if node.justify is None:
            return False
        if node.parent == self.locked_qc.node_digest:
            return True
        return node.justify.view > self.locked_qc.view

    def _on_proposal(self, src: str, message: Proposal) -> None:
        node = message.node
        if src != self._leader_of(node.view):
            return
        if node.justify is None or node.justify.node_digest != node.parent:
            return
        if len(node.justify.signers) < self._qc_quorum():
            return
        # Check the QC's vote signatures; votes already verified in an
        # earlier certificate (chained QCs re-carry them) are cache hits.
        self._note_certificate(
            node.justify.signers,
            f"{node.justify.view}:{node.justify.node_digest}",
        )
        digest = node.digest()
        self._nodes.setdefault(digest, node)
        if node.value is not None:
            value_digest = _digest_value(node.value)
            if value_digest not in self._decided_value_digests:
                self._requests.setdefault(value_digest, node.value)
        # Chain-state update (lock + commit rules) happens regardless of
        # whether we vote — QCs carry information even in stale views.
        self._update_chain_state(node)
        # Event-driven HotStuff voting rule: vote when the node is newer
        # than anything voted for and satisfies safeNode — even if this
        # replica's pacemaker ran ahead (its vote may complete a QC the
        # chain still needs).
        if node.view <= self._voted_view:
            return
        if not self._safe_node(node):
            return
        self.view = max(self.view, node.view)
        self._voted_view = node.view
        self._arm_view_timer()
        vote = Vote(view=node.view, node_digest=digest, voter=self.node_id)
        # Votes go to the next f + 1 leaders, not only the immediate next
        # one: if leader(v+1) is faulty the QC would otherwise be lost and
        # with round-robin rotation a single crashed replica could
        # periodically destroy every forming 3-chain. O(f * n) messages
        # keeps HotStuff's linearity in n.
        targets = sorted(
            {
                self._leader_of(node.view + offset)
                for offset in range(1, self.config.f + 2)
            }
        )
        for target in targets:
            if target == self.node_id:
                self._on_vote(vote)
            else:
                self.send(target, vote)

    def _update_chain_state(self, b_star: HSNode) -> None:
        if b_star.justify is None:
            return
        if b_star.justify.view > self.high_qc.view:
            self.high_qc = b_star.justify
        b2 = self._node(b_star.justify.node_digest)  # b''
        if b2 is None or b2.justify is None:
            return
        b1 = self._node(b2.justify.node_digest)  # b'
        if b1 is None:
            return
        if b1.view > self._locked_view():
            self.locked_qc = b2.justify
        if b1.justify is None:
            return
        b0 = self._node(b1.justify.node_digest)  # b
        if b0 is None:
            return
        if b2.view == b1.view + 1 and b1.view == b0.view + 1:
            self._commit(b0)

    def _locked_view(self) -> int:
        locked = self._node(self.locked_qc.node_digest)
        return locked.view if locked else 0

    def _commit(self, node: HSNode) -> None:
        """Commit ``node`` and every uncommitted ancestor, oldest first.

        If an ancestor is missing (its proposal was lost), nothing is
        committed: assigning sequence numbers across a gap would diverge
        from the rest of the cluster. The catch-up gossip delivers the
        missing decisions instead.
        """
        chain: list[HSNode] = []
        current: HSNode | None = node
        while current is not None and current.digest() not in self._committed:
            chain.append(current)
            parent_digest = current.parent
            current = self._node(parent_digest)
            if current is None:
                # Hole in the ancestry (a lost proposal): fetch it from
                # peers and retry this commit when it arrives.
                self._pending_commit_roots.add(node.digest())
                self.broadcast(
                    FetchNode(digest=parent_digest, sender=self.node_id),
                    targets=self.peers,
                )
                return
        for member in reversed(chain):
            self._committed.add(member.digest())
            if member.value is None:
                continue
            value_digest = _digest_value(member.value)
            if value_digest in self._decided_value_digests:
                continue  # value re-proposed after an orphaned branch
            self._decided_value_digests.add(value_digest)
            self._decide(self._chain_seq, member.value)
            self._chain_seq += 1
            self._requests.pop(value_digest, None)

    def _after_catchup(self, sequence: int, value: Any) -> None:
        # Keep the chain-commit sequencing aligned with decisions that
        # arrived through catch-up gossip; the chain itself skips values
        # already decided (dedup in _commit).
        self._decided_value_digests.add(_digest_value(value))
        self._chain_seq = max(self._chain_seq, sequence + 1)

    def _on_node_reply(self, message: NodeReply) -> None:
        node = message.node
        digest = node.digest()
        if digest in self._nodes:
            return
        self._nodes[digest] = node
        # A filled hole may unblock stalled commits (possibly exposing
        # deeper holes, which _commit will fetch in turn).
        for root in sorted(self._pending_commit_roots):
            root_node = self._nodes.get(root)
            if root_node is not None:
                self._pending_commit_roots.discard(root)
                self._commit(root_node)

    # -- votes -------------------------------------------------------------------------

    def _on_vote(self, message: Vote) -> None:
        key = (message.view, message.node_digest)
        voters = self._votes.setdefault(key, set())
        voters.add(message.voter)
        if len(voters) < self._qc_quorum():
            return
        qc = QC(
            view=message.view,
            node_digest=message.node_digest,
            signers=frozenset(voters),
        )
        if qc.view > self.high_qc.view:
            self.high_qc = qc
        if message.view + 1 > self.view:
            self.view = message.view + 1
            self._arm_view_timer()
        self._maybe_propose()

    # -- pacemaker ------------------------------------------------------------------------

    def _on_view_timeout(self) -> None:
        # Only escalate when there is work outstanding; otherwise idle.
        if not self._requests and not self._has_uncommitted_values():
            self._arm_view_timer()
            return
        self._abandon_view(self.view)

    def _abandon_view(self, view: int) -> None:
        """Give up on ``view``: broadcast a timeout vote and move on.

        Timeout votes go to *all* replicas (not just the next leader) so
        that replicas whose timers have not fired yet can join as soon
        as they see f + 1 of them — this synchronises views quickly,
        which plain send-to-next-leader pacemakers fail to do.
        """
        if view in self._sent_newview or view < self.view:
            return
        self._sent_newview.add(view)
        self.view = view + 1
        # Values proposed on what may now be an orphaned branch become
        # proposable again; duplicate commits are deduped at decide time.
        for digest in list(self._proposed_at):
            if digest not in self._decided_value_digests:
                del self._proposed_at[digest]
        message = NewView(view=view, high_qc=self.high_qc, sender=self.node_id)
        self.broadcast(message, targets=self.peers)
        for value in self._requests.values():
            self.broadcast(ClientRequest(value=value), targets=self.peers)
        self._on_new_view(message)
        self._arm_view_timer()

    def _on_new_view(self, message: NewView) -> None:
        self._note_certificate(
            message.high_qc.signers,
            f"{message.high_qc.view}:{message.high_qc.node_digest}",
        )
        if message.high_qc.view > self.high_qc.view:
            self.high_qc = message.high_qc
        votes = self._newviews.setdefault(message.view, {})
        votes[message.sender] = message.high_qc
        # f + 1 timeout votes prove a correct replica gave up: join them.
        if (
            len(votes) >= self.config.f + 1
            and message.view >= self.view
            and message.view not in self._sent_newview
        ):
            self._abandon_view(message.view)
        if len(votes) >= self._qc_quorum():
            self._timeout_quorum_seen = max(
                self._timeout_quorum_seen, message.view
            )
            if message.view + 1 > self.view:
                self.view = message.view + 1
                self._arm_view_timer()
        self._maybe_propose()
