"""Byzantine behaviour adapters for safety experiments.

The paper's threat model (section 2.2): a Byzantine node "may act
arbitrarily". These replica variants implement the classic arbitrary
behaviours; the accompanying tests assert that with at most ``f``
attackers, correct replicas never diverge and — where the protocol
promises it — keep making progress.

* :class:`SilentPbftLeader` — accepts requests but never proposes
  (a censoring leader; view change must remove it).
* :class:`WithholdingPbftReplica` — receives everything, sends nothing
  (a fail-silent participant that still counts against quorums).
* :class:`DelayingPbftReplica` — delays every outgoing protocol message
  by a fixed amount (a slow-but-correct participant; consensus must not
  depend on its timeliness).
* ``EquivocatingPbftReplica`` (in ``repro.consensus.pbft``) — proposes
  different values to different halves of the cluster.
"""

from __future__ import annotations

from typing import Any

from repro.consensus.pbft import PbftReplica
from repro.consensus.tendermint import TendermintReplica, TmPrecommit, TmPrevote


class SilentPbftLeader(PbftReplica):
    """Accepts client requests and then censors them while leader."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.byzantine = True

    def _propose(self, value: Any) -> None:
        if self.is_leader:
            return  # censor: swallow the request silently
        super()._propose(value)


class WithholdingPbftReplica(PbftReplica):
    """Processes incoming traffic but never sends a protocol message."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.byzantine = True

    def send(self, dst: str, message: object) -> None:
        return  # withhold everything

    def broadcast(self, message: object, targets=None) -> None:
        return


class DelayingPbftReplica(PbftReplica):
    """Correct but slow: delays all outgoing messages by ``DELAY``."""

    DELAY = 0.2

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.byzantine = True  # excluded from agreement checks anyway

    def send(self, dst: str, message: object) -> None:
        if self.crashed:
            return
        self.sim.schedule(self.DELAY, lambda: super(
            DelayingPbftReplica, self
        ).send(dst, message))

    def broadcast(self, message: object, targets=None) -> None:
        if self.crashed:
            return
        resolved = list(targets) if targets is not None else None
        self.sim.schedule(self.DELAY, lambda: super(
            DelayingPbftReplica, self
        ).broadcast(message, resolved))


def attacker_factory(attack_cls, byzantine_ids: set[str]):
    """A ConsensusCluster factory planting ``attack_cls`` at some ids."""

    def factory(node_id, sim, network, config, on_decide):
        cls = attack_cls if node_id in byzantine_ids else PbftReplica
        return cls(
            node_id=node_id, sim=sim, network=network, config=config,
            on_decide=on_decide,
        )

    return factory


class EquivocatingTendermintValidator(TendermintReplica):
    """Votes one way to half the validators and nil to the rest.

    The classic double-signing attack on vote-based PoS protocols. With
    at most 1/3 of the voting power equivocating, the 2/3 intersection
    argument guarantees correct validators never decide differently.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.byzantine = True

    def broadcast(self, message: object, targets=None) -> None:
        if isinstance(message, (TmPrevote, TmPrecommit)):
            peers = list(targets) if targets is not None else list(self.peers)
            half = len(peers) // 2
            nil_vote = type(message)(
                height=message.height, round=message.round, digest=None,
                sender=self.node_id,
            )
            for peer in peers[:half]:
                self.send(peer, message)
            for peer in peers[half:]:
                self.send(peer, nil_vote)
            return
        super().broadcast(message, targets)
