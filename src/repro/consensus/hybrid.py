"""Hybrid fault-tolerant clusters — the SeeMoRe / UpRight family.

Paper section 2.3.3 lists "a hybrid, e.g., SeeMoRe, UpRight,
fault-tolerant protocol" alongside the pure crash and Byzantine options:
when part of the infrastructure is trusted (a private cloud that can
only crash) and part is not (public-cloud nodes that may be Byzantine),
a protocol sized for the *mixed* threat needs fewer replicas than
treating every fault as Byzantine.

We use the classic hybrid threshold: tolerating ``b`` Byzantine plus
``c`` crash faults requires

    n = 3b + 2c + 1   replicas with quorums of   q = 2b + c + 1.

Setting ``c = 0`` recovers PBFT's 3f+1 / 2f+1; setting ``b = 0`` (not
allowed here — use a crash protocol) would recover 2f+1 majorities. The
saving the paper's systems exploit: tolerating (b=1, c=2) costs 8 nodes
instead of the 10 a pure-Byzantine deployment (f=3) would need.

:func:`make_hybrid_cluster` wires a PBFT cluster with these thresholds;
any quorum-based replica class works, since the thresholds flow through
``ClusterConfig.quorum``.
"""

from __future__ import annotations

from typing import Callable

from repro.common.errors import ConfigError
from repro.consensus.base import ConsensusCluster, ConsensusReplica
from repro.consensus.pbft import PbftReplica


def hybrid_cluster_size(byzantine: int, crash: int) -> int:
    """Minimum replicas to tolerate ``byzantine`` + ``crash`` faults."""
    if byzantine < 1 or crash < 0:
        raise ConfigError("hybrid sizing needs byzantine >= 1, crash >= 0")
    return 3 * byzantine + 2 * crash + 1


def hybrid_quorum(byzantine: int, crash: int) -> int:
    """Quorum size matching :func:`hybrid_cluster_size`."""
    if byzantine < 1 or crash < 0:
        raise ConfigError("hybrid sizing needs byzantine >= 1, crash >= 0")
    return 2 * byzantine + crash + 1


def pure_byzantine_size(total_faults: int) -> int:
    """Replicas needed when every fault must be treated as Byzantine —
    the baseline a hybrid deployment improves on."""
    return 3 * total_faults + 1


def make_hybrid_cluster(
    byzantine: int,
    crash: int,
    replica_factory: Callable[..., ConsensusReplica] = PbftReplica,
    seed: int = 0,
    **kwargs,
) -> ConsensusCluster:
    """A consensus cluster sized for the hybrid (b, c) fault mix."""
    n = hybrid_cluster_size(byzantine, crash)
    return ConsensusCluster(
        replica_factory,
        n=n,
        byzantine=True,
        seed=seed,
        hybrid=(byzantine, crash),
        **kwargs,
    )
