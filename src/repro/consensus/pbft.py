"""Practical Byzantine Fault Tolerance (Castro & Liskov 1999).

The canonical ordering protocol for permissioned blockchains (paper
section 2.2): ``n = 3f + 1`` replicas survive ``f`` Byzantine faults.
A request flows pre-prepare → prepare (2f + 1 matching) → commit
(2f + 1 matching) → decide; a faulty or slow leader is replaced by the
view-change / new-view subprotocol; periodic checkpoints garbage-collect
the message log.

An :class:`EquivocatingPbftReplica` is included for safety experiments:
a Byzantine leader that proposes different values to different halves of
the cluster. Tests assert that equivocation can stall progress but never
yields divergent commits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.crypto.digests import sha256_hex
from repro.consensus.base import ClusterConfig, ConsensusReplica


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


#: Null request (Castro & Liskov section 4.4): a new leader fills
#: sequence gaps below its high-water mark with pre-prepares for this
#: value, so the in-order decided log can always drain. Safe: a gap is
#: only filled when no prepared certificate for it exists anywhere in
#: the view-change quorum, and quorum intersection guarantees any
#: *decided* sequence has such a certificate in every quorum.
NOOP = "__pbft-null__"


@dataclass(frozen=True)
class Request:
    value: Any
    size_bytes: int = 512


@dataclass(frozen=True)
class PrePrepare:
    view: int
    seq: int
    digest: str
    value: Any
    size_bytes: int = 640


@dataclass(frozen=True)
class Prepare:
    view: int
    seq: int
    digest: str
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Commit:
    view: int
    seq: int
    digest: str
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Checkpoint:
    seq: int
    digest: str
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class ViewChange:
    new_view: int
    #: Prepared-but-undecided entries: (seq, digest, value, view prepared in).
    prepared: tuple[tuple[int, str, Any, int], ...]
    #: Known undecided client requests, so the new leader can re-propose.
    pending: tuple[Any, ...]
    #: Highest sequence this replica has decided (new leader must
    #: continue past it, never reuse a decided slot).
    last_decided: int
    sender: str
    size_bytes: int = 1024


@dataclass(frozen=True)
class NewView:
    new_view: int
    preprepares: tuple[PrePrepare, ...]
    size_bytes: int = 1024


@dataclass
class _SlotState:
    """Per-(view, seq) progress record."""

    digest: str | None = None
    value: Any = None
    prepares: set[str] = field(default_factory=set)
    commits: set[str] = field(default_factory=set)
    prepared: bool = False
    commit_sent: bool = False


class PbftReplica(ConsensusReplica):
    """One PBFT replica."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self.view = 0
        self.byzantine = False
        self._next_seq = 0  # leader's proposal counter
        self._slots: dict[tuple[int, int], _SlotState] = {}
        self._requests: dict[str, Any] = {}  # digest -> undecided value
        #: digest -> sequence this replica last proposed the value at.
        #: Slot-aware so a value whose sequence was filled with a null
        #: request in a later view can be proposed again.
        self._seq_of: dict[str, int] = {}
        self._view_change_votes: dict[int, dict[str, ViewChange]] = {}
        self._in_view_change = False
        self._view_change_target = 0
        self._view_timer = None
        self._timeout_factor = 1.0
        self._checkpoint_votes: dict[int, set[str]] = {}
        self._stable_checkpoint = 0
        self._future_buffer: list[tuple[str, Any]] = []

    # -- helpers -------------------------------------------------------------

    @property
    def is_leader(self) -> bool:
        return self.config.leader_of_view(self.view) == self.node_id

    def _leader(self) -> str:
        return self.config.leader_of_view(self.view)

    def _slot(self, view: int, seq: int) -> _SlotState:
        return self._slots.setdefault((view, seq), _SlotState())

    def _arm_timer(self, restart: bool = False) -> None:
        """Manage the view-progress timer (Castro & Liskov section 4.4).

        A backup *starts* the timer when it is waiting on a request and
        the timer is not already running, and *restarts* it only when
        progress happens (a decision, a view entered). Duplicate client
        retransmissions must NOT reset a running timer — that would
        postpone the timeout forever and starve the view change exactly
        when the cluster is wedged (a liveness bug the DST fuzzer found).

        The timer also stays armed while decided-but-unreleased slots
        exist (``_out_of_order`` nonempty): a hole below them blocks the
        in-order log, and only a view change (whose new leader null-fills
        gaps) can plug it once ``_requests`` has drained.
        """
        if not self._requests and not self._out_of_order:
            if self._view_timer is not None:
                self._view_timer.cancel()
                self._view_timer = None
            return
        if self._view_timer is not None and self._view_timer.pending:
            if not restart:
                return
            self._view_timer.cancel()
        delay = self.config.base_timeout * self._timeout_factor
        self._view_timer = self.set_timer(
            delay, self._on_progress_timeout, label="view-progress"
        )

    def on_recover(self) -> None:
        """Restart semantics: re-arm the view-progress timer for any
        undecided requests (pre-crash timers died with the crash)."""
        super().on_recover()
        self._arm_timer(restart=True)

    # -- client path ----------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._decided_digests():
            # Duplicate of an already-decided request (client retry):
            # retransmit so laggards learn of it, but never reopen it
            # locally — a decided digest parked in ``_requests`` makes
            # the progress timer demand view changes for work that is
            # already done, wedging this replica in a view change no
            # one else wants (a liveness bug the DST fuzzer found).
            self.broadcast(Request(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        # As in PBFT, the request reaches every replica (not only the
        # leader) so that all replicas can time out and demand a view
        # change if the leader never orders it.
        self.broadcast(Request(value=value), targets=self.peers)
        if self.is_leader and not self._in_view_change:
            self._propose(value)
        self._arm_timer()

    def _propose(self, value: Any) -> None:
        digest = _digest(value)
        seq = self._seq_of.get(digest)
        if seq is not None:
            if not self.has_decided(seq):
                return  # still in flight at that sequence
            if _digest(self._decided_at[seq]) == digest:
                return  # already decided there
            # Sequence was decided with something else (null fill):
            # fall through and re-propose at a fresh sequence.
        seq = self._next_seq
        self._next_seq += 1
        self._seq_of[digest] = seq
        message = PrePrepare(view=self.view, seq=seq, digest=digest, value=value)
        self.broadcast(message, targets=self.peers)
        self._accept_preprepare(message)

    # -- message dispatch -------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        # Messages from a future view (e.g. a new leader's pre-prepare
        # racing ahead of its NEW-VIEW) are buffered and replayed once
        # this replica enters that view, instead of being lost.
        view = getattr(message, "view", None)
        if view is not None and view > self.view:
            self._future_buffer.append((src, message))
            return
        if isinstance(message, Request):
            self._on_request(message)
        elif isinstance(message, PrePrepare):
            self._on_preprepare(src, message)
        elif isinstance(message, Prepare):
            self._on_prepare(message)
        elif isinstance(message, Commit):
            self._on_commit(message)
        elif isinstance(message, Checkpoint):
            self._on_checkpoint(message)
        elif isinstance(message, ViewChange):
            self._on_view_change(message)
        elif isinstance(message, NewView):
            self._on_new_view(src, message)

    def _on_request(self, message: Request) -> None:
        digest = _digest(message.value)
        if digest in self._decided_digests():
            return
        self._requests.setdefault(digest, message.value)
        if self.is_leader and not self._in_view_change:
            self._propose(message.value)
        self._arm_timer()

    def _decided_digests(self) -> set[str]:
        return {_digest(v) for v in self._decided_at.values()}

    # -- normal case ------------------------------------------------------------

    def _on_preprepare(self, src: str, message: PrePrepare) -> None:
        if message.view != self.view or self._in_view_change:
            return
        if src != self.config.leader_of_view(message.view):
            return  # only the view's leader may pre-prepare
        self._accept_preprepare(message)

    def _accept_preprepare(self, message: PrePrepare) -> None:
        slot = self._slot(message.view, message.seq)
        if slot.digest is not None and slot.digest != message.digest:
            return  # equivocation: refuse the second digest for this slot
        if slot.digest is None:
            slot.digest = message.digest
            slot.value = message.value
        # Learn the request from the pre-prepare: if later protocol
        # messages are lost, this replica can now demand a view change
        # that re-proposes the value (loss robustness).
        if not self.has_decided(message.seq):
            self._requests.setdefault(message.digest, message.value)
            self._arm_timer()
        # The leader's pre-prepare counts as its prepare vote.
        slot.prepares.add(self.config.leader_of_view(message.view))
        if self.node_id != self.config.leader_of_view(message.view):
            prepare = Prepare(
                view=message.view,
                seq=message.seq,
                digest=message.digest,
                sender=self.node_id,
            )
            self.broadcast(prepare, targets=self.peers)
            slot.prepares.add(self.node_id)
        self._check_prepared(message.view, message.seq)

    def _on_prepare(self, message: Prepare) -> None:
        if message.view != self.view or self._in_view_change:
            return
        slot = self._slot(message.view, message.seq)
        if slot.digest is not None and slot.digest != message.digest:
            return
        slot.prepares.add(message.sender)
        self._check_prepared(message.view, message.seq)

    def _check_prepared(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.prepared or slot.digest is None:
            return
        if len(slot.prepares) >= self.config.quorum:
            slot.prepared = True
            # The prepared certificate's vote signatures are checked as
            # it forms; votes seen in an earlier view's certificate for
            # the same digest are cache hits.
            self._note_certificate(
                slot.prepares, f"prepare:{seq}:{slot.digest}"
            )
            if not slot.commit_sent:
                slot.commit_sent = True
                commit = Commit(
                    view=view, seq=seq, digest=slot.digest, sender=self.node_id
                )
                self.broadcast(commit, targets=self.peers)
                slot.commits.add(self.node_id)
            self._check_committed(view, seq)

    def _on_commit(self, message: Commit) -> None:
        slot = self._slot(message.view, message.seq)
        if slot.digest is not None and slot.digest != message.digest:
            return
        slot.commits.add(message.sender)
        self._check_committed(message.view, message.seq)

    def _check_committed(self, view: int, seq: int) -> None:
        slot = self._slot(view, seq)
        if slot.digest is None or not slot.prepared:
            return
        if len(slot.commits) < self.config.quorum:
            return
        if self.has_decided(seq):
            return
        self._note_certificate(slot.commits, f"commit:{seq}:{slot.digest}")
        self._decide(seq, slot.value)
        self._requests.pop(slot.digest, None)
        self._timeout_factor = 1.0
        self._arm_timer(restart=True)  # progress: restart the timeout
        self._maybe_checkpoint(seq)

    # -- checkpoints ---------------------------------------------------------------

    def _maybe_checkpoint(self, seq: int) -> None:
        interval = self.config.checkpoint_interval
        if (seq + 1) % interval != 0:
            return
        digest = sha256_hex(repr(self.decided[: seq + 1]))
        message = Checkpoint(seq=seq, digest=digest, sender=self.node_id)
        self.broadcast(message, targets=self.peers)
        self._on_checkpoint(message)

    def _on_checkpoint(self, message: Checkpoint) -> None:
        votes = self._checkpoint_votes.setdefault(message.seq, set())
        votes.add(message.sender)
        if len(votes) >= self.config.quorum and message.seq > self._stable_checkpoint:
            self._stable_checkpoint = message.seq
            # Garbage-collect slot state at or below the stable checkpoint.
            for key in [k for k in self._slots if k[1] <= message.seq]:
                del self._slots[key]

    # -- view change ------------------------------------------------------------------

    def _on_progress_timeout(self) -> None:
        # Drop entries that were decided through a path that missed the
        # bookkeeping (defence in depth): never demand a view change for
        # work that is already done.
        decided = self._decided_digests()
        self._requests = {
            d: v for d, v in self._requests.items() if d not in decided
        }
        if not self._requests and not self._out_of_order:
            self._view_timer = None
            return
        self._start_view_change(max(self.view, self._view_change_target) + 1)

    def _start_view_change(self, new_view: int) -> None:
        if new_view <= self.view:
            return
        if self._in_view_change and new_view <= self._view_change_target:
            return
        self._view_change_target = new_view
        self._in_view_change = True
        self._timeout_factor *= 2  # exponential backoff across failed views
        # Report every prepared certificate above the stable checkpoint —
        # including ones this replica already decided (as in the paper's
        # P set). Omitting decided slots lets a new leader skip a
        # sequence some replicas decided and others never saw, leaving a
        # permanent hole in the in-order log.
        prepared = tuple(
            (seq, slot.digest, slot.value, view)
            for (view, seq), slot in sorted(self._slots.items())
            if slot.prepared
        )
        message = ViewChange(
            new_view=new_view,
            prepared=prepared,
            pending=tuple(self._requests.values()),
            last_decided=max(self._decided_at, default=-1),
            sender=self.node_id,
        )
        self.broadcast(message, targets=self.peers)
        # Retransmit pending requests: the original client broadcast may
        # have been lost to some replicas (they need it to join future
        # view changes and to survive re-proposal).
        for value in self._requests.values():
            self.broadcast(Request(value=value), targets=self.peers)
        self._on_view_change(message)
        # Keep ticking in case this view change also stalls (restart:
        # the new, backed-off timeout replaces the one that just fired).
        self._arm_timer(restart=True)

    def _on_view_change(self, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        votes = self._view_change_votes.setdefault(message.new_view, {})
        votes[message.sender] = message
        # A replica that sees f+1 view changes joins (it knows a correct
        # replica timed out), preventing laggards from splitting views.
        if (
            len(votes) >= self.config.f + 1
            and not self._in_view_change
        ):
            self._start_view_change(message.new_view)
        if (
            self.config.leader_of_view(message.new_view) == self.node_id
            and len(votes) >= self.config.quorum
        ):
            self._become_leader(message.new_view, list(votes.values()))

    def _become_leader(self, new_view: int, votes: list[ViewChange]) -> None:
        if self.view >= new_view:
            return
        self._enter_view(new_view)
        # Re-propose every prepared-but-undecided entry at its sequence,
        # picking the prepared proof from the highest view.
        best: dict[int, tuple[int, str, Any]] = {}
        pending: dict[str, Any] = {}
        max_seq = self._next_seq - 1
        for vote in votes:
            for seq, digest, value, view in vote.prepared:
                current = best.get(seq)
                if current is None or view > current[0]:
                    best[seq] = (view, digest, value)
            for value in vote.pending:
                pending[_digest(value)] = value
            max_seq = max(max_seq, vote.last_decided)
        max_seq = max(max_seq, max(self._decided_at, default=-1))
        entries: dict[int, tuple[str, Any]] = {}
        for seq, (_, digest, value) in best.items():
            entries[seq] = (digest, value)
            pending.pop(digest, None)
            max_seq = max(max_seq, seq)
        # Fill the gaps: re-propose what we decided there, or a null
        # request when no certificate for the sequence exists anywhere
        # in the quorum (section 4.4's null-request rule).
        for seq in range(max_seq + 1):
            if seq in entries:
                continue
            value = (
                self._decided_at[seq] if self.has_decided(seq) else NOOP
            )
            entries[seq] = (_digest(value), value)
        preprepares = [
            PrePrepare(view=new_view, seq=seq, digest=digest, value=value)
            for seq, (digest, value) in sorted(entries.items())
        ]
        self._next_seq = max_seq + 1
        # Forget stale proposal records for sequences this new view
        # reassigns to a different digest, then record the new ones.
        for seq, (digest, _) in entries.items():
            for old_digest, old_seq in list(self._seq_of.items()):
                if old_seq == seq and old_digest != digest:
                    del self._seq_of[old_digest]
        for preprepare in preprepares:
            self._seq_of[preprepare.digest] = preprepare.seq
        self.broadcast(NewView(new_view=new_view, preprepares=tuple(preprepares)),
                       targets=self.peers)
        for preprepare in preprepares:
            self._accept_preprepare(preprepare)
        # Fresh proposals for requests that were never prepared.
        for digest, value in pending.items():
            if not self.has_decided_value(digest):
                self._requests.setdefault(digest, value)
                self._propose(value)
        self._arm_timer(restart=True)  # new view entered: fresh timeout

    def has_decided_value(self, digest: str) -> bool:
        return digest in self._decided_digests()

    def _on_new_view(self, src: str, message: NewView) -> None:
        if message.new_view < self.view:
            return
        if src != self.config.leader_of_view(message.new_view):
            return
        self._enter_view(message.new_view)
        for preprepare in message.preprepares:
            self._accept_preprepare(preprepare)
        # Re-forward still-undecided requests to the new leader.
        for value in list(self._requests.values()):
            self.send(self._leader(), Request(value=value))
        self._arm_timer(restart=True)  # new view entered: fresh timeout

    def _enter_view(self, view: int) -> None:
        self.view = view
        self._in_view_change = False
        self._view_change_votes = {
            v: votes for v, votes in self._view_change_votes.items() if v > view
        }
        buffered, self._future_buffer = self._future_buffer, []
        for src, message in buffered:
            self.deliver(src, message)


class EquivocatingPbftReplica(PbftReplica):
    """A Byzantine leader that equivocates: it sends one value to the
    first half of its peers and a different value to the rest.

    Used by safety experiments — correct replicas must never commit two
    different values at one sequence, no matter what this node does.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.byzantine = True

    def _propose(self, value: Any) -> None:
        if not self.is_leader:
            return
        seq = self._next_seq
        self._next_seq += 1
        forged = ("forged", repr(value))
        half = len(self.peers) // 2
        for peer in self.peers[:half]:
            self.send(peer, PrePrepare(
                view=self.view, seq=seq, digest=_digest(value), value=value))
        for peer in self.peers[half:]:
            self.send(peer, PrePrepare(
                view=self.view, seq=seq, digest=_digest(forged), value=forged))
