"""Raft (Ongaro & Ousterhout 2014) — crash fault-tolerant ordering.

Fabric's production ordering service and Quorum's CFT option are
Raft-based (paper sections 2.3.2/2.3.3). ``n = 2f + 1`` replicas survive
``f`` crash faults: randomized election timeouts elect a leader per
term, the leader replicates a log via AppendEntries, and an entry is
committed once a majority stores it in the leader's current term.

As with the PBFT implementation, client values are broadcast to every
replica so that a value submitted through a crashed leader survives —
whichever replica wins the next election proposes all undecided values
it knows.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any

from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


#: Filler entry a new leader appends when its log ends in uncommitted
#: entries from earlier terms (Raft paper §8). Such entries can never
#: satisfy the current-term commit rule on their own, so without this a
#: leader that already inherited every pending value from its crashed
#: predecessor would stall forever. The no-op is decided like any other
#: entry (sequence numbers are log indices) and simply carries a value
#: no client ever submits.
NOOP = "__raft_noop__"


class Role(enum.Enum):
    FOLLOWER = "follower"
    CANDIDATE = "candidate"
    LEADER = "leader"


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


@dataclass(frozen=True)
class RequestVote:
    term: int
    candidate: str
    last_log_index: int
    last_log_term: int
    size_bytes: int = 128


@dataclass(frozen=True)
class VoteReply:
    term: int
    voter: str
    granted: bool
    size_bytes: int = 128


@dataclass(frozen=True)
class AppendEntries:
    term: int
    leader: str
    prev_log_index: int
    prev_log_term: int
    entries: tuple[tuple[int, Any], ...]  # (term, value) pairs
    leader_commit: int

    @property
    def size_bytes(self) -> int:
        return 128 + 512 * len(self.entries)


@dataclass(frozen=True)
class AppendReply:
    term: int
    follower: str
    success: bool
    match_index: int
    size_bytes: int = 128


class RaftReplica(ConsensusReplica):
    """One Raft replica (crash fault model — set ``byzantine=False``)."""

    HEARTBEAT_DIVISOR = 4  # heartbeat period = election timeout / divisor

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self.role = Role.FOLLOWER
        self.term = 0
        self.voted_for: str | None = None
        self.log: list[tuple[int, Any]] = []  # (term, value)
        self.commit_index = -1
        self._known_leader: str | None = None
        self._votes: set[str] = set()
        self._next_index: dict[str, int] = {}
        self._match_index: dict[str, int] = {}
        self._requests: dict[str, Any] = {}  # undecided client values
        self._appended_digests: set[str] = set()
        self._election_timer = None
        self._heartbeat_timer = None
        self._last_forward = -1.0
        self._reset_election_timer()

    # -- timers -----------------------------------------------------------

    def _election_timeout(self) -> float:
        base = self.config.base_timeout
        return self.sim.rng.uniform(base, 2 * base)

    def _reset_election_timer(self) -> None:
        if self._election_timer is not None:
            self._election_timer.cancel()
        self._election_timer = self.set_timer(
            self._election_timeout(), self._on_election_timeout,
            label="election",
        )

    def _start_heartbeats(self) -> None:
        period = self.config.base_timeout / self.HEARTBEAT_DIVISOR

        def beat() -> None:
            if self.role is Role.LEADER:
                self._replicate_to_all()
                self._heartbeat_timer = self.set_timer(
                    period, beat, label="heartbeat"
                )

        self._heartbeat_timer = self.set_timer(0.0, beat, label="heartbeat")

    def on_recover(self) -> None:
        """Restart semantics: come back as a follower with a fresh
        election timer — pre-crash leadership (and its heartbeat timer)
        died with the crash."""
        super().on_recover()
        self.role = Role.FOLLOWER
        self._votes = set()
        self._reset_election_timer()

    # -- client path -------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._decided_at_digests():
            # Duplicate of a committed request (client retry): retransmit
            # so lagging followers learn of it, but don't reopen it.
            self.broadcast(ClientRequest(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        if self.role is Role.LEADER:
            self._leader_append(value)

    def _leader_append(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._appended_digests:
            return
        self._appended_digests.add(digest)
        self.log.append((self.term, value))
        self._replicate_to_all()

    # -- dispatch ------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        term = getattr(message, "term", None)
        if term is not None and term > self.term:
            self._step_down(term)
        if isinstance(message, ClientRequest):
            self._on_client_request(message)
        elif isinstance(message, RequestVote):
            self._on_request_vote(message)
        elif isinstance(message, VoteReply):
            self._on_vote_reply(message)
        elif isinstance(message, AppendEntries):
            self._on_append_entries(message)
        elif isinstance(message, AppendReply):
            self._on_append_reply(message)

    def _on_client_request(self, message: ClientRequest) -> None:
        digest = _digest(message.value)
        if digest in self._decided_at_digests():
            return
        self._requests.setdefault(digest, message.value)
        if self.role is Role.LEADER:
            self._leader_append(message.value)

    def _decided_at_digests(self) -> set[str]:
        return {_digest(v) for v in self._decided_at.values()}

    # -- elections ---------------------------------------------------------------

    def _on_election_timeout(self) -> None:
        if self.role is Role.LEADER:
            return
        self.role = Role.CANDIDATE
        self.term += 1
        self.voted_for = self.node_id
        self._votes = {self.node_id}
        self._known_leader = None
        last_index = len(self.log) - 1
        last_term = self.log[-1][0] if self.log else 0
        self.broadcast(
            RequestVote(
                term=self.term,
                candidate=self.node_id,
                last_log_index=last_index,
                last_log_term=last_term,
            ),
            targets=self.peers,
        )
        self._reset_election_timer()

    def _on_request_vote(self, message: RequestVote) -> None:
        grant = False
        if message.term == self.term and self.voted_for in (None, message.candidate):
            my_last_term = self.log[-1][0] if self.log else 0
            my_last_index = len(self.log) - 1
            up_to_date = (message.last_log_term, message.last_log_index) >= (
                my_last_term,
                my_last_index,
            )
            if up_to_date:
                grant = True
                self.voted_for = message.candidate
                self._reset_election_timer()
        self.send(
            message.candidate,
            VoteReply(term=self.term, voter=self.node_id, granted=grant),
        )

    def _on_vote_reply(self, message: VoteReply) -> None:
        if self.role is not Role.CANDIDATE or message.term != self.term:
            return
        if message.granted:
            self._votes.add(message.voter)
        if len(self._votes) >= self.config.quorum:
            self._become_leader()

    def _become_leader(self) -> None:
        self.role = Role.LEADER
        self._known_leader = self.node_id
        next_index = len(self.log)
        self._next_index = {peer: next_index for peer in self.peers}
        self._match_index = {peer: -1 for peer in self.peers}
        self._appended_digests = {_digest(v) for _, v in self.log}
        # Propose every undecided value this replica knows about.
        for value in list(self._requests.values()):
            self._leader_append(value)
        # Raft §8 liveness: if the log still ends in uncommitted
        # old-term entries (every pending value was already inherited
        # from the deposed leader, so nothing new was appended above),
        # drive them to commitment with a current-term no-op.
        if (
            self.log
            and self.log[-1][0] != self.term
            and len(self.log) - 1 > self.commit_index
        ):
            self.log.append((self.term, NOOP))
        self._start_heartbeats()

    def _step_down(self, term: int) -> None:
        self.term = term
        self.role = Role.FOLLOWER
        self.voted_for = None
        self._votes = set()
        if self._heartbeat_timer is not None:
            self._heartbeat_timer.cancel()
        self._reset_election_timer()

    # -- log replication --------------------------------------------------------------

    def _replicate_to_all(self) -> None:
        for peer in self.peers:
            self._replicate_to(peer)

    def _replicate_to(self, peer: str) -> None:
        next_index = self._next_index.get(peer, len(self.log))
        prev_index = next_index - 1
        prev_term = self.log[prev_index][0] if prev_index >= 0 else 0
        entries = tuple(self.log[next_index:])
        self.send(
            peer,
            AppendEntries(
                term=self.term,
                leader=self.node_id,
                prev_log_index=prev_index,
                prev_log_term=prev_term,
                entries=entries,
                leader_commit=self.commit_index,
            ),
        )

    def _on_append_entries(self, message: AppendEntries) -> None:
        if message.term < self.term:
            self.send(
                message.leader,
                AppendReply(
                    term=self.term,
                    follower=self.node_id,
                    success=False,
                    match_index=-1,
                ),
            )
            return
        self._known_leader = message.leader
        self.role = Role.FOLLOWER
        self._reset_election_timer()
        # Loss robustness: re-forward undecided client values with each
        # heartbeat window, so a value stranded on a follower (e.g. its
        # original broadcast was lost or its leader was deposed) reaches
        # the current leader eventually.
        if self._requests and self.sim.now - self._last_forward > (
            self.config.base_timeout
        ):
            self._last_forward = self.sim.now
            for value in self._requests.values():
                self.send(message.leader, ClientRequest(value=value))
        # Consistency check on the entry preceding the batch.
        if message.prev_log_index >= 0:
            if (
                message.prev_log_index >= len(self.log)
                or self.log[message.prev_log_index][0] != message.prev_log_term
            ):
                self.send(
                    message.leader,
                    AppendReply(
                        term=self.term,
                        follower=self.node_id,
                        success=False,
                        match_index=-1,
                    ),
                )
                return
        # Truncate conflicts and append.
        insert_at = message.prev_log_index + 1
        for offset, entry in enumerate(message.entries):
            index = insert_at + offset
            if index < len(self.log):
                if self.log[index][0] != entry[0]:
                    del self.log[index:]
                    self.log.append(entry)
            else:
                self.log.append(entry)
        if message.leader_commit > self.commit_index:
            self._advance_commit(
                min(message.leader_commit, len(self.log) - 1)
            )
        self.send(
            message.leader,
            AppendReply(
                term=self.term,
                follower=self.node_id,
                success=True,
                match_index=insert_at + len(message.entries) - 1,
            ),
        )

    def _on_append_reply(self, message: AppendReply) -> None:
        if self.role is not Role.LEADER or message.term != self.term:
            return
        peer = message.follower
        if message.success:
            self._match_index[peer] = max(
                self._match_index.get(peer, -1), message.match_index
            )
            self._next_index[peer] = self._match_index[peer] + 1
            self._advance_leader_commit()
        else:
            # Back up one entry and retry (the classic nextIndex probe).
            self._next_index[peer] = max(0, self._next_index.get(peer, 1) - 1)
            self._replicate_to(peer)

    def _advance_leader_commit(self) -> None:
        for index in range(len(self.log) - 1, self.commit_index, -1):
            if self.log[index][0] != self.term:
                continue  # Raft commits only current-term entries directly
            stored = 1 + sum(
                1 for peer in self.peers if self._match_index.get(peer, -1) >= index
            )
            if stored >= self.config.quorum:
                self._advance_commit(index)
                break

    def _advance_commit(self, new_commit: int) -> None:
        while self.commit_index < new_commit:
            self.commit_index += 1
            term, value = self.log[self.commit_index]
            self._decide(self.commit_index, value)
            self._requests.pop(_digest(value), None)
