"""Tendermint (Kwon 2014) — PBFT-family consensus with proof-of-stake.

The paper (section 2.3.3) highlights three Tendermint particulars, all
modelled here:

* only *validators* participate, and their **voting power corresponds to
  bonded stake** — "one-third or two-thirds of the validators are defined
  based on the proportions of the total voting power, not the number of
  validators". Thresholds here are power-weighted (> 2/3 of total power).
* **leader rotation**: the proposer changes every round, in a weighted
  round-robin proportional to stake.
* heights are decided strictly one at a time (no pipelining), each
  height running propose → prevote → precommit rounds with value
  locking for safety across rounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import ConfigError
from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


@dataclass(frozen=True)
class TmProposal:
    height: int
    round: int
    value: Any
    valid_round: int  # -1 when proposing fresh
    proposer: str
    size_bytes: int = 768


@dataclass(frozen=True)
class TmPrevote:
    height: int
    round: int
    digest: str | None  # None = nil vote
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class TmPrecommit:
    height: int
    round: int
    digest: str | None
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


def proposer_schedule(replica_ids: list[str], weights: dict[str, int]) -> list[str]:
    """Weighted round-robin proposer order: each validator appears in the
    schedule proportionally to its voting power."""
    schedule: list[str] = []
    for rid in replica_ids:
        weight = weights.get(rid, 1)
        if weight <= 0:
            raise ConfigError(f"validator {rid} must have positive power")
        schedule.extend([rid] * weight)
    return schedule


class TendermintReplica(ConsensusReplica):
    """One Tendermint validator."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self.weights = config.weights or {rid: 1 for rid in config.replica_ids}
        self._schedule = proposer_schedule(config.replica_ids, self.weights)
        self.total_power = sum(self.weights.values())
        self.height = 0
        self.round = 0
        self.locked_value: Any = None
        self.locked_round = -1
        self.valid_value: Any = None
        self.valid_round = -1
        self._requests: dict[str, Any] = {}
        self._proposals: dict[tuple[int, int], TmProposal] = {}
        self._prevotes: dict[tuple[int, int], dict[str, str | None]] = {}
        self._precommits: dict[tuple[int, int], dict[str, str | None]] = {}
        self._values: dict[str, Any] = {}  # digest -> value
        self._prevoted: set[tuple[int, int]] = set()
        self._precommitted: set[tuple[int, int]] = set()
        self._round_timer = None
        self._active = False
        self._future: list[tuple[str, Any]] = []
        #: round -> senders seen at that round of the current height;
        #: drives the round-skip rule (f+1 messages from a higher round
        #: => jump to it).
        self._round_peers: dict[int, set[str]] = {}

    # -- power accounting ----------------------------------------------------

    def power_of(self, sender: str) -> int:
        return self.weights.get(sender, 0)

    def _has_supermajority(self, votes: dict[str, str | None],
                           digest: str | None) -> bool:
        power = sum(self.power_of(s) for s, d in votes.items() if d == digest)
        return 3 * power > 2 * self.total_power

    def _any_supermajority(self, votes: dict[str, str | None]) -> str | None | bool:
        """Digest (or None for nil) holding > 2/3 power, else False."""
        tally: dict[str | None, int] = {}
        for sender, digest in votes.items():
            tally[digest] = tally.get(digest, 0) + self.power_of(sender)
        for digest, power in tally.items():
            if 3 * power > 2 * self.total_power:
                return digest
        return False

    def proposer(self, height: int, round_: int) -> str:
        return self._schedule[(height + round_) % len(self._schedule)]

    # -- client path ------------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._decided_value_digests():
            # Duplicate of a decided request (client retry): retransmit
            # so lagging validators learn of it, but don't reopen it —
            # a stale entry in ``_requests`` would get re-proposed (and
            # re-decided) at a fresh height.
            self.broadcast(ClientRequest(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        self._ensure_active()

    def _ensure_active(self) -> None:
        if not self._active and self._requests:
            self._active = True
            self._start_round(self.round)

    def on_recover(self) -> None:
        """Restart semantics: if the replica was mid-consensus, re-arm
        the round timer so it times out and rejoins via round change."""
        super().on_recover()
        if self._active:
            self._round_timer = self.set_timer(
                self._round_timeout(), self._on_round_timeout, label="round"
            )

    # -- round machinery ----------------------------------------------------------

    def _round_timeout(self) -> float:
        return self.config.base_timeout * (1.0 + 0.25 * self.round)

    def _start_round(self, round_: int) -> None:
        self.round = round_
        key = (self.height, round_)
        self._round_peers = {
            r: s for r, s in self._round_peers.items() if r > round_
        }
        if self._round_timer is not None:
            self._round_timer.cancel()
        self._round_timer = self.set_timer(
            self._round_timeout(), self._on_round_timeout, label="round"
        )
        if self.proposer(self.height, round_) != self.node_id:
            # If this round's proposal already arrived while we lagged
            # behind (round skip), act on it now instead of waiting for
            # a retransmission that will never come.
            pending = self._proposals.get(key)
            if pending is not None and key not in self._prevoted:
                self._on_proposal(pending.proposer, pending)
            return
        if self.valid_value is not None:
            value, valid_round = self.valid_value, self.valid_round
        else:
            value = self._pick_value()
            valid_round = -1
        if value is None:
            return  # nothing to propose; stay silent, others will nil-vote
        proposal = TmProposal(
            height=self.height,
            round=round_,
            value=value,
            valid_round=valid_round,
            proposer=self.node_id,
        )
        self.broadcast(proposal, targets=self.peers)
        self._on_proposal(self.node_id, proposal)

    def _pick_value(self) -> Any:
        for value in self._requests.values():
            return value
        return None

    def _on_round_timeout(self) -> None:
        if not self._active:
            return
        # Retransmit pending values (loss robustness), then nil-precommit
        # the stalled round and move on.
        for value in self._requests.values():
            self.broadcast(ClientRequest(value=value), targets=self.peers)
        key = (self.height, self.round)
        if key not in self._precommitted:
            self._precommitted.add(key)
            self._broadcast_precommit(None)
        self._start_round(self.round + 1)

    # -- dispatch -----------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        # Votes and proposals for heights we have not reached yet are
        # buffered and replayed after we advance (a lagging validator
        # must not lose the traffic of faster ones).
        height = getattr(message, "height", None)
        if height is not None and height > self.height:
            self._future.append((src, message))
            return
        if isinstance(message, ClientRequest):
            digest = _digest(message.value)
            if digest not in self._decided_value_digests():
                self._requests.setdefault(digest, message.value)
                self._ensure_active()
        elif isinstance(message, TmProposal):
            self._maybe_skip_round(message.height, message.round, message.proposer)
            self._on_proposal(src, message)
        elif isinstance(message, TmPrevote):
            self._maybe_skip_round(message.height, message.round, message.sender)
            self._on_prevote(message)
        elif isinstance(message, TmPrecommit):
            self._maybe_skip_round(message.height, message.round, message.sender)
            self._on_precommit(message)

    def _maybe_skip_round(self, height: int, round_: int, sender: str) -> None:
        """Round-skip rule (Tendermint arXiv:1807.04938, line 55): upon
        f+1 messages (>1/3 voting power) from a round greater than ours,
        jump straight to that round. Without it, validators whose round
        timers drifted apart chase each other one timeout at a time and
        can stay desynchronised forever — a liveness livelock the DST
        fuzzer found (32 rounds of one height with no two validators in
        the same round long enough to assemble a quorum)."""
        if not self._active or height != self.height or round_ <= self.round:
            return
        senders = self._round_peers.setdefault(round_, set())
        senders.add(sender)
        power = sum(self.power_of(s) for s in senders)
        if 3 * power > self.total_power:
            self._start_round(round_)

    def _decided_value_digests(self) -> set[str]:
        return {_digest(v) for v in self._decided_at.values()}

    # -- propose / prevote ------------------------------------------------------------

    def _on_proposal(self, src: str, message: TmProposal) -> None:
        if message.height != self.height:
            return
        if src != self.proposer(message.height, message.round):
            return
        key = (message.height, message.round)
        self._proposals.setdefault(key, message)
        digest = _digest(message.value)
        self._values[digest] = message.value
        if digest not in self._decided_value_digests():
            self._requests.setdefault(digest, message.value)
            self._ensure_active()
        if key in self._prevoted or message.round != self.round:
            self._maybe_advance(key)
            return
        self._prevoted.add(key)
        # Locking rule: prevote the proposal unless locked on a different
        # value from a later round than the proposal's valid_round.
        acceptable = (
            self.locked_round == -1
            or self.locked_value == message.value
            or message.valid_round >= self.locked_round
        )
        vote_digest = digest if acceptable else None
        vote = TmPrevote(
            height=self.height, round=self.round, digest=vote_digest,
            sender=self.node_id,
        )
        self.broadcast(vote, targets=self.peers)
        self._on_prevote(vote)

    def _on_prevote(self, message: TmPrevote) -> None:
        if message.height != self.height:
            return
        key = (message.height, message.round)
        votes = self._prevotes.setdefault(key, {})
        votes.setdefault(message.sender, message.digest)
        self._maybe_advance(key)

    def _broadcast_precommit(self, digest: str | None) -> None:
        vote = TmPrecommit(
            height=self.height, round=self.round, digest=digest,
            sender=self.node_id,
        )
        self.broadcast(vote, targets=self.peers)
        self._on_precommit(vote)

    def _on_precommit(self, message: TmPrecommit) -> None:
        if message.height != self.height:
            return
        key = (message.height, message.round)
        votes = self._precommits.setdefault(key, {})
        votes.setdefault(message.sender, message.digest)
        self._maybe_advance(key)

    # -- step transitions ----------------------------------------------------------------

    def _maybe_advance(self, key: tuple[int, int]) -> None:
        height, round_ = key
        if height != self.height:
            return
        prevotes = self._prevotes.get(key, {})
        outcome = self._any_supermajority(prevotes)
        if outcome is not False and key not in self._precommitted:
            # 2/3+ prevote power for one digest (or nil) in this round.
            if outcome is not None and outcome in self._values:
                value = self._values[outcome]
                self.locked_value = value
                self.locked_round = round_
                self.valid_value = value
                self.valid_round = round_
                if round_ == self.round:
                    self._precommitted.add(key)
                    self._broadcast_precommit(outcome)
            elif outcome is None and round_ == self.round:
                self._precommitted.add(key)
                self._broadcast_precommit(None)
        precommits = self._precommits.get(key, {})
        decision = self._any_supermajority(precommits)
        if decision is not False and decision is not None:
            if decision in self._values:
                self._decide_height(self._values[decision])
            return
        if decision is None and round_ == self.round:
            # 2/3+ nil precommits: this round is dead, move to the next.
            self._start_round(self.round + 1)

    def _decide_height(self, value: Any) -> None:
        if self.has_decided(self.height):
            return
        self._decide(self.height, value)
        self._requests.pop(_digest(value), None)
        self._advance_height()

    def _advance_height(self) -> None:
        self.height += 1
        self.round = 0
        self.locked_value = None
        self.locked_round = -1
        self.valid_value = None
        self.valid_round = -1
        self._active = False
        if self._round_timer is not None:
            self._round_timer.cancel()
        self._proposals.clear()
        self._prevotes.clear()
        self._precommits.clear()
        self._prevoted.clear()
        self._precommitted.clear()
        self._round_peers.clear()
        self._ensure_active()
        buffered, self._future = self._future, []
        for src, message in buffered:
            self.deliver(src, message)

    def _after_catchup(self, sequence: int, value: Any) -> None:
        # Heights decided through catch-up gossip must move the round
        # machinery forward too, or this validator would nil-vote a
        # finished height forever.
        while self.has_decided(self.height):
            self._advance_height()
