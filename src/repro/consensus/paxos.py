"""Multi-Paxos (Lamport, "Paxos Made Simple") — crash fault tolerance.

The classic crash fault-tolerant protocol the paper cites for
permissioned ordering (section 2.2). A proposer acquires leadership for
all slots with one phase-1 round (Prepare/Promise over a ballot), learns
any values already accepted, re-proposes them, and then streams phase-2
Accept messages for new values. A value is chosen when a majority of
acceptors accept it under the same ballot.

Ballots are ``(attempt, replica_index)`` pairs, so competing proposers
always have comparable, unique ballots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


Ballot = tuple[int, int]  # (attempt, replica_index); totally ordered

ZERO_BALLOT: Ballot = (-1, -1)

#: Gap filler: a new leader proposes this for any slot below its next
#: slot that no promiser reported an acceptance for. Quorum intersection
#: makes this safe — a *chosen* value is always reported by at least one
#: promiser — and it unblocks the in-order decided log, which would
#: otherwise wedge forever on an unchosen hole (a liveness bug the DST
#: fuzzer found: one dropped Accept round left slot 0 empty while later
#: slots kept deciding, so no replica ever released anything).
NOOP = "__paxos-noop__"


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


@dataclass(frozen=True)
class Prepare:  # phase 1a
    ballot: Ballot
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Promise:  # phase 1b
    ballot: Ballot
    #: slot -> (accepted_ballot, accepted_value)
    accepted: tuple[tuple[int, Ballot, Any], ...]
    sender: str
    size_bytes: int = 512


@dataclass(frozen=True)
class Accept:  # phase 2a
    ballot: Ballot
    slot: int
    value: Any
    sender: str
    size_bytes: int = 640


@dataclass(frozen=True)
class Accepted:  # phase 2b
    ballot: Ballot
    slot: int
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Decide:
    slot: int
    value: Any
    size_bytes: int = 640


class PaxosReplica(ConsensusReplica):
    """A combined proposer/acceptor/learner replica."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self._index = config.replica_ids.index(node_id)
        # Acceptor state.
        self._promised: Ballot = ZERO_BALLOT
        self._accepted: dict[int, tuple[Ballot, Any]] = {}
        # Proposer state.
        self._is_leader = False
        self._ballot: Ballot = ZERO_BALLOT
        self._promises: dict[str, Promise] = {}
        self._next_slot = 0
        self._accept_votes: dict[int, set[str]] = {}
        self._proposals: dict[int, Any] = {}
        #: digest -> slot this proposer last placed the value in. Slot-
        #: aware (not a plain "ever proposed" set): if the slot ends up
        #: decided with a *different* value (e.g. a no-op gap fill), the
        #: value must be proposable again at a fresh slot.
        self._slot_of: dict[str, int] = {}
        # Shared.
        self._requests: dict[str, Any] = {}
        self._progress_timer = None
        self._attempt = 0
        # Replica 0 tries to lead immediately; others only on timeout.
        if self._index == 0:
            self.set_timer(0.0, self._try_lead)

    # -- client path ---------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest(value)
        if any(_digest(v) == digest for v in self._decided_at.values()):
            # Duplicate of a decided request (client retry): retransmit
            # for laggards, but never reopen it locally — see the PBFT
            # submit path for the liveness bug this prevents.
            self.broadcast(ClientRequest(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        if self._is_leader:
            self._propose(value)
        self._arm_progress_timer()

    def _arm_progress_timer(self, restart: bool = False) -> None:
        """Start the retry timer if not running; restart only on progress.

        Resetting a live timer on every duplicate client retransmission
        would postpone the timeout indefinitely and starve the leader
        takeover exactly when the cluster is wedged (the same starvation
        the DST fuzzer found in PBFT's view-progress timer).

        The timer also stays armed while decided-but-unreleased slots
        exist (``_out_of_order`` nonempty): a hole below them blocks the
        in-order log, and with ``_requests`` empty nothing else would
        ever trigger the no-op fill that plugs it.
        """
        if not self._requests and not self._out_of_order:
            if self._progress_timer is not None:
                self._progress_timer.cancel()
                self._progress_timer = None
            return
        if self._progress_timer is not None and self._progress_timer.pending:
            if not restart:
                return
            self._progress_timer.cancel()
        # Stagger timeouts by replica index so a single replica takes
        # over cleanly instead of duelling proposers livelocking.
        delay = self.config.base_timeout * (1.0 + 0.5 * self._index)
        self._progress_timer = self.set_timer(
            delay, self._on_progress_timeout, label="progress"
        )

    def on_recover(self) -> None:
        """Restart semantics: leadership is forgotten (a fresh prepare
        phase must re-earn it) and the progress retry timer is re-armed
        for any requests that survived in memory."""
        super().on_recover()
        self._is_leader = False
        self._promises = {}
        self._arm_progress_timer(restart=True)

    def _on_progress_timeout(self) -> None:
        decided = {_digest(v) for v in self._decided_at.values()}
        self._requests = {
            d: v for d, v in self._requests.items() if d not in decided
        }
        if not self._requests and not self._out_of_order:
            self._progress_timer = None
            return
        for value in self._requests.values():
            self.broadcast(ClientRequest(value=value), targets=self.peers)
        if self._is_leader:
            # Still leading (no higher ballot demoted us): the stall is
            # message loss, so retransmit Accepts for undecided slots
            # and propose anything new, instead of burning the ballot.
            for slot, value in sorted(self._proposals.items()):
                if not self.has_decided(slot):
                    self._send_accepts(slot, value)
            # Plug holes below the highest decided slot that this leader
            # never proposed into (safe for the same quorum-intersection
            # reason as the _on_promise fill: a value chosen under an
            # older ballot would have appeared in our promise quorum,
            # and one chosen under ours would be in _proposals).
            for slot in range(max(self._decided_at, default=-1)):
                if not self.has_decided(slot) and slot not in self._proposals:
                    self._send_accepts(slot, NOOP)
            for value in list(self._requests.values()):
                self._propose(value)
        else:
            self._try_lead()
        self._arm_progress_timer(restart=True)

    # -- leadership (phase 1) ---------------------------------------------------

    def _try_lead(self) -> None:
        self._attempt += 1
        self._ballot = (self._attempt, self._index)
        self._promises = {}
        # Leadership must be re-earned under the new ballot: staying
        # "leader" here would make _on_promise discard the very quorum
        # this prepare phase is collecting (every subsequent round would
        # be a no-op and a wedged slot could never be re-proposed).
        self._is_leader = False
        prepare = Prepare(ballot=self._ballot, sender=self.node_id)
        self.broadcast(prepare, targets=self.peers)
        self._on_prepare(prepare)  # promise to ourselves

    def _on_prepare(self, message: Prepare) -> None:
        if message.ballot <= self._promised:
            return  # stale ballot: ignore (sender will time out)
        self._promised = message.ballot
        self._is_leader = self._is_leader and message.sender == self.node_id
        accepted = tuple(
            (slot, ballot, value)
            for slot, (ballot, value) in sorted(self._accepted.items())
        )
        promise = Promise(
            ballot=message.ballot, accepted=accepted, sender=self.node_id
        )
        if message.sender == self.node_id:
            self._on_promise(promise)
        else:
            self.send(message.sender, promise)

    def _on_promise(self, message: Promise) -> None:
        if message.ballot != self._ballot or self._is_leader:
            return
        self._promises[message.sender] = message
        if len(self._promises) < self.config.quorum:
            return
        self._is_leader = True
        # Re-propose the highest-ballot accepted value for every slot any
        # promiser reported — mandatory for safety across leader changes.
        best: dict[int, tuple[Ballot, Any]] = {}
        for promise in self._promises.values():
            for slot, ballot, value in promise.accepted:
                if slot not in best or ballot > best[slot][0]:
                    best[slot] = (ballot, value)
        for slot, (_, value) in sorted(best.items()):
            self._send_accepts(slot, value)
            self._next_slot = max(self._next_slot, slot + 1)
        self._next_slot = max(
            self._next_slot, max(self._decided_at, default=-1) + 1
        )
        # Fill unreported holes with no-ops so the in-order log can
        # drain. Safe by quorum intersection: any chosen slot appears in
        # at least one promise of this quorum.
        for slot in range(self._next_slot):
            if slot in best or self.has_decided(slot):
                continue
            self._send_accepts(slot, NOOP)
        for value in list(self._requests.values()):
            self._propose(value)

    # -- phase 2 ------------------------------------------------------------------

    def _propose(self, value: Any) -> None:
        digest = _digest(value)
        slot = self._slot_of.get(digest)
        if slot is not None:
            if not self.has_decided(slot):
                return  # still in flight at that slot
            if _digest(self._decided_at[slot]) == digest:
                return  # already chosen there
            # The slot was decided with something else (gap fill):
            # fall through and re-propose at a fresh slot.
        slot = self._next_slot
        self._next_slot += 1
        self._slot_of[digest] = slot
        self._send_accepts(slot, value)

    def _send_accepts(self, slot: int, value: Any) -> None:
        self._proposals[slot] = value
        self._accept_votes.setdefault(slot, set())
        accept = Accept(
            ballot=self._ballot, slot=slot, value=value, sender=self.node_id
        )
        self.broadcast(accept, targets=self.peers)
        self._on_accept(accept)

    def _on_accept(self, message: Accept) -> None:
        if message.ballot < self._promised:
            return
        self._promised = message.ballot
        self._accepted[message.slot] = (message.ballot, message.value)
        reply = Accepted(
            ballot=message.ballot, slot=message.slot, sender=self.node_id
        )
        if message.sender == self.node_id:
            self._on_accepted(reply)
        else:
            self.send(message.sender, reply)

    def _on_accepted(self, message: Accepted) -> None:
        if message.ballot != self._ballot or not self._is_leader:
            return
        votes = self._accept_votes.setdefault(message.slot, set())
        votes.add(message.sender)
        if len(votes) >= self.config.quorum and not self.has_decided(message.slot):
            value = self._proposals[message.slot]
            self.broadcast(Decide(slot=message.slot, value=value),
                           targets=self.peers)
            self._learn(message.slot, value)

    def _handle_decide(self, message: Decide) -> None:
        self._learn(message.slot, message.value)

    def _learn(self, slot: int, value: Any) -> None:
        if not self.has_decided(slot):
            self._decide(slot, value)
        self._requests.pop(_digest(value), None)
        self._arm_progress_timer(restart=True)  # progress: fresh timeout

    # -- dispatch --------------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, ClientRequest):
            digest = _digest(message.value)
            already = any(
                _digest(v) == digest for v in self._decided_at.values()
            )
            if not already:
                self._requests.setdefault(digest, message.value)
                if self._is_leader:
                    self._propose(message.value)
                self._arm_progress_timer()
        elif isinstance(message, Prepare):
            self._on_prepare(message)
        elif isinstance(message, Promise):
            self._on_promise(message)
        elif isinstance(message, Accept):
            self._on_accept(message)
        elif isinstance(message, Accepted):
            self._on_accepted(message)
        elif isinstance(message, Decide):
            self._handle_decide(message)
