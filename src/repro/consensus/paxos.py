"""Multi-Paxos (Lamport, "Paxos Made Simple") — crash fault tolerance.

The classic crash fault-tolerant protocol the paper cites for
permissioned ordering (section 2.2). A proposer acquires leadership for
all slots with one phase-1 round (Prepare/Promise over a ballot), learns
any values already accepted, re-proposes them, and then streams phase-2
Accept messages for new values. A value is chosen when a majority of
acceptors accept it under the same ballot.

Ballots are ``(attempt, replica_index)`` pairs, so competing proposers
always have comparable, unique ballots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


Ballot = tuple[int, int]  # (attempt, replica_index); totally ordered

ZERO_BALLOT: Ballot = (-1, -1)


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


@dataclass(frozen=True)
class Prepare:  # phase 1a
    ballot: Ballot
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Promise:  # phase 1b
    ballot: Ballot
    #: slot -> (accepted_ballot, accepted_value)
    accepted: tuple[tuple[int, Ballot, Any], ...]
    sender: str
    size_bytes: int = 512


@dataclass(frozen=True)
class Accept:  # phase 2a
    ballot: Ballot
    slot: int
    value: Any
    sender: str
    size_bytes: int = 640


@dataclass(frozen=True)
class Accepted:  # phase 2b
    ballot: Ballot
    slot: int
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class Decide:
    slot: int
    value: Any
    size_bytes: int = 640


class PaxosReplica(ConsensusReplica):
    """A combined proposer/acceptor/learner replica."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self._index = config.replica_ids.index(node_id)
        # Acceptor state.
        self._promised: Ballot = ZERO_BALLOT
        self._accepted: dict[int, tuple[Ballot, Any]] = {}
        # Proposer state.
        self._is_leader = False
        self._ballot: Ballot = ZERO_BALLOT
        self._promises: dict[str, Promise] = {}
        self._next_slot = 0
        self._accept_votes: dict[int, set[str]] = {}
        self._proposals: dict[int, Any] = {}
        self._proposed_digests: set[str] = set()
        # Shared.
        self._requests: dict[str, Any] = {}
        self._progress_timer = None
        self._attempt = 0
        # Replica 0 tries to lead immediately; others only on timeout.
        if self._index == 0:
            self.set_timer(0.0, self._try_lead)

    # -- client path ---------------------------------------------------------

    def submit(self, value: Any) -> None:
        self._requests[_digest(value)] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        if self._is_leader:
            self._propose(value)
        self._arm_progress_timer()

    def _arm_progress_timer(self) -> None:
        if self._progress_timer is not None:
            self._progress_timer.cancel()
        if not self._requests:
            self._progress_timer = None
            return
        # Stagger timeouts by replica index so a single replica takes
        # over cleanly instead of duelling proposers livelocking.
        delay = self.config.base_timeout * (1.0 + 0.5 * self._index)
        self._progress_timer = self.set_timer(
            delay, self._on_progress_timeout, label="progress"
        )

    def on_recover(self) -> None:
        """Restart semantics: leadership is forgotten (a fresh prepare
        phase must re-earn it) and the progress retry timer is re-armed
        for any requests that survived in memory."""
        super().on_recover()
        self._is_leader = False
        self._promises = {}
        self._arm_progress_timer()

    def _on_progress_timeout(self) -> None:
        if not self._requests:
            return
        for value in self._requests.values():
            self.broadcast(ClientRequest(value=value), targets=self.peers)
        self._try_lead()
        self._arm_progress_timer()

    # -- leadership (phase 1) ---------------------------------------------------

    def _try_lead(self) -> None:
        self._attempt += 1
        self._ballot = (self._attempt, self._index)
        self._promises = {}
        prepare = Prepare(ballot=self._ballot, sender=self.node_id)
        self.broadcast(prepare, targets=self.peers)
        self._on_prepare(prepare)  # promise to ourselves

    def _on_prepare(self, message: Prepare) -> None:
        if message.ballot <= self._promised:
            return  # stale ballot: ignore (sender will time out)
        self._promised = message.ballot
        self._is_leader = self._is_leader and message.sender == self.node_id
        accepted = tuple(
            (slot, ballot, value)
            for slot, (ballot, value) in sorted(self._accepted.items())
        )
        promise = Promise(
            ballot=message.ballot, accepted=accepted, sender=self.node_id
        )
        if message.sender == self.node_id:
            self._on_promise(promise)
        else:
            self.send(message.sender, promise)

    def _on_promise(self, message: Promise) -> None:
        if message.ballot != self._ballot or self._is_leader:
            return
        self._promises[message.sender] = message
        if len(self._promises) < self.config.quorum:
            return
        self._is_leader = True
        # Re-propose the highest-ballot accepted value for every slot any
        # promiser reported — mandatory for safety across leader changes.
        best: dict[int, tuple[Ballot, Any]] = {}
        for promise in self._promises.values():
            for slot, ballot, value in promise.accepted:
                if slot not in best or ballot > best[slot][0]:
                    best[slot] = (ballot, value)
        for slot, (_, value) in sorted(best.items()):
            self._send_accepts(slot, value)
            self._next_slot = max(self._next_slot, slot + 1)
        for value in list(self._requests.values()):
            self._propose(value)

    # -- phase 2 ------------------------------------------------------------------

    def _propose(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._proposed_digests:
            return
        self._proposed_digests.add(digest)
        slot = self._next_slot
        self._next_slot += 1
        self._send_accepts(slot, value)

    def _send_accepts(self, slot: int, value: Any) -> None:
        self._proposals[slot] = value
        self._accept_votes.setdefault(slot, set())
        accept = Accept(
            ballot=self._ballot, slot=slot, value=value, sender=self.node_id
        )
        self.broadcast(accept, targets=self.peers)
        self._on_accept(accept)

    def _on_accept(self, message: Accept) -> None:
        if message.ballot < self._promised:
            return
        self._promised = message.ballot
        self._accepted[message.slot] = (message.ballot, message.value)
        reply = Accepted(
            ballot=message.ballot, slot=message.slot, sender=self.node_id
        )
        if message.sender == self.node_id:
            self._on_accepted(reply)
        else:
            self.send(message.sender, reply)

    def _on_accepted(self, message: Accepted) -> None:
        if message.ballot != self._ballot or not self._is_leader:
            return
        votes = self._accept_votes.setdefault(message.slot, set())
        votes.add(message.sender)
        if len(votes) >= self.config.quorum and not self.has_decided(message.slot):
            value = self._proposals[message.slot]
            self.broadcast(Decide(slot=message.slot, value=value),
                           targets=self.peers)
            self._learn(message.slot, value)

    def _handle_decide(self, message: Decide) -> None:
        self._learn(message.slot, message.value)

    def _learn(self, slot: int, value: Any) -> None:
        if not self.has_decided(slot):
            self._decide(slot, value)
        self._requests.pop(_digest(value), None)
        self._arm_progress_timer()

    # -- dispatch --------------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        if isinstance(message, ClientRequest):
            digest = _digest(message.value)
            already = any(
                _digest(v) == digest for v in self._decided_at.values()
            )
            if not already:
                self._requests.setdefault(digest, message.value)
                if self._is_leader:
                    self._propose(message.value)
                self._arm_progress_timer()
        elif isinstance(message, Prepare):
            self._on_prepare(message)
        elif isinstance(message, Promise):
            self._on_promise(message)
        elif isinstance(message, Accept):
            self._on_accept(message)
        elif isinstance(message, Accepted):
            self._on_accepted(message)
        elif isinstance(message, Decide):
            self._handle_decide(message)
