"""Consensus protocols for permissioned blockchains (paper section 2.2).

Six protocols spanning the design space the tutorial covers:

==============  =========  ==================  ===========================
Protocol        Faults     Quorum              Used by (per the paper)
==============  =========  ==================  ===========================
PBFT            Byzantine  2f+1 of 3f+1        classic BFT ordering
Paxos           crash      majority of 2f+1    classic CFT ordering
Raft            crash      majority of 2f+1    Fabric ordering, Quorum CFT
HotStuff        Byzantine  n-f of 3f+1         modern linear BFT
Tendermint      Byzantine  >2/3 voting power   PoS-weighted PBFT variant
Istanbul BFT    Byzantine  2f+1 of 3f+1        Quorum BFT
==============  =========  ==================  ===========================

All protocols share :class:`~repro.consensus.base.ConsensusReplica`
(an in-order decided log) and are exercised through
:class:`~repro.consensus.base.ConsensusCluster`.
"""

from repro.consensus.attacks import (
    DelayingPbftReplica,
    SilentPbftLeader,
    WithholdingPbftReplica,
    attacker_factory,
)
from repro.consensus.base import ClusterConfig, ConsensusCluster, ConsensusReplica
from repro.consensus.hotstuff import HotStuffReplica
from repro.consensus.hybrid import (
    hybrid_cluster_size,
    hybrid_quorum,
    make_hybrid_cluster,
    pure_byzantine_size,
)
from repro.consensus.ibft import IbftReplica
from repro.consensus.monitors import (
    MONITOR_REGISTRY,
    ConflictingCommitMonitor,
    DurableDecisionMonitor,
    GuardedRun,
    PrefixConsistencyMonitor,
    SafetyMonitor,
    guarded_run_until_decided,
    register_monitor,
    standard_monitors,
)
from repro.consensus.paxos import PaxosReplica
from repro.consensus.pbft import EquivocatingPbftReplica, PbftReplica
from repro.consensus.raft import RaftReplica
from repro.consensus.tendermint import TendermintReplica, proposer_schedule

#: Registry used by benchmarks: name -> (replica class, byzantine?).
PROTOCOLS = {
    "pbft": (PbftReplica, True),
    "paxos": (PaxosReplica, False),
    "raft": (RaftReplica, False),
    "hotstuff": (HotStuffReplica, True),
    "tendermint": (TendermintReplica, True),
    "ibft": (IbftReplica, True),
}

__all__ = [
    "MONITOR_REGISTRY",
    "PROTOCOLS",
    "ClusterConfig",
    "ConflictingCommitMonitor",
    "DurableDecisionMonitor",
    "ConsensusCluster",
    "ConsensusReplica",
    "DelayingPbftReplica",
    "GuardedRun",
    "PrefixConsistencyMonitor",
    "SafetyMonitor",
    "EquivocatingPbftReplica",
    "HotStuffReplica",
    "IbftReplica",
    "PaxosReplica",
    "PbftReplica",
    "RaftReplica",
    "SilentPbftLeader",
    "TendermintReplica",
    "WithholdingPbftReplica",
    "attacker_factory",
    "guarded_run_until_decided",
    "hybrid_cluster_size",
    "hybrid_quorum",
    "make_hybrid_cluster",
    "proposer_schedule",
    "pure_byzantine_size",
    "register_monitor",
    "standard_monitors",
]
