"""Istanbul BFT — the Byzantine consensus protocol of Quorum.

Quorum "introduces two consensus protocols: a crash fault-tolerant
protocol based on Raft and a Byzantine fault-tolerant protocol called
Istanbul BFT" (paper section 2.3.2). IBFT is a PBFT derivative operating
height by height: pre-prepare → prepare (2f + 1) → commit (2f + 1)
decides one block per height, and a ROUND-CHANGE subprotocol (rather
than PBFT's heavier view change) replaces a failed proposer. The
proposer of (height, round) rotates round-robin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.consensus.base import ClusterConfig, ConsensusReplica
from repro.crypto.digests import sha256_hex


def _digest(value: Any) -> str:
    return sha256_hex(repr(value))


@dataclass(frozen=True)
class IbftPrePrepare:
    height: int
    round: int
    value: Any
    size_bytes: int = 640


@dataclass(frozen=True)
class IbftPrepare:
    height: int
    round: int
    digest: str
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class IbftCommit:
    height: int
    round: int
    digest: str
    sender: str
    size_bytes: int = 128


@dataclass(frozen=True)
class RoundChange:
    height: int
    round: int  # the round the sender wants to move TO
    prepared_round: int  # -1 when nothing prepared
    prepared_value: Any
    sender: str
    size_bytes: int = 512


@dataclass(frozen=True)
class ClientRequest:
    value: Any
    size_bytes: int = 512


class IbftReplica(ConsensusReplica):
    """One IBFT validator."""

    def __init__(self, node_id, sim, network, config: ClusterConfig, on_decide=None):
        super().__init__(node_id, sim, network, config, on_decide)
        self.height = 0
        self.round = 0
        self._requests: dict[str, Any] = {}
        self._proposal: dict[tuple[int, int], Any] = {}
        self._prepares: dict[tuple[int, int, str], set[str]] = {}
        self._commits: dict[tuple[int, int, str], set[str]] = {}
        self._round_changes: dict[tuple[int, int], dict[str, RoundChange]] = {}
        self._prepared_round = -1
        self._prepared_value: Any = None
        self._sent_prepare: set[tuple[int, int]] = set()
        self._sent_commit: set[tuple[int, int]] = set()
        self._sent_round_change: set[tuple[int, int]] = set()
        self._round_timer = None
        self._active = False
        self._future: list[tuple[str, Any]] = []

    def proposer(self, height: int, round_: int) -> str:
        return self.config.replica_ids[(height + round_) % self.config.n]

    # -- client path -----------------------------------------------------------

    def submit(self, value: Any) -> None:
        digest = _digest(value)
        if digest in self._decided_digests():
            # Duplicate of a decided request (client retry): retransmit
            # so lagging validators learn of it, but don't reopen it.
            self.broadcast(ClientRequest(value=value), targets=self.peers)
            return
        self._requests[digest] = value
        self.broadcast(ClientRequest(value=value), targets=self.peers)
        self._ensure_active()

    def _ensure_active(self) -> None:
        if self._active or not self._requests:
            return
        self._active = True
        self._start_round(self.round)

    # -- round machinery -----------------------------------------------------------

    def _start_round(self, round_: int) -> None:
        self.round = round_
        if self._round_timer is not None:
            self._round_timer.cancel()
        delay = self.config.base_timeout * (1.0 + 0.5 * round_)
        self._round_timer = self.set_timer(
            delay, self._on_round_timeout, label="round"
        )
        if self.proposer(self.height, round_) != self.node_id:
            return
        value = self._prepared_value
        if value is None:
            value = next(iter(self._requests.values()), None)
        if value is None:
            return
        message = IbftPrePrepare(height=self.height, round=round_, value=value)
        self.broadcast(message, targets=self.peers)
        self._on_preprepare(self.node_id, message)

    def _on_round_timeout(self) -> None:
        if not self._active:
            return
        self._demand_round_change(self.round + 1)

    def _demand_round_change(self, target_round: int) -> None:
        key = (self.height, target_round)
        if key in self._sent_round_change:
            return
        self._sent_round_change.add(key)
        message = RoundChange(
            height=self.height,
            round=target_round,
            prepared_round=self._prepared_round,
            prepared_value=self._prepared_value,
            sender=self.node_id,
        )
        self.broadcast(message, targets=self.peers)
        for value in self._requests.values():
            self.broadcast(ClientRequest(value=value), targets=self.peers)
        self._on_round_change(message)
        # Keep the timer running in case this round change stalls too.
        if self._round_timer is not None:
            self._round_timer.cancel()
        delay = self.config.base_timeout * (1.0 + 0.5 * target_round)
        self._round_timer = self.set_timer(
            delay,
            lambda: self._demand_round_change(target_round + 1),
            label="round-change",
        )

    def on_recover(self) -> None:
        """Restart semantics: if the replica was mid-consensus, re-arm
        the round timer so it can demand a round change and rejoin."""
        super().on_recover()
        if self._active:
            delay = self.config.base_timeout * (1.0 + 0.5 * self.round)
            self._round_timer = self.set_timer(
                delay, self._on_round_timeout, label="round"
            )

    # -- dispatch ----------------------------------------------------------------------

    def on_message(self, src: str, message: object) -> None:
        height = getattr(message, "height", None)
        if height is not None and height > self.height:
            self._future.append((src, message))
            return
        if isinstance(message, ClientRequest):
            digest = _digest(message.value)
            if digest not in self._decided_digests():
                self._requests.setdefault(digest, message.value)
                self._ensure_active()
        elif isinstance(message, IbftPrePrepare):
            self._on_preprepare(src, message)
        elif isinstance(message, IbftPrepare):
            self._on_prepare(message)
        elif isinstance(message, IbftCommit):
            self._on_commit(message)
        elif isinstance(message, RoundChange):
            self._on_round_change(message)

    def _decided_digests(self) -> set[str]:
        return {_digest(v) for v in self._decided_at.values()}

    # -- normal case ----------------------------------------------------------------------

    def _on_preprepare(self, src: str, message: IbftPrePrepare) -> None:
        if message.height != self.height:
            return
        if src != self.proposer(message.height, message.round):
            return
        key = (message.height, message.round)
        if key in self._proposal:
            return
        self._proposal[key] = message.value
        # Loss robustness: learn the value so this validator can drive
        # round changes that re-propose it.
        self._requests.setdefault(_digest(message.value), message.value)
        self._ensure_active()
        if message.round < self.round:
            return
        if message.round > self.round:
            # The cluster moved on without us; adopt the newer round.
            self.round = message.round
        digest = _digest(message.value)
        if key not in self._sent_prepare:
            self._sent_prepare.add(key)
            prepare = IbftPrepare(
                height=self.height, round=message.round, digest=digest,
                sender=self.node_id,
            )
            self.broadcast(prepare, targets=self.peers)
            self._on_prepare(prepare)

    def _on_prepare(self, message: IbftPrepare) -> None:
        if message.height != self.height:
            return
        key = (message.height, message.round, message.digest)
        votes = self._prepares.setdefault(key, set())
        votes.add(message.sender)
        if len(votes) < self.config.quorum:
            return
        proposal_key = (message.height, message.round)
        if proposal_key not in self._proposal:
            return
        value = self._proposal[proposal_key]
        if _digest(value) != message.digest:
            return
        self._prepared_round = message.round
        self._prepared_value = value
        if proposal_key not in self._sent_commit:
            self._sent_commit.add(proposal_key)
            commit = IbftCommit(
                height=message.height, round=message.round,
                digest=message.digest, sender=self.node_id,
            )
            self.broadcast(commit, targets=self.peers)
            self._on_commit(commit)

    def _on_commit(self, message: IbftCommit) -> None:
        if message.height != self.height:
            return
        key = (message.height, message.round, message.digest)
        votes = self._commits.setdefault(key, set())
        votes.add(message.sender)
        if len(votes) < self.config.quorum:
            return
        proposal_key = (message.height, message.round)
        value = self._proposal.get(proposal_key)
        if value is None or _digest(value) != message.digest:
            return
        self._decide_height(value)

    def _decide_height(self, value: Any) -> None:
        if self.has_decided(self.height):
            return
        self._decide(self.height, value)
        self._requests.pop(_digest(value), None)
        self._advance_height()

    def _after_catchup(self, sequence: int, value: Any) -> None:
        while self.has_decided(self.height):
            self._advance_height()

    def _advance_height(self) -> None:
        self.height += 1
        self.round = 0
        self._prepared_round = -1
        self._prepared_value = None
        self._proposal.clear()
        self._prepares.clear()
        self._commits.clear()
        self._round_changes.clear()
        self._sent_prepare.clear()
        self._sent_commit.clear()
        self._sent_round_change.clear()
        self._active = False
        if self._round_timer is not None:
            self._round_timer.cancel()
            self._round_timer = None
        self._ensure_active()
        buffered, self._future = self._future, []
        for src, message in buffered:
            self.deliver(src, message)

    # -- round change --------------------------------------------------------------------------

    def _on_round_change(self, message: RoundChange) -> None:
        if message.height != self.height:
            return
        if message.round <= self.round:
            return
        key = (message.height, message.round)
        votes = self._round_changes.setdefault(key, {})
        votes[message.sender] = message
        # f + 1 round changes prove a correct validator timed out: join.
        if len(votes) >= self.config.f + 1:
            self._demand_round_change(message.round)
        if len(votes) < self.config.quorum:
            return
        # Quorum for the new round: enter it; the new proposer re-proposes
        # the prepared value with the highest prepared round, if any.
        best: RoundChange | None = None
        for vote in votes.values():
            if vote.prepared_round >= 0 and (
                best is None or vote.prepared_round > best.prepared_round
            ):
                best = vote
        if best is not None:
            self._prepared_round = best.prepared_round
            self._prepared_value = best.prepared_value
        self._start_round(message.round)
