"""Common machinery for all consensus protocols.

Every protocol in this package is implemented as replicas exchanging
messages on the simulated network and exposes the same surface:

* ``submit(value)`` — hand a value (usually a block payload) to the
  protocol; any replica accepts a submission and routes it internally.
* ``decided`` — the totally ordered log of values this replica has
  committed. Safety across a cluster means all correct replicas'
  ``decided`` logs are prefix-consistent.

:class:`ConsensusCluster` wires a full cluster (simulation, network,
replicas) and is what systems, tests, and benchmarks use.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.common.errors import ConfigError, ConsensusError
from repro.crypto.digests import sha256_hex
from repro.crypto.sigcache import ModelledSigVerifier
from repro.sim.core import Simulation
from repro.sim.network import LatencyModel, Network
from repro.sim.node import Node


@dataclass
class ClusterConfig:
    """Static configuration shared by every replica of one cluster.

    ``byzantine`` selects the fault model: Byzantine clusters need
    ``n >= 3f + 1`` and quorums of ``2f + 1``; crash-only clusters need
    ``n >= 2f + 1`` and simple majorities (paper section 2.2).
    """

    replica_ids: list[str]
    byzantine: bool = True
    base_timeout: float = 0.5
    checkpoint_interval: int = 128
    #: Voting power per replica (Tendermint); None means one-replica-one-vote.
    weights: dict[str, int] | None = None
    #: AHL-style attested hardware: equivocation is impossible, so a
    #: Byzantine cluster needs only 2f+1 replicas and majority quorums
    #: (paper section 2.3.4, citing A2M/MinBFT).
    trusted_hardware: bool = False
    #: Hybrid fault model (SeeMoRe/UpRight, paper section 2.3.3):
    #: explicit (byzantine, crash) tolerance overriding the derived
    #: single-model thresholds. Set via repro.consensus.hybrid helpers.
    hybrid: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if len(set(self.replica_ids)) != len(self.replica_ids):
            raise ConfigError("replica ids must be unique")
        if self.byzantine and not self.trusted_hardware and self.n < 4:
            raise ConfigError(
                f"Byzantine consensus needs n >= 4 (3f+1), got {self.n}"
            )
        if (not self.byzantine or self.trusted_hardware) and self.n < 3:
            raise ConfigError(f"this fault model needs n >= 3, got {self.n}")
        if self.weights is not None:
            missing = set(self.replica_ids) - set(self.weights)
            if missing:
                raise ConfigError(f"weights missing for replicas: {missing}")
        if self.hybrid is not None:
            b, c = self.hybrid
            if b < 1 or c < 0:
                raise ConfigError("hybrid model needs b >= 1, c >= 0")
            if self.n < 3 * b + 2 * c + 1:
                raise ConfigError(
                    f"hybrid (b={b}, c={c}) needs n >= {3 * b + 2 * c + 1}, "
                    f"got {self.n}"
                )

    @property
    def n(self) -> int:
        return len(self.replica_ids)

    @property
    def f(self) -> int:
        """Maximum tolerated faults under the configured fault model."""
        if self.hybrid is not None:
            return sum(self.hybrid)  # b Byzantine + c crash in total
        if self.byzantine and not self.trusted_hardware:
            return (self.n - 1) // 3
        return (self.n - 1) // 2

    @property
    def quorum(self) -> int:
        """Votes required for a decision quorum."""
        if self.hybrid is not None:
            b, c = self.hybrid
            return 2 * b + c + 1  # hybrid threshold: n = 3b + 2c + 1
        if self.byzantine and not self.trusted_hardware:
            return 2 * self.f + 1
        return self.n // 2 + 1

    def leader_of_view(self, view: int) -> str:
        """Round-robin leader rotation."""
        return self.replica_ids[view % self.n]


@dataclass(frozen=True)
class DecidedProbe:
    """Catch-up gossip: "I have decided ``count`` values — am I behind?"

    The protocol-agnostic equivalent of PBFT's checkpoint-based state
    transfer: a replica that missed commit messages (loss, partition,
    recovery from a crash) learns finished decisions from its peers
    instead of stalling forever.
    """

    count: int
    sender: str
    size_bytes: int = 64


@dataclass(frozen=True)
class DecidedRange:
    """Catch-up response: in-order decided values starting at ``start``."""

    start: int
    values: tuple[Any, ...]
    sender: str

    @property
    def size_bytes(self) -> int:
        return 64 + 512 * len(self.values)


#: Maximum decisions shipped per catch-up response.
_CATCHUP_BATCH = 64


class ConsensusReplica(Node):
    """Base replica: an in-order decided log with gap buffering.

    Protocols call :meth:`_decide` with (sequence, value) pairs in any
    order; the base class releases them to ``decided`` strictly in
    sequence order and fires ``on_decide`` for each. Deciding two
    different values for one sequence raises — that is a safety
    violation and must never survive silently.

    The base class also runs the catch-up gossip: while a replica has
    undecided requests or sequence gaps, it periodically probes peers
    and adopts decisions vouched for by f + 1 distinct senders (at
    least one of which must be correct).
    """

    def __init__(
        self,
        node_id: str,
        sim: Simulation,
        network: Network,
        config: ClusterConfig,
        on_decide: Callable[[str, int, Any], None] | None = None,
    ) -> None:
        super().__init__(node_id, sim, network)
        self.config = config
        self.decided: list[Any] = []
        self._on_decide = on_decide
        self._out_of_order: dict[int, Any] = {}
        self._decided_at: dict[int, Any] = {}
        self._requests: dict[str, Any] = {}  # subclasses may replace
        self._catchup_vouches: dict[tuple[int, str], set[str]] = {}
        #: Counters-only verification cache for vote certificates.
        #: Consensus messages carry no real signatures in this model, so
        #: the ledger only tracks how many checks a FastFabric-style
        #: validator performs vs. skips (a vote re-seen inside a later
        #: certificate is a cache hit); it never touches replica timing.
        self._sig_ledger = ModelledSigVerifier(verify_cost=0.0)
        self._arm_catchup_timer()

    def _note_certificate(self, signers, digest: str) -> None:
        """Run a quorum certificate's (signer, digest) pairs through the
        verification cache, keeping the performed/skipped split in the
        simulation metrics. Deterministic and timing-free."""
        fresh = 0
        for signer in sorted(signers):
            if self._sig_ledger.record(signer, digest):
                fresh += 1
        if fresh:
            self.sim.metrics.incr("crypto.sig_verified", fresh)
        if len(signers) > fresh:
            self.sim.metrics.incr("crypto.sig_cached", len(signers) - fresh)

    # -- catch-up gossip ----------------------------------------------------

    def _catchup_threshold(self) -> int:
        return self.config.f + 1 if self.config.byzantine else 1

    def _arm_catchup_timer(self) -> None:
        self.set_timer(
            2 * self.config.base_timeout, self._catchup_tick, label="catchup"
        )

    def on_recover(self) -> None:
        """Restart baseline timers: a crash invalidates every pre-crash
        timer, so a recovered replica must re-arm its catch-up gossip
        (protocol subclasses add their election/round timers on top)."""
        self._arm_catchup_timer()

    def _catchup_tick(self) -> None:
        if self._requests or self._out_of_order:
            self.broadcast(
                DecidedProbe(count=len(self.decided), sender=self.node_id),
                targets=self.peers,
            )
        self._arm_catchup_timer()

    def _handle_catchup(self, message: object) -> bool:
        """Base-level dispatch; returns True when the message was one of
        the catch-up types (subclasses then skip it)."""
        if isinstance(message, DecidedProbe):
            if len(self.decided) > message.count:
                values = tuple(
                    self.decided[message.count:message.count + _CATCHUP_BATCH]
                )
                self.send(
                    message.sender,
                    DecidedRange(
                        start=message.count, values=values,
                        sender=self.node_id,
                    ),
                )
            return True
        if isinstance(message, DecidedRange):
            for offset, value in enumerate(message.values):
                seq = message.start + offset
                if self.has_decided(seq):
                    continue
                key = (seq, repr(value))
                vouchers = self._catchup_vouches.setdefault(key, set())
                vouchers.add(message.sender)
                if len(vouchers) >= self._catchup_threshold():
                    self._decide(seq, value)
                    # Every protocol keys its pending-request table by
                    # the same digest, so the base can clear it here.
                    self._requests.pop(sha256_hex(repr(value)), None)
                    self._after_catchup(seq, value)
            return True
        return False

    def _after_catchup(self, sequence: int, value: Any) -> None:
        """Hook: protocols with height-coupled state (Tendermint, IBFT,
        HotStuff) advance that state after a catch-up decision."""

    def deliver(self, src: str, message: object) -> None:
        if self.crashed or self.recovering:
            return
        if self._handle_catchup(message):
            return
        self.on_message(src, message)

    def submit(self, value: Any) -> None:
        raise NotImplementedError

    @property
    def peers(self) -> list[str]:
        return [rid for rid in self.config.replica_ids if rid != self.node_id]

    def _decide(self, sequence: int, value: Any) -> None:
        if sequence in self._decided_at:
            if self._decided_at[sequence] != value:
                raise ConsensusError(
                    f"{self.node_id}: conflicting decision at seq {sequence}"
                )
            return
        self._decided_at[sequence] = value
        self._out_of_order[sequence] = value
        self.sim.metrics.incr("consensus.decisions")
        next_seq = len(self.decided)
        while next_seq in self._out_of_order:
            released = self._out_of_order.pop(next_seq)
            self.decided.append(released)
            if self._on_decide is not None:
                self._on_decide(self.node_id, next_seq, released)
            next_seq += 1

    def has_decided(self, sequence: int) -> bool:
        return sequence in self._decided_at


class ConsensusCluster:
    """A fully wired consensus cluster over one simulation.

    ``replica_factory`` builds one replica; the cluster exposes submit,
    run-until-done, and the cross-replica agreement check used by every
    safety test.
    """

    def __init__(
        self,
        replica_factory: Callable[..., ConsensusReplica],
        n: int = 4,
        byzantine: bool = True,
        seed: int = 0,
        sim: Simulation | None = None,
        latency: LatencyModel | None = None,
        base_timeout: float = 0.5,
        weights: dict[str, int] | None = None,
        id_prefix: str = "r",
        decide_listener: Callable[[str, int, Any], None] | None = None,
        network: Network | None = None,
        trusted_hardware: bool = False,
        hybrid: tuple[int, int] | None = None,
    ) -> None:
        self.sim = sim or Simulation(seed=seed)
        self.network = network or Network(self.sim, latency=latency)
        replica_ids = [f"{id_prefix}{i}" for i in range(n)]
        self.config = ClusterConfig(
            replica_ids=replica_ids,
            byzantine=byzantine,
            base_timeout=base_timeout,
            weights=weights,
            trusted_hardware=trusted_hardware,
            hybrid=hybrid,
        )
        self.replicas: dict[str, ConsensusReplica] = {}
        for rid in replica_ids:
            self.replicas[rid] = replica_factory(
                node_id=rid,
                sim=self.sim,
                network=self.network,
                config=self.config,
                on_decide=self._record_decide,
            )
        self._decide_times: dict[tuple[str, int], float] = {}
        self._decide_listener = decide_listener
        #: Attached safety monitors (see repro.consensus.monitors); they
        #: observe every decide of every non-Byzantine replica.
        self.monitors: list[Any] = []

    def add_monitor(self, monitor) -> None:
        """Attach a safety monitor for the rest of the cluster's life."""
        monitor.bind(self)
        self.monitors.append(monitor)

    def _record_decide(self, node_id: str, sequence: int, value: Any) -> None:
        self._decide_times[(node_id, sequence)] = self.sim.now
        if self.monitors and not getattr(
            self.replicas[node_id], "byzantine", False
        ):
            for monitor in self.monitors:
                monitor.on_decide(node_id, sequence, value)
        if self._decide_listener is not None:
            self._decide_listener(node_id, sequence, value)

    def replica(self, node_id: str) -> ConsensusReplica:
        return self.replicas[node_id]

    def correct_replicas(self) -> list[ConsensusReplica]:
        return [
            r
            for r in self.replicas.values()
            if not r.crashed and not getattr(r, "byzantine", False)
        ]

    def submit(self, value: Any, via: str | None = None) -> None:
        """Submit through one replica (default: first correct one)."""
        if via is not None:
            self.replicas[via].submit(value)
            return
        for replica in self.replicas.values():
            if not replica.crashed:
                replica.submit(value)
                return
        raise ConsensusError("no live replica to submit through")

    def run_until_decided(
        self, count: int, timeout: float = 60.0, max_events: int = 2_000_000
    ) -> bool:
        """Run until every correct replica decided ``count`` values.

        Returns False when the virtual timeout elapses first (liveness
        failure — which some experiments intentionally provoke).
        """
        deadline = self.sim.now + timeout
        while self.sim.now < deadline:
            done = all(
                len(r.decided) >= count for r in self.correct_replicas()
            )
            if done:
                return True
            processed = self.sim.run(
                until=min(deadline, self.sim.now + 0.25), max_events=max_events
            )
            if processed == 0 and not self._has_future_events():
                return all(
                    len(r.decided) >= count for r in self.correct_replicas()
                )
        return all(len(r.decided) >= count for r in self.correct_replicas())

    def _has_future_events(self) -> bool:
        return self.sim.pending_events() > 0

    def agreement_holds(self) -> bool:
        """Prefix consistency of all correct replicas' decided logs."""
        logs = [r.decided for r in self.correct_replicas()]
        if not logs:
            return True
        shortest = min(len(log) for log in logs)
        return all(log[:shortest] == logs[0][:shortest] for log in logs)

    def decision_latency(self, sequence: int) -> float:
        """Time from simulation start until the last correct replica
        decided ``sequence`` (a coarse commit-latency measure)."""
        times = [
            t
            for (node_id, seq), t in self._decide_times.items()
            if seq == sequence
        ]
        if not times:
            raise ConsensusError(f"sequence {sequence} not decided anywhere")
        return max(times)

    def message_count(self) -> int:
        return int(self.sim.metrics.get("net.messages"))
