"""Checkpointing and ledger pruning — bounding state on long chains.

PBFT garbage-collects its message log at checkpoints (paper section
2.2's protocols; implemented in ``repro.consensus.pbft``); the ledger
analogue is pruning: once a state checkpoint at height ``h`` is agreed
(2f+1 signatures in a real deployment), a node may discard block
*bodies* up to ``h`` and keep only headers — history stays verifiable
(the header chain and inclusion proofs for retained blocks still work),
while storage drops from O(transactions) to O(blocks + live state).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.common.errors import LedgerError
from repro.crypto.digests import sha256_hex
from repro.ledger.block import Block, BlockHeader
from repro.ledger.chain import Blockchain
from repro.ledger.store import StateStore, Version


@dataclass(frozen=True)
class StateCheckpoint:
    """A digest-committed snapshot of world state at one height."""

    height: int
    state_digest: str
    state: dict[str, Any]

    @staticmethod
    def capture(store: StateStore, height: int) -> "StateCheckpoint":
        state = store.as_dict()
        return StateCheckpoint(
            height=height,
            state_digest=digest_state(state),
            state=state,
        )

    def verify(self) -> bool:
        return digest_state(self.state) == self.state_digest

    def restore(self) -> StateStore:
        """Materialise a store from the checkpoint (new-node bootstrap)."""
        if not self.verify():
            raise LedgerError("checkpoint digest mismatch")
        store = StateStore()
        store.apply_writes(dict(self.state), Version(self.height, 0))
        return store


def digest_state(state: dict[str, Any]) -> str:
    """Canonical digest of a state dictionary (sorted key order)."""
    material = "|".join(
        f"{key}={state[key]!r}" for key in sorted(state)
    )
    return sha256_hex(material)


class PrunedLedger:
    """A ledger that kept every header but dropped old block bodies.

    Built from a full :class:`Blockchain` by :meth:`prune`; retains the
    complete header chain (so the tip hash and header-chain verification
    are unchanged) plus the bodies of blocks newer than the checkpoint.
    """

    def __init__(
        self,
        headers: list[BlockHeader],
        retained: dict[int, Block],
        checkpoint: StateCheckpoint,
    ) -> None:
        self.headers = headers
        self.retained = retained
        self.checkpoint = checkpoint

    @staticmethod
    def prune(chain: Blockchain, checkpoint: StateCheckpoint) -> "PrunedLedger":
        """Discard block bodies at or below the checkpoint height."""
        if not 0 <= checkpoint.height <= chain.height:
            raise LedgerError(
                f"checkpoint height {checkpoint.height} outside the chain"
            )
        if not checkpoint.verify():
            raise LedgerError("refusing to prune against a bad checkpoint")
        headers = [
            chain.block(height).header for height in range(chain.height + 1)
        ]
        retained = {
            height: chain.block(height)
            for height in range(checkpoint.height + 1, chain.height + 1)
        }
        return PrunedLedger(
            headers=headers, retained=retained, checkpoint=checkpoint
        )

    @property
    def height(self) -> int:
        return self.headers[-1].height

    def tip_hash(self) -> str:
        return self.headers[-1].digest()

    def storage_blocks(self) -> int:
        """Bodies actually stored (the pruning win)."""
        return len(self.retained)

    def verify(self) -> None:
        """Header-chain continuity plus retained-body integrity."""
        for earlier, later in zip(self.headers, self.headers[1:]):
            if later.prev_hash != earlier.digest():
                raise LedgerError(
                    f"broken header chain at height {later.height}"
                )
        for height, block in self.retained.items():
            if block.header != self.headers[height]:
                raise LedgerError(f"retained block {height} header mismatch")
            block.validate_payload()
        if not self.checkpoint.verify():
            raise LedgerError("checkpoint digest mismatch")

    def block(self, height: int) -> Block:
        """Body access; pruned heights raise (only headers survive)."""
        if height in self.retained:
            return self.retained[height]
        if 0 <= height <= self.height:
            raise LedgerError(
                f"block {height} was pruned (checkpoint at "
                f"{self.checkpoint.height})"
            )
        raise LedgerError(f"no block at height {height}")

    def rebuild_state(self, registry, execute_fn) -> StateStore:
        """Bootstrap: restore the checkpoint, replay retained blocks.

        ``execute_fn(block, store, registry)`` is the system's execution
        function (e.g. ``execute_block_serially``); after replay the
        store matches a never-pruned replica's.
        """
        store = self.checkpoint.restore()
        for height in sorted(self.retained):
            execute_fn(self.retained[height], store, registry)
        return store
