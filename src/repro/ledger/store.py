"""The versioned key-value state store ("blockchain state / datastore").

Execute-order-validate systems (Fabric, paper section 2.3.3) rely on
*versioned* reads: an endorser records the version of every key it read,
and the validator later checks those versions are still current (MVCC).
The store therefore tracks, for every key, the version — (block height,
transaction index) — that last wrote it.

Snapshots are copy-on-write. The store keeps its state as a stack of
layers — one large *base* map plus small immutable *sealed* overlays and
one mutable *head* overlay — and a snapshot captures references to the
sealed layers only. Taking a snapshot is therefore O(1) in state size
(it never copies entries), and committing a block costs O(write set):
the writes land in the head overlay, which is sealed the next time a
snapshot is taken. This is the versioned-read design Fabric's own
architecture motivates (Androulaki et al.) and the lever FastFabric
pulls for its validation-pipeline speedups; see DESIGN.md "Performance".

Sealed overlays are merged size-tiered (each entry is re-merged at most
O(log n) times, keeping the read chain logarithmic), and the whole
stack is compacted into a fresh base once overlay entries rival the
base — both amortized O(1) per written entry. Old snapshots keep
references to the layers they captured, which are never mutated, so
isolation (an endorsement snapshot taken before block N never observes
block N's writes) holds by construction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator

#: Overlay marker for deleted keys; masks base entries until compaction.
_TOMBSTONE = object()

#: Below this many total overlay entries, compaction is never triggered
#: (tiny states should not pay repeated rebuilds).
_COMPACT_FLOOR = 1024

#: Live counters for the hot-path benchmarks (see
#: ``repro.bench.profiling.hotpath_counters``). Plain module state: the
#: store is used from forked benchmark workers, each of which gets its
#: own copy, so rows stay identical between serial and parallel runs.
STORE_COUNTERS = {
    "snapshots_taken": 0,
    "snapshot_entries_copied": 0,  # stays 0 on the COW path — the point
    "overlay_entries_merged": 0,
    "compactions": 0,
    "compaction_entries": 0,
    # Durability tier (repro.storage): sealed overlays spilled to on-disk
    # snapshot runs, and entries written by those spills.
    "overlay_spills": 0,
    "overlay_spill_entries": 0,
    # Paged read path (repro.storage.paged): point lookups served from
    # blocked run files through the shared LRU block cache.
    "paged_lookups": 0,
    "filter_skips": 0,          # runs ruled out by the key filter
    "filter_false_positives": 0,  # filter said maybe, block said no
    "block_cache_hits": 0,
    "block_cache_misses": 0,
    "block_cache_evictions": 0,
    # Memory-bounded storage (PR 10). Gauges, not monotonic counts:
    # overlay_resident_bytes is the last charged buffer's estimate,
    # overlay_resident_peak the maximum any buffer reached since reset.
    "overlay_resident_bytes": 0,
    "overlay_resident_peak": 0,
    # Spills forced by the byte budget *between* interval snapshots.
    "budget_spills": 0,
    # Write-amplification ledger: bytes appended to run files by overlay
    # spills vs. by compaction rewrites vs. bytes appended to the WAL.
    "spill_bytes_written": 0,
    "compaction_bytes_written": 0,
    "wal_bytes_written": 0,
    # Range scans over the paged tier: blocks decoded by scan() — the
    # E24 gate asserts this tracks blocks-in-range, not total blocks.
    "range_block_decodes": 0,
}


def is_tombstone(entry: Any) -> bool:
    """True when an overlay entry marks a deleted key.

    Part of the :meth:`StateStore.sealed_overlays` public contract: the
    durability tier (``repro.storage.snapshots``) walks sealed overlays
    directly and must distinguish live values from deletion markers
    without reaching into the private sentinel.
    """
    return entry is _TOMBSTONE


def reset_store_counters() -> None:
    for key in STORE_COUNTERS:
        STORE_COUNTERS[key] = 0


def value_weight(value: Any) -> int:
    """Deterministic byte estimate of one state value.

    The budget accounting must be a pure function of the committed data
    — two same-seed runs (or a run and its replay) have to spill at the
    same blocks — so this deliberately is *not* ``sys.getsizeof``
    (interpreter- and version-dependent). The estimate tracks encoded
    size: strings/bytes by length, numbers as 8 bytes, containers as a
    small header plus their elements.
    """
    if value is None:
        return 8
    if isinstance(value, str):
        return len(value)
    if isinstance(value, (bytes, bytearray)):
        return len(value)
    if isinstance(value, (int, float, bool)):
        return 8
    if isinstance(value, (list, tuple)):
        return 16 + sum(value_weight(item) for item in value)
    if isinstance(value, dict):
        return 16 + sum(
            value_weight(k) + value_weight(v) for k, v in value.items()
        )
    return len(repr(value))


#: Fixed per-entry overhead charged by :class:`MemoryBudget`: the
#: VersionedValue wrapper, the Version pair, and the dict slot.
ENTRY_OVERHEAD_BYTES = 32


class MemoryBudget:
    """Deterministic resident-byte accounting for an overlay buffer.

    Tracks one weight per live key (an overwrite replaces the old
    charge, O(1) via the per-key weight map), so ``resident_bytes``
    estimates what the buffer actually holds, not what passed through
    it. The durability tier consults :meth:`over` after every commit to
    trigger overlay spills *between* interval snapshots — the lever
    that bounds a long-running node's memory (ROADMAP item 2).

    ``budget_bytes == 0`` disables the threshold (accounting still
    runs, so gauges stay meaningful).
    """

    __slots__ = ("budget_bytes", "_weights", "_bytes")

    def __init__(self, budget_bytes: int = 0) -> None:
        if budget_bytes < 0:
            raise ValueError(
                f"budget_bytes must be >= 0, got {budget_bytes}"
            )
        self.budget_bytes = budget_bytes
        self._weights: dict[str, int] = {}
        self._bytes = 0

    @property
    def resident_bytes(self) -> int:
        return self._bytes

    def charge(self, key: str, value: Any) -> None:
        """Account one written entry (``value is None`` = tombstone)."""
        weight = ENTRY_OVERHEAD_BYTES + len(key) + value_weight(value)
        self._bytes += weight - self._weights.get(key, 0)
        self._weights[key] = weight
        STORE_COUNTERS["overlay_resident_bytes"] = self._bytes
        if self._bytes > STORE_COUNTERS["overlay_resident_peak"]:
            STORE_COUNTERS["overlay_resident_peak"] = self._bytes

    def over(self) -> bool:
        """True when a non-zero budget has been reached or passed."""
        return 0 < self.budget_bytes <= self._bytes


@dataclass(frozen=True, order=True)
class Version:
    """Last-writer version of a key: ordered by (height, tx position)."""

    height: int
    tx_index: int


#: Version assigned to keys that have never been written.
NEVER_WRITTEN = Version(height=-1, tx_index=-1)


@dataclass(frozen=True)
class VersionedValue:
    value: Any
    version: Version


_MISSING = VersionedValue(None, NEVER_WRITTEN)

#: Public alias of the missing-entry sentinel. Part of the read-contract
#: seam the paged store (``repro.storage.paged``) implements: ``get`` /
#: ``__contains__`` compare by *identity* against this object, so any
#: subclass overriding :meth:`StateStore.get_versioned` must return this
#: exact sentinel for absent keys, never an equal-valued copy.
MISSING = _MISSING


class StateSnapshot:
    """An immutable point-in-time view of a store (endorsement reads).

    Holds references to the store's base map and sealed overlays at
    capture time — O(1) to create, regardless of state size. The layers
    are never mutated after capture (the store writes into a fresh head
    overlay), so the view is stable under concurrent commits.
    """

    __slots__ = ("_base", "_overlays")

    def __init__(
        self,
        base: dict[str, VersionedValue],
        overlays: tuple[dict[str, Any], ...] = (),
    ) -> None:
        self._base = base
        self._overlays = overlays

    def get(self, key: str, default: Any = None) -> Any:
        entry = self.get_versioned(key)
        return entry.value if entry is not _MISSING else default

    def get_versioned(self, key: str) -> VersionedValue:
        for overlay in reversed(self._overlays):
            entry = overlay.get(key)
            if entry is not None:
                return _MISSING if entry is _TOMBSTONE else entry
        entry = self._base.get(key)
        return _MISSING if entry is None else entry

    def keys(self) -> Iterator[str]:
        if not self._overlays:
            return iter(self._base)
        return iter(self._merged_keys())

    def _merged_keys(self) -> list[str]:
        dead: set[str] = set()
        live: dict[str, None] = {}
        for overlay in reversed(self._overlays):
            for key, entry in overlay.items():
                if key in live or key in dead:
                    continue
                if entry is _TOMBSTONE:
                    dead.add(key)
                else:
                    live[key] = None
        for key in self._base:
            if key not in live and key not in dead:
                live[key] = None
        return list(live)

    def __contains__(self, key: str) -> bool:
        return self.get_versioned(key) is not _MISSING


class StateStore:
    """The mutable world state held by one replica."""

    def __init__(self) -> None:
        #: Large bottom layer; shared read-only with snapshots.
        self._base: dict[str, VersionedValue] = {}
        #: Immutable sealed overlays, oldest -> newest; shared with
        #: snapshots. Entries are VersionedValue or the tombstone.
        self._sealed: tuple[dict[str, Any], ...] = ()
        #: Mutable top layer, private to the store until sealed.
        self._head: dict[str, Any] = {}
        self._len = 0

    # -- reads ---------------------------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        entry = self.get_versioned(key)
        return entry.value if entry is not _MISSING else default

    def get_versioned(self, key: str) -> VersionedValue:
        entry = self._head.get(key)
        if entry is None:
            for overlay in reversed(self._sealed):
                entry = overlay.get(key)
                if entry is not None:
                    break
            else:
                entry = self._base.get(key)
        if entry is None or entry is _TOMBSTONE:
            return _MISSING
        return entry

    def version_of(self, key: str) -> Version:
        return self.get_versioned(key).version

    def __contains__(self, key: str) -> bool:
        return self.get_versioned(key) is not _MISSING

    def __len__(self) -> int:
        return self._len

    def keys(self) -> list[str]:
        if not self._sealed and not self._head:
            return list(self._base)
        snapshot_view = StateSnapshot(
            self._base, self._sealed + ((dict(self._head),) if self._head else ())
        )
        return list(snapshot_view.keys())

    def items(self) -> Iterator[tuple[str, VersionedValue]]:
        """Live (key, VersionedValue) pairs, layer-merged."""
        for key in self.keys():
            yield key, self.get_versioned(key)

    def scan(
        self, start: str | None = None, end: str | None = None
    ) -> Iterator[tuple[str, VersionedValue]]:
        """Live entries with ``start <= key <= end``, in key order.

        ``None`` bounds are open. This materialized implementation is
        the equivalence oracle for the paged store's indexed scan
        (``repro.storage.paged.PagedStateStore.scan``), which must
        return the identical sequence while decoding only the run
        blocks that intersect the range.
        """
        for key in sorted(self.keys()):
            if start is not None and key < start:
                continue
            if end is not None and key > end:
                break
            yield key, self.get_versioned(key)

    # -- writes --------------------------------------------------------------

    def put(self, key: str, value: Any, version: Version) -> None:
        if key not in self:
            self._len += 1
        self._head[key] = VersionedValue(value=value, version=version)

    def delete(self, key: str) -> None:
        if key not in self:
            return
        self._len -= 1
        self._head[key] = _TOMBSTONE

    def mark_deleted(self, key: str) -> None:
        """Record a deletion marker even when ``key`` is not visible here.

        A full store can skip deletes of absent keys (:meth:`delete`),
        but a *delta* buffer — the durability tier's spill buffer —
        must not: the key being deleted usually lives in an older
        on-disk run, and only the tombstone carries the delete there.
        """
        if key in self:
            self._len -= 1
        self._head[key] = _TOMBSTONE

    def apply_writes(self, writes: dict[str, Any], version: Version) -> None:
        """Install a committed write set atomically at ``version``.

        O(write set): the entries land in the head overlay; no part of
        the existing state is copied.
        """
        for key, value in writes.items():
            if value is None:
                self.delete(key)
            else:
                self.put(key, value, version)

    # -- snapshots (copy-on-write) -------------------------------------------

    def snapshot(self) -> StateSnapshot:
        """O(1) copy-on-write snapshot (the endorsement-time view in XOV).

        Seals the head overlay (if any writes happened since the last
        snapshot) and hands out references to the immutable layers. No
        state entries are copied, whatever the state size.
        """
        if self._head:
            self._seal_head()
        STORE_COUNTERS["snapshots_taken"] += 1
        return StateSnapshot(self._base, self._sealed)

    def _seal_head(self) -> None:
        layer = self._head
        self._head = {}
        sealed = list(self._sealed)
        # Size-tiered merge: absorb smaller-or-similar overlays so the
        # read chain stays O(log overlay entries). Merging builds new
        # dicts — layers already captured by snapshots are untouched.
        while sealed and len(sealed[-1]) <= 2 * len(layer):
            lower = sealed.pop()
            merged = dict(lower)
            merged.update(layer)
            STORE_COUNTERS["overlay_entries_merged"] += len(lower)
            layer = merged
        sealed.append(layer)
        self._sealed = tuple(sealed)
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        """Fold the sealed overlays into a fresh base when they rival it.

        Subclasses that must keep every sealed overlay observable (the
        durability tier's spill buffer) override this with a no-op.
        """
        total = sum(len(overlay) for overlay in self._sealed)
        if total < max(_COMPACT_FLOOR, len(self._base)):
            return
        base = dict(self._base)
        for overlay in self._sealed:
            for key, entry in overlay.items():
                if entry is _TOMBSTONE:
                    base.pop(key, None)
                else:
                    base[key] = entry
        STORE_COUNTERS["compactions"] += 1
        STORE_COUNTERS["compaction_entries"] += len(base)
        self._base = base
        self._sealed = ()

    def sealed_overlays(self) -> tuple[dict[str, Any], ...]:
        """The immutable sealed overlays, **oldest to newest**.

        Public contract (the durability tier's snapshot spill depends on
        it — see ``repro.storage.snapshots``):

        * Overlays are ordered oldest first; for a key present in more
          than one overlay, the **last** overlay holding it wins. A
          correct merged view is therefore ``dict(o0) | dict(o1) | …``.
        * Entries are :class:`VersionedValue` objects or a deletion
          marker; callers must classify entries with
          :func:`is_tombstone`, never by identity against private state.
        * The returned overlays are never mutated afterwards (snapshots
          share them), so callers may iterate them lazily.

        Writes still in the mutable head overlay are *not* included;
        call :meth:`snapshot` first to seal the head.
        """
        return self._sealed

    # -- whole-state views ----------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """Plain {key: value} copy, for assertions and state comparison."""
        return {key: entry.value for key, entry in self.items()}

    def same_state_as(self, other: "StateStore") -> bool:
        """Value-level equality of two replicas' world state.

        Compares entries directly instead of materialising two full
        ``as_dict`` copies — this runs inside safety monitors on every
        fuzz schedule, so it must not be O(state) in allocations.
        """
        if len(self) != len(other):
            return False
        for key, entry in self.items():
            theirs = other.get_versioned(key)
            if theirs is _MISSING or theirs.value != entry.value:
                return False
        return True


class EagerCopyStateStore(StateStore):
    """Pre-overhaul behaviour: ``snapshot()`` deep-copies every entry.

    Kept only as the measured baseline of ``benchmarks/bench_hotpath.py``
    (the "snapshot cost is O(state)" arm); production paths always use
    :class:`StateStore`.
    """

    def snapshot(self) -> StateSnapshot:
        data = {key: entry for key, entry in self.items()}
        STORE_COUNTERS["snapshots_taken"] += 1
        STORE_COUNTERS["snapshot_entries_copied"] += len(data)
        return StateSnapshot(data)
