"""The versioned key-value state store ("blockchain state / datastore").

Execute-order-validate systems (Fabric, paper section 2.3.3) rely on
*versioned* reads: an endorser records the version of every key it read,
and the validator later checks those versions are still current (MVCC).
The store therefore tracks, for every key, the version — (block height,
transaction index) — that last wrote it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator


@dataclass(frozen=True, order=True)
class Version:
    """Last-writer version of a key: ordered by (height, tx position)."""

    height: int
    tx_index: int


#: Version assigned to keys that have never been written.
NEVER_WRITTEN = Version(height=-1, tx_index=-1)


@dataclass(frozen=True)
class VersionedValue:
    value: Any
    version: Version


class StateSnapshot:
    """An immutable point-in-time view of a store (endorsement reads)."""

    def __init__(self, data: dict[str, VersionedValue]) -> None:
        self._data = data

    def get(self, key: str, default: Any = None) -> Any:
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def get_versioned(self, key: str) -> VersionedValue:
        return self._data.get(key, VersionedValue(None, NEVER_WRITTEN))

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data


class StateStore:
    """The mutable world state held by one replica."""

    def __init__(self) -> None:
        self._data: dict[str, VersionedValue] = {}

    def get(self, key: str, default: Any = None) -> Any:
        entry = self._data.get(key)
        return entry.value if entry is not None else default

    def get_versioned(self, key: str) -> VersionedValue:
        return self._data.get(key, VersionedValue(None, NEVER_WRITTEN))

    def version_of(self, key: str) -> Version:
        return self.get_versioned(key).version

    def put(self, key: str, value: Any, version: Version) -> None:
        self._data[key] = VersionedValue(value=value, version=version)

    def delete(self, key: str) -> None:
        self._data.pop(key, None)

    def apply_writes(self, writes: dict[str, Any], version: Version) -> None:
        """Install a committed write set atomically at ``version``."""
        for key, value in writes.items():
            if value is None:
                self.delete(key)
            else:
                self.put(key, value, version)

    def snapshot(self) -> StateSnapshot:
        """Copy-on-read snapshot (the endorsement-time view in XOV)."""
        return StateSnapshot(dict(self._data))

    def keys(self) -> list[str]:
        return list(self._data)

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def as_dict(self) -> dict[str, Any]:
        """Plain {key: value} copy, for assertions and state comparison."""
        return {key: entry.value for key, entry in self._data.items()}

    def same_state_as(self, other: "StateStore") -> bool:
        """Value-level equality of two replicas' world state."""
        return self.as_dict() == other.as_dict()
