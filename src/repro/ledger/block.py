"""Blocks: a batch of transactions plus a hash-linked header."""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LedgerError
from repro.common.types import Transaction
from repro.crypto.digests import sha256_hex
from repro.crypto.merkle import merkle_root


@dataclass(frozen=True)
class BlockHeader:
    """Everything a block commits to, independent of its payload bytes.

    ``prev_hash`` chains blocks together (paper section 2.2: "each block
    includes the cryptographic hash of the previous block").
    """

    height: int
    prev_hash: str
    tx_root: str
    timestamp: float
    proposer: str

    def digest(self) -> str:
        # Memoized: header digests chain blocks together, so appends,
        # tip comparisons and audits all re-ask for the same hash.
        cached = getattr(self, "_digest_memo", None)
        if cached is not None:
            return cached
        material = (
            f"{self.height}|{self.prev_hash}|{self.tx_root}"
            f"|{self.timestamp}|{self.proposer}"
        )
        digest = sha256_hex(material)
        object.__setattr__(self, "_digest_memo", digest)
        return digest


@dataclass(frozen=True)
class Block:
    """An immutable block: header plus ordered transaction batch."""

    header: BlockHeader
    transactions: tuple[Transaction, ...]

    @staticmethod
    def create(
        height: int,
        prev_hash: str,
        transactions: list[Transaction] | tuple[Transaction, ...],
        timestamp: float = 0.0,
        proposer: str = "orderer",
    ) -> "Block":
        """Build a block, deriving the Merkle root from the batch."""
        txs = tuple(transactions)
        root = merkle_root([tx.digest() for tx in txs])
        header = BlockHeader(
            height=height,
            prev_hash=prev_hash,
            tx_root=root,
            timestamp=timestamp,
            proposer=proposer,
        )
        return Block(header=header, transactions=txs)

    @property
    def height(self) -> int:
        return self.header.height

    @property
    def block_hash(self) -> str:
        return self.header.digest()

    def __len__(self) -> int:
        return len(self.transactions)

    def validate_payload(self) -> None:
        """Check the transaction batch matches the committed Merkle root."""
        expected = merkle_root([tx.digest() for tx in self.transactions])
        if expected != self.header.tx_root:
            raise LedgerError(
                f"block {self.height}: tx root mismatch "
                f"(header {self.header.tx_root[:12]}…, payload {expected[:12]}…)"
            )


#: Hash value that the genesis block chains from.
GENESIS_PREV_HASH = sha256_hex(b"repro-genesis")


def genesis_block() -> Block:
    """The canonical empty genesis block shared by all replicas."""
    return Block.create(
        height=0, prev_hash=GENESIS_PREV_HASH, transactions=(), timestamp=0.0,
        proposer="genesis",
    )
