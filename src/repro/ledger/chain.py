"""The append-only, hash-chained blockchain ledger."""

from __future__ import annotations

from repro.common.errors import LedgerError
from repro.common.types import Transaction
from repro.ledger.block import Block, genesis_block


class Blockchain:
    """One replica's copy of the ledger.

    Appends validate the full chaining invariant (height, previous hash,
    Merkle root), so a ledger object can never silently hold a broken
    chain. Replica equality — the property Figure 1 illustrates — is a
    tip-hash comparison.
    """

    def __init__(self, genesis: Block | None = None) -> None:
        self._blocks: list[Block] = [genesis or genesis_block()]
        self._tx_index: dict[str, tuple[int, int]] = {}

    @property
    def height(self) -> int:
        """Height of the newest block (genesis is height 0)."""
        return self._blocks[-1].height

    @property
    def head(self) -> Block:
        return self._blocks[-1]

    def __len__(self) -> int:
        return len(self._blocks)

    def __iter__(self):
        return iter(self._blocks)

    def block(self, height: int) -> Block:
        if not 0 <= height < len(self._blocks):
            raise LedgerError(f"no block at height {height} (tip {self.height})")
        return self._blocks[height]

    def append(self, block: Block) -> None:
        """Append ``block``, enforcing every chaining invariant."""
        if block.height != self.height + 1:
            raise LedgerError(
                f"expected height {self.height + 1}, got {block.height}"
            )
        if block.header.prev_hash != self.head.block_hash:
            raise LedgerError(
                f"block {block.height} does not chain from tip "
                f"{self.head.block_hash[:12]}…"
            )
        block.validate_payload()
        self._blocks.append(block)
        for position, tx in enumerate(block.transactions):
            self._tx_index[tx.tx_id] = (block.height, position)

    def next_block(
        self,
        transactions: list[Transaction] | tuple[Transaction, ...],
        timestamp: float = 0.0,
        proposer: str = "orderer",
    ) -> Block:
        """Construct (without appending) the block that would extend the tip."""
        return Block.create(
            height=self.height + 1,
            prev_hash=self.head.block_hash,
            transactions=transactions,
            timestamp=timestamp,
            proposer=proposer,
        )

    def find_transaction(self, tx_id: str) -> tuple[Block, int] | None:
        """Locate a committed transaction: (block, position) or None."""
        location = self._tx_index.get(tx_id)
        if location is None:
            return None
        height, position = location
        return self._blocks[height], position

    def all_transactions(self):
        """Every committed transaction in ledger order."""
        for block in self._blocks:
            yield from block.transactions

    def tip_hash(self) -> str:
        return self.head.block_hash

    def same_ledger_as(self, other: "Blockchain") -> bool:
        """True when both replicas hold byte-identical chains.

        Because every block commits to its predecessor, equal tip hashes
        at equal height imply the full prefixes are identical.
        """
        return self.height == other.height and self.tip_hash() == other.tip_hash()

    def verify_chain(self) -> None:
        """Re-validate the whole chain from genesis (audit path)."""
        for previous, current in zip(self._blocks, self._blocks[1:]):
            if current.header.prev_hash != previous.block_hash:
                raise LedgerError(f"broken chain link at height {current.height}")
            current.validate_payload()
