"""Ledger data structures.

The append-only, hash-chained blockchain ledger (paper section 2.2), the
Caper-style DAG ledger in which each enterprise materialises only its own
view (section 2.3.1), and the versioned key-value state store ("blockchain
state / datastore") that execution architectures read and write.
"""

from repro.ledger.audit import (
    InclusionProof,
    prove_inclusion,
    verify_transaction_content,
)
from repro.ledger.block import Block, BlockHeader, genesis_block
from repro.ledger.chain import Blockchain
from repro.ledger.dag import CaperDag, DagVertex
from repro.ledger.pruning import PrunedLedger, StateCheckpoint, digest_state
from repro.ledger.store import StateStore, Version, VersionedValue

__all__ = [
    "Block",
    "BlockHeader",
    "Blockchain",
    "CaperDag",
    "DagVertex",
    "InclusionProof",
    "PrunedLedger",
    "StateCheckpoint",
    "StateStore",
    "Version",
    "VersionedValue",
    "digest_state",
    "genesis_block",
    "prove_inclusion",
    "verify_transaction_content",
]
