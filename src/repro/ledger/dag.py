"""The Caper-style DAG ledger (paper section 2.3.1).

In Caper the ledger is a directed acyclic graph of transactions: each
enterprise's *internal* transactions form a chain, and *cross-enterprise*
transactions join the chains of every involved enterprise. Crucially,
"the blockchain ledger is not maintained by any node" — each enterprise
materialises only its own view (its internal transactions plus all
cross-enterprise transactions).

:class:`CaperDag` here is the *logical* ledger used by audits and tests;
the runtime system in ``repro.confidentiality.caper`` gives each
enterprise only the :meth:`view` projection.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LedgerError
from repro.common.types import Transaction, TxType
from repro.crypto.digests import sha256_hex


@dataclass(frozen=True)
class DagVertex:
    """One transaction in the DAG, hash-linked to its parents."""

    tx: Transaction
    parents: tuple[str, ...]
    enterprise: str | None  # None for cross-enterprise transactions

    def digest(self) -> str:
        material = f"{self.tx.digest()}|{','.join(self.parents)}|{self.enterprise}"
        return sha256_hex(material)


class CaperDag:
    """Append-only transaction DAG with per-enterprise views."""

    def __init__(self, enterprises: list[str]) -> None:
        if not enterprises:
            raise LedgerError("a Caper ledger needs at least one enterprise")
        self.enterprises = list(enterprises)
        self._vertices: dict[str, DagVertex] = {}
        self._order: list[str] = []  # insertion order of digests
        self._last_of: dict[str, str | None] = {e: None for e in enterprises}

    def __len__(self) -> int:
        return len(self._order)

    def vertex(self, digest: str) -> DagVertex:
        try:
            return self._vertices[digest]
        except KeyError:
            raise LedgerError(f"unknown DAG vertex: {digest[:12]}…") from None

    def _append(self, vertex: DagVertex) -> str:
        digest = vertex.digest()
        for parent in vertex.parents:
            if parent not in self._vertices:
                raise LedgerError(f"vertex parent missing: {parent[:12]}…")
        self._vertices[digest] = vertex
        self._order.append(digest)
        return digest

    def add_internal(self, enterprise: str, tx: Transaction) -> str:
        """Append an internal transaction to ``enterprise``'s chain."""
        if enterprise not in self._last_of:
            raise LedgerError(f"unknown enterprise: {enterprise}")
        last = self._last_of[enterprise]
        parents = (last,) if last else ()
        digest = self._append(
            DagVertex(tx=tx, parents=parents, enterprise=enterprise)
        )
        self._last_of[enterprise] = digest
        return digest

    def add_cross(self, tx: Transaction) -> str:
        """Append a cross-enterprise transaction joining every chain.

        Following Caper, a cross-enterprise transaction is globally
        ordered and has an edge from the latest transaction of *every*
        enterprise, making it a synchronisation point of the DAG.
        """
        if tx.tx_type != TxType.CROSS_ENTERPRISE:
            raise LedgerError("add_cross requires a CROSS_ENTERPRISE transaction")
        parents = tuple(
            digest for digest in (self._last_of[e] for e in self.enterprises) if digest
        )
        digest = self._append(DagVertex(tx=tx, parents=parents, enterprise=None))
        for enterprise in self.enterprises:
            self._last_of[enterprise] = digest
        return digest

    def view(self, enterprise: str) -> list[DagVertex]:
        """``enterprise``'s view: its internal txs plus all cross-enterprise
        txs, in ledger order. This is all a Caper enterprise ever stores."""
        if enterprise not in self._last_of:
            raise LedgerError(f"unknown enterprise: {enterprise}")
        return [
            self._vertices[digest]
            for digest in self._order
            if self._vertices[digest].enterprise in (enterprise, None)
        ]

    def all_vertices(self) -> list[DagVertex]:
        return [self._vertices[digest] for digest in self._order]

    def verify(self) -> None:
        """Audit: every parent exists and precedes its child (acyclicity)."""
        seen: set[str] = set()
        for digest in self._order:
            vertex = self._vertices[digest]
            for parent in vertex.parents:
                if parent not in seen:
                    raise LedgerError(
                        f"vertex {digest[:12]}… references parent "
                        f"{parent[:12]}… that does not precede it"
                    )
            if vertex.digest() != digest:
                raise LedgerError(f"vertex digest mismatch at {digest[:12]}…")
            seen.add(digest)

    def views_consistent(self) -> bool:
        """True when all views agree on the shared cross-enterprise spine.

        Two enterprise views overlap exactly on cross-enterprise
        transactions; consistency means they observe those in the same
        order — which holds by construction here and is asserted by
        integration tests against the distributed runtime.
        """
        spines = []
        for enterprise in self.enterprises:
            spine = [
                v.digest() for v in self.view(enterprise) if v.enterprise is None
            ]
            spines.append(spine)
        return all(spine == spines[0] for spine in spines)
