"""Light-client audit proofs: transaction inclusion without the ledger.

The paper's opening list of blockchain virtues — "immutability,
transparency, provenance, and authenticity" — rests on exactly this
mechanism: anyone holding only a trusted *tip hash* can verify that a
transaction is committed, given a compact proof (the block's header
chain to the tip plus a Merkle path inside the block). Full peers
produce the proofs; light clients verify them in O(chain length +
log(block size)) hashes without storing anything.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import LedgerError
from repro.common.types import Transaction
from repro.crypto.digests import sha256_hex
from repro.crypto.merkle import MerkleProof, MerkleTree
from repro.ledger.block import BlockHeader
from repro.ledger.chain import Blockchain


@dataclass(frozen=True)
class InclusionProof:
    """Everything a light client needs to check one transaction.

    Attributes:
        tx_digest: Content digest of the claimed transaction.
        merkle_path: Audit path from the transaction to its block's
            ``tx_root``.
        headers: Block headers from the transaction's block to the tip,
            inclusive — each chains to the next through ``prev_hash``.
    """

    tx_digest: str
    merkle_path: MerkleProof
    headers: tuple[BlockHeader, ...]

    @property
    def block_height(self) -> int:
        return self.headers[0].height

    def verify(self, trusted_tip_hash: str) -> bool:
        """Check the proof against a tip hash obtained out of band.

        Three links are verified: the transaction is under the first
        header's Merkle root, consecutive headers chain by hash, and the
        last header hashes to the trusted tip.
        """
        if not self.headers:
            return False
        # The tree hashes its leaf payloads, so the path's leaf is the
        # digest *of* the transaction digest.
        if self.merkle_path.leaf != sha256_hex(self.tx_digest):
            return False
        if self.merkle_path.root() != self.headers[0].tx_root:
            return False
        for earlier, later in zip(self.headers, self.headers[1:]):
            if later.prev_hash != earlier.digest():
                return False
        return self.headers[-1].digest() == trusted_tip_hash


def prove_inclusion(chain: Blockchain, tx_id: str) -> InclusionProof:
    """Full-peer side: build the inclusion proof for ``tx_id``."""
    located = chain.find_transaction(tx_id)
    if located is None:
        raise LedgerError(f"transaction not on this ledger: {tx_id}")
    block, position = located
    tree = MerkleTree([tx.digest() for tx in block.transactions])
    headers = tuple(
        chain.block(height).header
        for height in range(block.height, chain.height + 1)
    )
    return InclusionProof(
        tx_digest=block.transactions[position].digest(),
        merkle_path=tree.proof(position),
        headers=headers,
    )


def verify_transaction_content(
    proof: InclusionProof, tx: Transaction
) -> bool:
    """Bind a concrete transaction object to an inclusion proof."""
    return tx.digest() == proof.tx_digest


def verify_ledger_linkage(
    chain: Blockchain, committed_tx_ids: set[str] | None = None
) -> list[str]:
    """The hash-chain-linkage invariant, as a violation list.

    Re-validates every link and payload of ``chain`` (heights, previous
    hashes, Merkle roots) and — when ``committed_tx_ids`` is given —
    that every committed transaction is actually on the ledger. This is
    the ledger-side safety check the DST fuzzer runs after every
    architecture-level fault run: a fault schedule may abort
    transactions freely, but it must never leave a broken chain or a
    commit that the ledger cannot prove.
    """
    violations: list[str] = []
    try:
        chain.verify_chain()
    except LedgerError as error:
        violations.append(f"ledger linkage: {error}")
    heights = [block.height for block in chain]
    if heights != list(range(len(heights))):
        violations.append(f"ledger heights not contiguous: {heights}")
    if committed_tx_ids:
        on_ledger = {tx.tx_id for tx in chain.all_transactions()}
        missing = sorted(committed_tx_ids - on_ledger)
        if missing:
            violations.append(
                f"committed but not on the ledger: {', '.join(missing)}"
            )
    return violations
