"""Serial block execution — the order-execute (OX) execute phase.

"Executor nodes execute the transactions of a block sequentially in the
same order" (paper section 2.3.3). Because execution is deterministic
and strictly ordered, every replica reaches the same state; the price is
that the block's modelled execution time is the *sum* of its
transactions' costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.contracts import ContractRegistry
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.block import Block
from repro.ledger.store import StateStore, Version


@dataclass
class SerialExecutionReport:
    """Outcome of executing one block serially."""

    rwsets: list[RWSet] = field(default_factory=list)
    committed: int = 0
    failed: int = 0
    modelled_cost: float = 0.0


def execute_block_serially(
    block: Block, store: StateStore, registry: ContractRegistry
) -> SerialExecutionReport:
    """Execute every transaction of ``block`` in order against ``store``.

    Each transaction sees the writes of all earlier transactions in the
    same block (they are applied immediately). Contracts that abort on a
    business rule count as ``failed`` and write nothing — they are still
    on the ledger, which is how OX systems record rejected transactions.
    """
    report = SerialExecutionReport()
    for index, tx in enumerate(block.transactions):
        rwset = execute_with_capture(registry, tx, store)
        report.rwsets.append(rwset)
        report.modelled_cost += rwset.cost
        if rwset.ok:
            store.apply_writes(
                rwset.writes, Version(height=block.height, tx_index=index)
            )
            report.committed += 1
        else:
            report.failed += 1
    return report
