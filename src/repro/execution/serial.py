"""Serial block execution — the order-execute (OX) execute phase.

"Executor nodes execute the transactions of a block sequentially in the
same order" (paper section 2.3.3). Because execution is deterministic
and strictly ordered, every replica reaches the same state; the price is
that the block's modelled execution time is the *sum* of its
transactions' costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.contracts import ContractRegistry
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.block import Block
from repro.ledger.store import StateStore, Version


@dataclass
class SerialExecutionReport:
    """Outcome of executing one block serially."""

    rwsets: list[RWSet] = field(default_factory=list)
    committed: int = 0
    failed: int = 0
    modelled_cost: float = 0.0


def execute_block_serially(
    block: Block, store: StateStore, registry: ContractRegistry
) -> SerialExecutionReport:
    """Execute every transaction of ``block`` in order against ``store``.

    Each transaction sees the writes of all earlier transactions in the
    same block (they are applied immediately). Contracts that abort on a
    business rule count as ``failed`` and write nothing — they are still
    on the ledger, which is how OX systems record rejected transactions.
    """
    report = SerialExecutionReport()
    for index, tx in enumerate(block.transactions):
        rwset = execute_with_capture(registry, tx, store)
        report.rwsets.append(rwset)
        report.modelled_cost += rwset.cost
        if rwset.ok:
            store.apply_writes(
                rwset.writes, Version(height=block.height, tx_index=index)
            )
            report.committed += 1
        else:
            report.failed += 1
    return report


def verify_serializable_commit(
    chain, store: StateStore, registry: ContractRegistry,
    committed_tx_ids: set[str],
) -> list[str]:
    """The serializability invariant, as a violation list.

    Re-executes exactly the *committed* transactions, serially, in
    ledger order, against a fresh store, and compares the resulting
    world state with the system's actual committed state. Every
    architecture in :mod:`repro.core` claims equivalence to this serial
    schedule — OX by construction, OXII via its dependency graph, XOV
    via MVCC validation — so any divergence (a stale read slipping
    through validation, a lost or phantom write) is a safety violation,
    which is what lets the DST fuzzer cover architectures and not just
    consensus.
    """
    replay = StateStore()
    for block in chain:
        for index, tx in enumerate(block.transactions):
            if tx.tx_id not in committed_tx_ids:
                continue
            rwset = execute_with_capture(registry, tx, replay)
            if not rwset.ok:
                return [
                    f"serializability: committed {tx.tx_id} fails when "
                    f"re-executed serially at height {block.height}"
                ]
            replay.apply_writes(
                rwset.writes, Version(height=block.height, tx_index=index)
            )
    expected = replay.as_dict()
    actual = store.as_dict()
    if expected == actual:
        return []
    differing = sorted(
        key
        for key in set(expected) | set(actual)
        if expected.get(key) != actual.get(key)
    )
    return [
        "serializability: committed state diverges from the serial replay "
        f"on keys {', '.join(differing[:10])}"
        + (f" (+{len(differing) - 10} more)" if len(differing) > 10 else "")
    ]
