"""Post-order re-execution — the XOX Fabric hybrid (paper section 2.3.3).

XOX Fabric adds "a post-order execution step ... after the validation
step to re-execute transactions that are invalidated due to read-write
conflicts". Re-execution runs serially against the *latest* committed
state, so it always succeeds for deterministic contracts (only
business-rule aborts remain aborted); the price is serial execution
cost for exactly the conflicting tail instead of aborting it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.execution.contracts import ContractRegistry
from repro.execution.mvcc import EndorsedTx
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.store import StateStore, Version


@dataclass
class ReexecutionReport:
    """Outcome of the post-order step for one block."""

    recovered: list[RWSet] = field(default_factory=list)
    still_failed: list[RWSet] = field(default_factory=list)
    modelled_cost: float = 0.0


def reexecute_invalidated(
    invalidated: list[EndorsedTx],
    store: StateStore,
    registry: ContractRegistry,
    height: int,
    first_tx_index: int,
) -> ReexecutionReport:
    """Serially re-run ``invalidated`` transactions against current state.

    Writes of each recovered transaction are applied immediately, so
    later re-executed transactions see them (same semantics as the
    serial OX executor). ``first_tx_index`` positions the re-executed
    writes after the block's valid transactions in version order.
    """
    report = ReexecutionReport()
    tx_index = first_tx_index
    for endorsed in invalidated:
        rwset = execute_with_capture(registry, endorsed.tx, store)
        report.modelled_cost += rwset.cost
        if rwset.ok:
            store.apply_writes(rwset.writes, Version(height=height, tx_index=tx_index))
            report.recovered.append(rwset)
        else:
            report.still_failed.append(rwset)
        tx_index += 1
    return report
