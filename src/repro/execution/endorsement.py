"""Endorsement policies — who must vouch for an XOV transaction.

Paper section 2.3.1: in Fabric "each enterprise has its own set of
executor (i.e., endorser) nodes where the transactions of the enterprise
are executed by its endorser nodes". A transaction is only valid if the
set of endorsers that signed identical results *satisfies the chaincode's
endorsement policy* — an AND/OR/K-of-N expression over organisations.

Two failure modes are modelled beyond plain XOV:

* **policy failure** — not enough organisations endorsed;
* **endorsement mismatch** — endorsers executed the same transaction but
  produced different read/write sets (non-deterministic chaincode, or a
  lying endorser). Fabric discards such transactions, which is the
  "supports non-deterministic execution" property the paper credits XOV
  with: divergence is caught *before* commit instead of corrupting
  replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.common.errors import ConfigError, ValidationError
from repro.common.types import Endorsement, Transaction
from repro.crypto.signatures import MembershipService
from repro.execution.contracts import ContractRegistry
from repro.execution.mvcc import EndorsedTx
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.store import StateSnapshot


class EndorsementPolicy:
    """Base class of the policy expression tree."""

    def satisfied_by(self, orgs: set[str]) -> bool:
        raise NotImplementedError

    def organizations(self) -> set[str]:
        """Every organisation the policy could ever ask for."""
        raise NotImplementedError


@dataclass(frozen=True)
class Org(EndorsementPolicy):
    """Leaf: a specific organisation must endorse."""

    name: str

    def satisfied_by(self, orgs: set[str]) -> bool:
        return self.name in orgs

    def organizations(self) -> set[str]:
        return {self.name}


@dataclass(frozen=True)
class And(EndorsementPolicy):
    """Every sub-policy must be satisfied."""

    parts: tuple[EndorsementPolicy, ...]

    def satisfied_by(self, orgs: set[str]) -> bool:
        return all(part.satisfied_by(orgs) for part in self.parts)

    def organizations(self) -> set[str]:
        return set().union(*(part.organizations() for part in self.parts))


@dataclass(frozen=True)
class Or(EndorsementPolicy):
    """At least one sub-policy must be satisfied."""

    parts: tuple[EndorsementPolicy, ...]

    def satisfied_by(self, orgs: set[str]) -> bool:
        return any(part.satisfied_by(orgs) for part in self.parts)

    def organizations(self) -> set[str]:
        return set().union(*(part.organizations() for part in self.parts))


@dataclass(frozen=True)
class KOutOf(EndorsementPolicy):
    """At least ``k`` of the sub-policies must be satisfied."""

    k: int
    parts: tuple[EndorsementPolicy, ...]

    def __post_init__(self) -> None:
        if not 1 <= self.k <= len(self.parts):
            raise ConfigError(
                f"k must be in [1, {len(self.parts)}], got {self.k}"
            )

    def satisfied_by(self, orgs: set[str]) -> bool:
        return sum(1 for part in self.parts if part.satisfied_by(orgs)) >= self.k

    def organizations(self) -> set[str]:
        return set().union(*(part.organizations() for part in self.parts))


def any_of(*names: str) -> Or:
    return Or(tuple(Org(name) for name in names))


def all_of(*names: str) -> And:
    return And(tuple(Org(name) for name in names))


def majority_of(*names: str) -> KOutOf:
    return KOutOf(len(names) // 2 + 1, tuple(Org(name) for name in names))


@dataclass
class EndorsementOutcome:
    """Result of collecting endorsements for one transaction."""

    endorsed: EndorsedTx | None
    endorsing_orgs: set[str]
    reason: str | None  # None = success

    @property
    def ok(self) -> bool:
        return self.endorsed is not None and self.endorsed.ok


class EndorsingPeerGroup:
    """The endorsing peers of a set of organisations.

    Each organisation runs one endorsing peer (enrolled with the
    membership service); a client gathers signed endorsements from the
    organisations its policy names and submits the transaction only if
    the policy is met with *matching* results.
    """

    def __init__(
        self,
        registry: ContractRegistry,
        membership: MembershipService,
        orgs: Iterable[str],
    ) -> None:
        self.registry = registry
        self.membership = membership
        self.orgs = sorted(set(orgs))
        if not self.orgs:
            raise ConfigError("need at least one endorsing organisation")
        for org in self.orgs:
            if not membership.is_member(self._peer_of(org)):
                membership.register(self._peer_of(org))
        #: Per-org fault injection: orgs listed here return a corrupted
        #: read/write set (a lying endorser / non-deterministic contract).
        self.faulty_orgs: set[str] = set()
        #: Orgs listed here do not respond at all.
        self.offline_orgs: set[str] = set()

    @staticmethod
    def _peer_of(org: str) -> str:
        return f"peer.{org}"

    def _endorse_at_org(
        self, org: str, tx: Transaction, snapshot: StateSnapshot
    ) -> tuple[RWSet, Endorsement]:
        rwset = execute_with_capture(self.registry, tx, snapshot)
        if org in self.faulty_orgs and rwset.ok:
            # A lying endorser signs a divergent result.
            rwset = RWSet(
                tx_id=rwset.tx_id,
                reads=dict(rwset.reads),
                writes={**rwset.writes, f"corrupt:{org}": True},
                ok=True,
                result=rwset.result,
                cost=rwset.cost,
            )
        digest = rwset.digest()
        signature = self.membership.sign(self._peer_of(org), digest.encode())
        endorsement = Endorsement(
            endorser=self._peer_of(org),
            tx_id=tx.tx_id,
            rwset_digest=digest,
            signature=signature,
        )
        return rwset, endorsement

    def collect(
        self,
        tx: Transaction,
        snapshot: StateSnapshot,
        policy: EndorsementPolicy,
    ) -> EndorsementOutcome:
        """Gather endorsements from the policy's organisations and check
        the policy over the *largest agreeing group* of results."""
        targets = sorted(policy.organizations())
        unknown = set(targets) - set(self.orgs)
        if unknown:
            raise ValidationError(f"policy names unknown orgs: {unknown}")
        by_digest: dict[str, list[tuple[str, RWSet, Endorsement]]] = {}
        for org in targets:
            if org in self.offline_orgs:
                continue
            rwset, endorsement = self._endorse_at_org(org, tx, snapshot)
            by_digest.setdefault(endorsement.rwset_digest, []).append(
                (org, rwset, endorsement)
            )
        if not by_digest:
            return EndorsementOutcome(
                endorsed=None, endorsing_orgs=set(), reason="no_endorsers"
            )
        # The client submits the result the policy-satisfying group agrees
        # on; disagreement beyond that is an endorsement mismatch.
        best_digest = max(by_digest, key=lambda d: len(by_digest[d]))
        group = by_digest[best_digest]
        agreeing_orgs = {org for org, _, _ in group}
        if not policy.satisfied_by(agreeing_orgs):
            reason = (
                "endorsement_mismatch" if len(by_digest) > 1
                else "policy_unsatisfied"
            )
            return EndorsementOutcome(
                endorsed=None, endorsing_orgs=agreeing_orgs, reason=reason
            )
        rwset = group[0][1]
        endorsements = tuple(e for _, _, e in group)
        return EndorsementOutcome(
            endorsed=EndorsedTx(tx=tx, rwset=rwset, endorsements=endorsements),
            endorsing_orgs=agreeing_orgs,
            reason=None,
        )

    def verify_endorsements(self, endorsed: EndorsedTx) -> bool:
        """Validator-side check: every endorsement signs the same digest
        and verifies against its peer's registered key. The signatures
        go through the membership service's batch path, so a set already
        checked at submission re-validates from cache."""
        digest = endorsed.rwset.digest()
        if any(
            endorsement.rwset_digest != digest
            for endorsement in endorsed.endorsements
        ):
            return False
        return self.membership.verify_batch(
            (endorsement.endorser, digest.encode(), endorsement.signature)
            for endorsement in endorsed.endorsements
        )
