"""MVCC endorsement and validation — the XOV (Fabric) pipeline pieces.

In execute-order-validate (paper section 2.3.3), endorsers *simulate*
a transaction against their current state, producing a versioned
read/write set. After ordering, validators check that every read version
is still current; a transaction whose reads went stale is marked invalid
and its writes are discarded — "it has to disregard the effects of
conflicting transactions".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.types import Endorsement, Transaction
from repro.execution.contracts import ContractRegistry
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.store import StateSnapshot, StateStore


@dataclass
class EndorsedTx:
    """A transaction together with its endorsement-time effects."""

    tx: Transaction
    rwset: RWSet
    endorsements: tuple[Endorsement, ...] = ()

    @property
    def ok(self) -> bool:
        return self.rwset.ok


def endorse(
    tx: Transaction, snapshot: StateSnapshot | StateStore, registry: ContractRegistry
) -> EndorsedTx:
    """Simulate ``tx`` against ``snapshot`` (the endorsement phase)."""
    rwset = execute_with_capture(registry, tx, snapshot)
    return EndorsedTx(tx=tx, rwset=rwset)


def validate_endorsement(
    endorsed: EndorsedTx, store: StateStore, dirty: dict[str, int] | None = None
) -> bool:
    """MVCC check: are the endorsement-time read versions still current?

    ``dirty`` optionally maps keys already written by *earlier valid
    transactions of the same block* to the writing tx's position —
    Fabric validates within a block too, so a tx reading a key written
    earlier in the block is invalid even before the store is updated.
    """
    if not endorsed.ok:
        return False
    dirty = dirty or {}
    for key, seen_version in endorsed.rwset.reads.items():
        if key in dirty:
            return False
        if store.version_of(key) != seen_version:
            return False
    return True
