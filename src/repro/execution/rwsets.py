"""Read/write sets: the unit of conflict detection everywhere.

``execute_with_capture`` runs a contract against a state view and returns
the resulting :class:`RWSet` — the versions read and the values written —
plus whether the contract succeeded. Endorsement (XOV), dependency
analysis (Fabric++/Sharp) and deterministic re-execution (XOX) all
operate on these captured sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ExecutionError
from repro.common.types import Transaction
from repro.crypto.digests import sha256_hex
from repro.execution.contracts import ContractContext, ContractRegistry
from repro.ledger.store import StateSnapshot, StateStore, Version


@dataclass
class RWSet:
    """Captured effects of one contract invocation.

    Attributes:
        tx_id: Transaction this set belongs to.
        reads: ``key -> version observed`` at execution time.
        writes: ``key -> new value`` (None means delete).
        ok: False when the contract raised (business-rule abort).
        result: The contract's return value (None on failure).
        cost: Modelled execution time in simulated seconds.
    """

    tx_id: str
    reads: dict[str, Version] = field(default_factory=dict)
    writes: dict[str, Any] = field(default_factory=dict)
    ok: bool = True
    result: Any = None
    cost: float = 0.0

    @property
    def read_keys(self) -> frozenset[str]:
        return frozenset(self.reads)

    @property
    def write_keys(self) -> frozenset[str]:
        return frozenset(self.writes)

    def digest(self) -> str:
        """Stable digest endorsers sign over (XOV endorsement compare)."""
        reads = sorted(
            (k, v.height, v.tx_index) for k, v in self.reads.items()
        )
        writes = sorted((k, repr(v)) for k, v in self.writes.items())
        return sha256_hex(f"{self.tx_id}|{reads!r}|{writes!r}|{self.ok}")

    def conflicts_with(self, other: "RWSet") -> bool:
        """Write-read / write-write overlap between two captured sets."""
        return bool(
            self.write_keys & (other.read_keys | other.write_keys)
            or other.write_keys & self.read_keys
        )


def execute_with_capture(
    registry: ContractRegistry,
    tx: Transaction,
    view: StateStore | StateSnapshot,
) -> RWSet:
    """Run ``tx``'s contract against ``view``, capturing its effects.

    A contract that raises :class:`ExecutionError` yields an unsuccessful
    RWSet with empty writes — business-rule aborts leave no side effects.
    Any other exception propagates: contracts are required to be
    deterministic and total, so an unexpected error is a library bug,
    not a transaction abort.
    """
    ctx = ContractContext(view)
    cost = registry.cost(tx.contract)
    fn = registry.contract(tx.contract)
    try:
        result = fn(ctx, *tx.args)
    except ExecutionError:
        return RWSet(tx_id=tx.tx_id, reads=ctx.reads, ok=False, cost=cost)
    return RWSet(
        tx_id=tx.tx_id,
        reads=ctx.reads,
        writes=ctx.writes,
        ok=True,
        result=result,
        cost=cost,
    )
