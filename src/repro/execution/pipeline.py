"""Pipelined block validation — FastFabric's cross-block overlap.

FastFabric (Gorenflo et al., ICBC 2019) "parallelizes the transaction
validation pipeline": while block k is being committed, block k+1 is
already being verified. :class:`ExecutionPipeline` models that on the
simulator's virtual timeline: up to ``depth`` blocks may occupy
validation lanes concurrently, but completion times are forced to be
monotone in claim order, so state transitions still apply in exact
block order (commit-order preservation — the property the
ledger-linkage and prefix-consistency monitors assert under faults).

``depth=1`` degenerates to the single serial executor timeline every
architecture used before pipelining existed, byte-identical in every
modelled timestamp.
"""

from __future__ import annotations

import heapq

from repro.common.errors import ConfigError


class ExecutionPipeline:
    """Virtual-time executor lanes with in-order completion.

    :meth:`claim` books ``duration`` seconds of work on the least-loaded
    lane and returns the moment the work — *and every claim before it* —
    is done. The monotone return value is what keeps commits in block
    order: a short block decided after a long one finishes no earlier.
    """

    __slots__ = ("_lanes", "_last_done", "depth")

    def __init__(self, depth: int = 1) -> None:
        if depth < 1:
            raise ConfigError(f"pipeline depth must be >= 1, got {depth}")
        self.depth = depth
        self._lanes = [0.0] * depth
        self._last_done = 0.0

    @property
    def free_at(self) -> float:
        """Earliest moment any lane is free (next claim's floor)."""
        return self._lanes[0]

    @property
    def last_done(self) -> float:
        """Completion time of the most recent claim."""
        return self._last_done

    def claim(self, now: float, duration: float) -> float:
        """Occupy a lane for ``duration`` starting no earlier than
        ``now``; returns the in-order completion time."""
        lane_free = heapq.heappop(self._lanes)
        start = now if now > lane_free else lane_free
        done = start + duration
        heapq.heappush(self._lanes, done)
        if done > self._last_done:
            self._last_done = done
        return self._last_done

    def reset(self, now: float = 0.0) -> None:
        """Drain every lane to ``now`` — a synchronisation barrier.

        The parallel-backend makespan model calls this between waves:
        all lanes become free at the barrier time and the completion
        clock restarts there, so per-wave makespans chain additively.
        """
        self._lanes = [now] * self.depth
        self._last_done = now
