"""Block reordering — Fabric++ and FabricSharp (paper section 2.3.3).

Fabric++ "employs concurrency control techniques from databases to early
abort transactions or reorder them after the order phase"; FabricSharp
"presents an algorithm to early filter out transactions that can never be
reordered and ... a reordering technique that eliminates unnecessary
aborts".

Model: all transactions in a block were endorsed against (approximately)
the same committed snapshot. If transaction A *writes* a key that
transaction B *read*, then B is only valid if it commits **before** A —
a constraint edge B → A. A valid serialization is a topological order of
the constraint graph; transactions trapped in cycles cannot all survive,
so some must abort. The two systems differ in how they pick the victims:

* ``reorder_fabricpp`` — greedy: repeatedly abort the transaction with
  the highest degree inside a strongly connected component (Fabric++'s
  heuristic).
* ``reorder_fabricsharp`` — first early-aborts transactions whose reads
  are already stale versus the *current committed state* (they can never
  be reordered into validity), then computes a minimum feedback vertex
  set exactly for small components, falling back to the greedy heuristic
  for large ones. FabricSharp therefore never aborts more than Fabric++
  on the same block — the relationship the paper asserts.

Constraint edges are normally served by the system's persistent
:class:`~repro.execution.conflict_index.ConstraintIndex` (built
incrementally at endorsement time); pass ``edge_fn`` to supply them.
Without it, :func:`_constraint_edges` rebuilds them from the block — the
one-shot form used by direct API callers and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.execution.mvcc import EndorsedTx
from repro.ledger.store import StateStore

#: Components larger than this use the greedy heuristic instead of the
#: exact minimum-feedback-vertex-set search. The exact search is a
#: size-ordered (iterative-deepening) lexicographic DFS that prunes any
#: branch whose every extension is already known infeasible — vastly
#: smaller than the brute-force subset sweep it replaced, which capped
#: the limit at 12.
_EXACT_FVS_LIMIT = 20

#: Mapping a list of endorsed transactions to their constraint edges
#: (local indices). Plugged by the incremental index; defaults to the
#: from-scratch rebuild.
EdgeFn = Callable[[list[EndorsedTx]], dict[int, set[int]]]


@dataclass
class ReorderOutcome:
    """Result of reordering one block."""

    order: list[EndorsedTx] = field(default_factory=list)
    aborted: list[EndorsedTx] = field(default_factory=list)
    early_aborted: list[EndorsedTx] = field(default_factory=list)

    @property
    def survivors(self) -> int:
        return len(self.order)


def partition_endorsed(
    txs: list[EndorsedTx],
) -> tuple[list[EndorsedTx], list[EndorsedTx]]:
    """Split a block into (endorsement-ok, endorsement-failed)."""
    usable: list[EndorsedTx] = []
    failed: list[EndorsedTx] = []
    for endorsed in txs:
        (usable if endorsed.ok else failed).append(endorsed)
    return usable, failed


def _constraint_edges(txs: list[EndorsedTx]) -> dict[int, set[int]]:
    """Edge b -> a when tx b read a key tx a writes (b must precede a)."""
    writers: dict[str, list[int]] = {}
    for i, endorsed in enumerate(txs):
        for key in endorsed.rwset.write_keys:
            writers.setdefault(key, []).append(i)
    edges: dict[int, set[int]] = {i: set() for i in range(len(txs))}
    for b, endorsed in enumerate(txs):
        for key in endorsed.rwset.read_keys:
            for a in writers.get(key, ()):
                if a != b:
                    edges[b].add(a)
    return edges


def _tarjan_sccs(edges: dict[int, set[int]]) -> list[list[int]]:
    """Strongly connected components (iterative Tarjan, no recursion)."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        work = [(root, iter(sorted(edges[root])))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _is_acyclic_subset(nodes: set[int], edges: dict[int, set[int]]) -> bool:
    """Kahn's algorithm restricted to ``nodes``."""
    indeg = {n: 0 for n in nodes}
    for n in nodes:
        for succ in edges[n]:
            if succ in nodes:
                indeg[succ] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for succ in edges[node]:
            if succ in indeg:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
    return seen == len(nodes)


def _greedy_victims(component: list[int], edges: dict[int, set[int]]) -> set[int]:
    """Fabric++'s heuristic: drop max-degree vertices until acyclic."""
    alive = set(component)
    victims: set[int] = set()
    while len(alive) > 1 and not _is_acyclic_subset(alive, edges):
        def degree(node: int) -> tuple[int, int]:
            out_deg = sum(1 for s in edges[node] if s in alive)
            in_deg = sum(1 for n in alive if node in edges[n])
            return (out_deg + in_deg, node)

        victim = max(alive, key=degree)
        alive.discard(victim)
        victims.add(victim)
    return victims


def _minimum_victims(component: list[int], edges: dict[int, set[int]]) -> set[int]:
    """Exact minimum feedback vertex set, smallest-size-first.

    Equivalent to sweeping ``itertools.combinations`` in size order and
    returning the first (lexicographically smallest) acyclifying subset,
    but as a DFS that prunes every branch whose *maximal* extension —
    the partial choice plus all remaining candidates — still leaves a
    cycle: supersets drawn from a known-infeasible candidate pool can
    never become feasible, so whole subtrees of the subset lattice are
    skipped instead of enumerated.
    """
    nodes = set(component)
    order = sorted(component)
    n = len(order)

    def search(size: int) -> set[int] | None:
        chosen: list[int] = []

        def dfs(pos: int, budget: int) -> set[int] | None:
            if budget == 0:
                removed = set(chosen)
                return removed if _is_acyclic_subset(nodes - removed, edges) else None
            if n - pos < budget:
                return None
            # Prune: if removing the partial choice AND every remaining
            # candidate still leaves a cycle, no extension is feasible.
            if not _is_acyclic_subset(
                nodes.difference(chosen).difference(order[pos:]), edges
            ):
                return None
            for i in range(pos, n - budget + 1):
                chosen.append(order[i])
                found = dfs(i + 1, budget - 1)
                if found is not None:
                    return found
                chosen.pop()
            return None

        return dfs(0, size)

    for size in range(1, len(component)):
        found = search(size)
        if found is not None:
            return found
    return nodes - {min(component)}


def _reorder(
    txs: list[EndorsedTx],
    exact_small_components: bool,
    edge_fn: EdgeFn | None = None,
    exact_limit: int | None = None,
) -> tuple[list[int], set[int]]:
    edges = (edge_fn or _constraint_edges)(txs)
    limit = _EXACT_FVS_LIMIT if exact_limit is None else exact_limit
    victims: set[int] = set()
    for component in _tarjan_sccs(edges):
        if len(component) == 1:
            continue
        if exact_small_components and len(component) <= limit:
            victims |= _minimum_victims(component, edges)
        else:
            victims |= _greedy_victims(component, edges)
    alive = [i for i in range(len(txs)) if i not in victims]
    return _topological_order(alive, edges), victims


def _topological_order(
    alive: list[int], edges: dict[int, set[int]]
) -> list[int]:
    """Deterministic topological order of the surviving constraint graph."""
    import heapq

    alive_set = set(alive)
    indeg = {n: 0 for n in alive}
    for n in alive:
        for succ in edges[n]:
            if succ in alive_set:
                indeg[succ] += 1
    ready = [n for n in alive if indeg[n] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for succ in sorted(edges[node]):
            if succ in alive_set:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(ready, succ)
    return order


def early_abort_stale(
    txs: list[EndorsedTx], store: StateStore
) -> tuple[list[EndorsedTx], list[EndorsedTx]]:
    """Split out transactions whose reads are stale versus committed state.

    No reordering within the block can revive them — the keys were
    overwritten by an *earlier committed block* — so FabricSharp drops
    them before the expensive analysis ("filter out transactions that
    can never be reordered").
    """
    fresh: list[EndorsedTx] = []
    doomed: list[EndorsedTx] = []
    for endorsed in txs:
        stale = any(
            store.version_of(key) != version
            for key, version in endorsed.rwset.reads.items()
        )
        (doomed if stale else fresh).append(endorsed)
    return fresh, doomed


def reorder_fabricpp(
    txs: list[EndorsedTx], edge_fn: EdgeFn | None = None
) -> ReorderOutcome:
    """Fabric++ reordering: greedy cycle-breaking, then topological order."""
    usable, failed = partition_endorsed(txs)
    order, victims = _reorder(
        usable, exact_small_components=False, edge_fn=edge_fn
    )
    return ReorderOutcome(
        order=[usable[i] for i in order],
        aborted=[usable[i] for i in sorted(victims)] + failed,
    )


def reorder_fabricsharp(
    txs: list[EndorsedTx],
    store: StateStore,
    edge_fn: EdgeFn | None = None,
    exact_limit: int | None = None,
) -> ReorderOutcome:
    """FabricSharp: early-abort doomed txs, then minimal-abort reordering."""
    usable, failed = partition_endorsed(txs)
    fresh, doomed = early_abort_stale(usable, store)
    order, victims = _reorder(
        fresh,
        exact_small_components=True,
        edge_fn=edge_fn,
        exact_limit=exact_limit,
    )
    return ReorderOutcome(
        order=[fresh[i] for i in order],
        aborted=[fresh[i] for i in sorted(victims)] + failed,
        early_aborted=doomed,
    )
