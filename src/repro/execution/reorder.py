"""Block reordering — Fabric++ and FabricSharp (paper section 2.3.3).

Fabric++ "employs concurrency control techniques from databases to early
abort transactions or reorder them after the order phase"; FabricSharp
"presents an algorithm to early filter out transactions that can never be
reordered and ... a reordering technique that eliminates unnecessary
aborts".

Model: all transactions in a block were endorsed against (approximately)
the same committed snapshot. If transaction A *writes* a key that
transaction B *read*, then B is only valid if it commits **before** A —
a constraint edge B → A. A valid serialization is a topological order of
the constraint graph; transactions trapped in cycles cannot all survive,
so some must abort. The two systems differ in how they pick the victims:

* ``reorder_fabricpp`` — greedy: repeatedly abort the transaction with
  the highest degree inside a strongly connected component (Fabric++'s
  heuristic).
* ``reorder_fabricsharp`` — first early-aborts transactions whose reads
  are already stale versus the *current committed state* (they can never
  be reordered into validity), then computes a minimum feedback vertex
  set exactly for small components, falling back to the greedy heuristic
  for large ones. FabricSharp therefore never aborts more than Fabric++
  on the same block — the relationship the paper asserts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations

from repro.execution.mvcc import EndorsedTx
from repro.ledger.store import StateStore

#: Components larger than this use the greedy heuristic instead of the
#: exact minimum-feedback-vertex-set search (which is exponential).
_EXACT_FVS_LIMIT = 12


@dataclass
class ReorderOutcome:
    """Result of reordering one block."""

    order: list[EndorsedTx] = field(default_factory=list)
    aborted: list[EndorsedTx] = field(default_factory=list)
    early_aborted: list[EndorsedTx] = field(default_factory=list)

    @property
    def survivors(self) -> int:
        return len(self.order)


def _constraint_edges(txs: list[EndorsedTx]) -> dict[int, set[int]]:
    """Edge b -> a when tx b read a key tx a writes (b must precede a)."""
    writers: dict[str, list[int]] = {}
    for i, endorsed in enumerate(txs):
        for key in endorsed.rwset.write_keys:
            writers.setdefault(key, []).append(i)
    edges: dict[int, set[int]] = {i: set() for i in range(len(txs))}
    for b, endorsed in enumerate(txs):
        for key in endorsed.rwset.read_keys:
            for a in writers.get(key, ()):
                if a != b:
                    edges[b].add(a)
    return edges


def _tarjan_sccs(edges: dict[int, set[int]]) -> list[list[int]]:
    """Strongly connected components (iterative Tarjan, no recursion)."""
    index_of: dict[int, int] = {}
    lowlink: dict[int, int] = {}
    on_stack: set[int] = set()
    stack: list[int] = []
    sccs: list[list[int]] = []
    counter = [0]

    for root in edges:
        if root in index_of:
            continue
        work = [(root, iter(sorted(edges[root])))]
        index_of[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index_of:
                    index_of[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack.add(succ)
                    work.append((succ, iter(sorted(edges[succ]))))
                    advanced = True
                    break
                if succ in on_stack:
                    lowlink[node] = min(lowlink[node], index_of[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                sccs.append(component)
    return sccs


def _is_acyclic_subset(nodes: set[int], edges: dict[int, set[int]]) -> bool:
    """Kahn's algorithm restricted to ``nodes``."""
    indeg = {n: 0 for n in nodes}
    for n in nodes:
        for succ in edges[n]:
            if succ in nodes:
                indeg[succ] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for succ in edges[node]:
            if succ in indeg:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    queue.append(succ)
    return seen == len(nodes)


def _greedy_victims(component: list[int], edges: dict[int, set[int]]) -> set[int]:
    """Fabric++'s heuristic: drop max-degree vertices until acyclic."""
    alive = set(component)
    victims: set[int] = set()
    while len(alive) > 1 and not _is_acyclic_subset(alive, edges):
        def degree(node: int) -> tuple[int, int]:
            out_deg = sum(1 for s in edges[node] if s in alive)
            in_deg = sum(1 for n in alive if node in edges[n])
            return (out_deg + in_deg, node)

        victim = max(alive, key=degree)
        alive.discard(victim)
        victims.add(victim)
    return victims


def _minimum_victims(component: list[int], edges: dict[int, set[int]]) -> set[int]:
    """Exact minimum feedback vertex set by subset enumeration."""
    nodes = set(component)
    for size in range(1, len(component)):
        for subset in combinations(sorted(component), size):
            if _is_acyclic_subset(nodes - set(subset), edges):
                return set(subset)
    return nodes - {min(component)}


def _topological_order(
    alive: list[int], edges: dict[int, set[int]]
) -> list[int]:
    """Deterministic topological order of the surviving constraint graph."""
    alive_set = set(alive)
    indeg = {n: 0 for n in alive}
    for n in alive:
        for succ in edges[n]:
            if succ in alive_set:
                indeg[succ] += 1
    import heapq

    ready = [n for n in alive if indeg[n] == 0]
    heapq.heapify(ready)
    order: list[int] = []
    while ready:
        node = heapq.heappop(ready)
        order.append(node)
        for succ in sorted(edges[node]):
            if succ in alive_set:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    heapq.heappush(ready, succ)
    return order


def _reorder(
    txs: list[EndorsedTx], exact_small_components: bool
) -> tuple[list[int], set[int]]:
    edges = _constraint_edges(txs)
    victims: set[int] = set()
    for component in _tarjan_sccs(edges):
        if len(component) == 1:
            continue
        use_exact = exact_small_components and len(component) <= _EXACT_FVS_LIMIT
        if use_exact:
            victims |= _minimum_victims(component, edges)
        else:
            victims |= _greedy_victims(component, edges)
    alive = [i for i in range(len(txs)) if i not in victims]
    return _topological_order(alive, edges), victims


def early_abort_stale(
    txs: list[EndorsedTx], store: StateStore
) -> tuple[list[EndorsedTx], list[EndorsedTx]]:
    """Split out transactions whose reads are stale versus committed state.

    No reordering within the block can revive them — the keys were
    overwritten by an *earlier committed block* — so FabricSharp drops
    them before the expensive analysis ("filter out transactions that
    can never be reordered").
    """
    fresh: list[EndorsedTx] = []
    doomed: list[EndorsedTx] = []
    for endorsed in txs:
        stale = any(
            store.version_of(key) != version
            for key, version in endorsed.rwset.reads.items()
        )
        (doomed if stale else fresh).append(endorsed)
    return fresh, doomed


def reorder_fabricpp(txs: list[EndorsedTx]) -> ReorderOutcome:
    """Fabric++ reordering: greedy cycle-breaking, then topological order."""
    usable = [t for t in txs if t.ok]
    failed = [t for t in txs if not t.ok]
    order, victims = _reorder(usable, exact_small_components=False)
    return ReorderOutcome(
        order=[usable[i] for i in order],
        aborted=[usable[i] for i in sorted(victims)] + failed,
    )


def reorder_fabricsharp(txs: list[EndorsedTx], store: StateStore) -> ReorderOutcome:
    """FabricSharp: early-abort doomed txs, then minimal-abort reordering."""
    usable = [t for t in txs if t.ok]
    failed = [t for t in txs if not t.ok]
    fresh, doomed = early_abort_stale(usable, store)
    order, victims = _reorder(fresh, exact_small_components=True)
    return ReorderOutcome(
        order=[fresh[i] for i in order],
        aborted=[fresh[i] for i in sorted(victims)] + failed,
        early_aborted=doomed,
    )
