"""Smart contracts: deterministic Python functions over versioned state.

A contract is a function ``fn(ctx, *args)`` that reads and writes keys
through a :class:`ContractContext`. The context records which versions
were read and which keys were written — the read/write sets on which
every architecture's conflict handling is built.

The registry also carries a modelled *execution cost* per contract
(simulated CPU seconds), which is how the simulator charges time for the
execute phase without the host machine's speed leaking into results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.common.errors import ExecutionError
from repro.ledger.store import StateSnapshot, StateStore, Version, VersionedValue

#: Default modelled execution cost of one contract call, in simulated
#: seconds. Roughly a lightweight chaincode invocation.
DEFAULT_CONTRACT_COST = 0.001

ContractFn = Callable[..., Any]


@dataclass(frozen=True)
class _RegisteredContract:
    name: str
    fn: ContractFn
    cost: float


class ContractContext:
    """State access handle passed to a running contract.

    Reads go to the underlying view (a live store or a snapshot) unless
    the contract already wrote the key in this invocation — contracts
    read their own writes. Every foreign read records the key's version;
    every write is buffered until the engine decides to commit it.
    """

    def __init__(self, view: StateStore | StateSnapshot) -> None:
        self._view = view
        self.reads: dict[str, Version] = {}
        self.writes: dict[str, Any] = {}

    def get(self, key: str, default: Any = None) -> Any:
        if key in self.writes:
            return self.writes[key]
        entry: VersionedValue = self._view.get_versioned(key)
        self.reads[key] = entry.version
        return entry.value if entry.value is not None else default

    def put(self, key: str, value: Any) -> None:
        if value is None:
            raise ExecutionError("use delete() to remove a key, not put(None)")
        self.writes[key] = value

    def delete(self, key: str) -> None:
        # None is the delete sentinel understood by StateStore.apply_writes.
        self.writes[key] = None

    def require(self, condition: bool, reason: str) -> None:
        """Abort the contract when a business rule is violated."""
        if not condition:
            raise ExecutionError(reason)


class ContractRegistry:
    """Named, deterministic contract functions with modelled costs."""

    def __init__(self) -> None:
        self._contracts: dict[str, _RegisteredContract] = {}

    def register(
        self, name: str, fn: ContractFn, cost: float = DEFAULT_CONTRACT_COST
    ) -> None:
        if name in self._contracts:
            raise ExecutionError(f"contract already registered: {name}")
        if cost < 0:
            raise ExecutionError(f"contract cost must be non-negative: {cost}")
        self._contracts[name] = _RegisteredContract(name=name, fn=fn, cost=cost)

    def contract(self, name: str) -> ContractFn:
        return self._lookup(name).fn

    def cost(self, name: str) -> float:
        return self._lookup(name).cost

    def names(self) -> list[str]:
        return list(self._contracts)

    def __contains__(self, name: str) -> bool:
        return name in self._contracts

    def _lookup(self, name: str) -> _RegisteredContract:
        try:
            return self._contracts[name]
        except KeyError:
            raise ExecutionError(f"unknown contract: {name}") from None


def standard_registry() -> ContractRegistry:
    """A registry with the library's stock contracts.

    These cover the workload generators: plain key/value writes,
    read-modify-write counters, and account transfers (the SmallBank and
    financial-application shapes the paper motivates with).
    """
    registry = ContractRegistry()
    registry.register("kv_set", _kv_set)
    registry.register("kv_get", _kv_get)
    registry.register("increment", _increment)
    registry.register("transfer", _transfer)
    registry.register("deposit", _deposit)
    registry.register("read_many", _read_many)
    return registry


def _kv_set(ctx: ContractContext, key: str, value: Any) -> Any:
    ctx.put(key, value)
    return value


def _kv_get(ctx: ContractContext, key: str) -> Any:
    return ctx.get(key)


def _increment(ctx: ContractContext, key: str, amount: int = 1) -> int:
    current = ctx.get(key, 0)
    updated = current + amount
    ctx.put(key, updated)
    return updated


def _transfer(ctx: ContractContext, src: str, dst: str, amount: int) -> int:
    balance = ctx.get(src, 0)
    ctx.require(balance >= amount, f"insufficient funds in {src}")
    ctx.put(src, balance - amount)
    ctx.put(dst, ctx.get(dst, 0) + amount)
    return amount


def _deposit(ctx: ContractContext, account: str, amount: int) -> int:
    updated = ctx.get(account, 0) + amount
    ctx.put(account, updated)
    return updated


def _read_many(ctx: ContractContext, *keys: str) -> list[Any]:
    return [ctx.get(key) for key in keys]
