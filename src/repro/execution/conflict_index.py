"""Incremental per-key reader/writer conflict indexes.

ParBlockchain (arXiv:1902.01457) builds its dependency graphs *at
ordering time*, incrementally, as transactions stream into a block —
not by re-scanning the whole block after the fact. This module is that
structure, shared by the three execution-layer consumers:

* :class:`BlockConflictIndex` — the OXII flavour. Ingests declared
  read/write sets as transactions arrive and records, per transaction,
  its conflict *predecessors* (earlier accessors it must follow).
  Cutting a block is then an O(intra-block edges) extraction
  (:meth:`BlockConflictIndex.graph_for`) instead of a per-block rebuild.
* :class:`ConstraintIndex` — the Fabric++ / FabricSharp flavour.
  Records read-from constraint edges (reader must commit before the
  writer that would invalidate it) incrementally at endorsement time,
  so the reorderers' conflict analysis becomes a lookup
  (:meth:`ConstraintIndex.edges_among`).
* :class:`KeyLockIndex` — the sharded systems' no-wait lock table:
  conflict probes are O(keys touched) and release is O(keys held),
  replacing the per-transaction ``touched & set(lock_dict)`` rebuild.

Both transaction indexes hand out monotonically increasing integer
*uids* at ingest and support :meth:`seal`: once every transaction below
a boundary sits in a decided block, per-key accessor lists are pruned
(lazily, on the next scan) so hot-key lookups stay proportional to the
*pending* window rather than the whole run. :class:`SealTracker` turns
possibly out-of-order block decisions into that monotone boundary.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Sequence

from repro.execution.depgraph import DependencyGraph


class _AccessLists:
    """Per-key ascending uid lists with lazy seal-boundary pruning."""

    __slots__ = ("_lists", "_sealed")

    def __init__(self) -> None:
        self._lists: dict[str, list[int]] = {}
        self._sealed = 0

    def seal(self, boundary: int) -> None:
        self._sealed = max(self._sealed, boundary)

    def live(self, key: str) -> list[int]:
        """The key's still-pending accessors (pruned in place)."""
        uids = self._lists.get(key)
        if uids is None:
            return _EMPTY
        if uids and uids[0] < self._sealed:
            del uids[: bisect_left(uids, self._sealed)]
        return uids

    def append(self, key: str, uid: int) -> None:
        lst = self._lists.get(key)
        if lst is None:
            self._lists[key] = [uid]
        else:
            lst.append(uid)


_EMPTY: list[int] = []


class BlockConflictIndex:
    """Incremental dependency-graph index (the OXII / ParBlockchain path).

    Ingestion order must match eventual block order (true for the
    ordering queue: blocks are contiguous slices of the enqueue stream).
    Each ingest records the transaction's conflict predecessors — every
    earlier still-pending accessor the dependency-graph semantics of
    :func:`~repro.execution.depgraph.build_dependency_graph` would draw
    an edge from: write-write and read-write conflicts in both
    directions, directed by arrival order. Extracting a block's graph
    filters those predecessor lists to the block's members, so the cost
    per block is O(intra-block edges), never O(block²) and never a
    rescan of keys already indexed.
    """

    def __init__(self) -> None:
        self._readers = _AccessLists()
        self._writers = _AccessLists()
        self._cleared = 0
        #: Per-uid sorted predecessor uids (conflicts this tx follows).
        self._preds: list[tuple[int, ...]] = []

    @property
    def ingested(self) -> int:
        return len(self._preds)

    def ingest(
        self, read_keys: Iterable[str], write_keys: Iterable[str]
    ) -> int:
        """Index one declared read/write set; returns its uid."""
        uid = len(self._preds)
        preds: set[int] = set()
        for key in write_keys:
            # Write-write and read-write against all earlier accessors.
            preds.update(self._writers.live(key))
            preds.update(self._readers.live(key))
            self._writers.append(key, uid)
        for key in read_keys:
            preds.update(self._writers.live(key))
            self._readers.append(key, uid)
        preds.discard(uid)
        self._preds.append(tuple(sorted(preds)))
        return uid

    def seal(self, boundary: int) -> None:
        """Every uid below ``boundary`` is in a decided block; prune."""
        self._readers.seal(boundary)
        self._writers.seal(boundary)
        for uid in range(self._cleared, min(boundary, len(self._preds))):
            self._preds[uid] = ()
        self._cleared = max(self._cleared, min(boundary, len(self._preds)))

    def graph_for(self, uids: Sequence[int], txs: list) -> DependencyGraph:
        """The block's dependency graph, in block (== ``uids``) order.

        Byte-identical to ``build_dependency_graph(txs)``: the
        predecessor lists already hold every conflict, so this only
        restricts them to the block's membership.
        """
        local = {uid: i for i, uid in enumerate(uids)}
        successors: dict[int, set[int]] = {i: set() for i in range(len(uids))}
        for i, uid in enumerate(uids):
            for pred in self._preds[uid]:
                j = local.get(pred)
                if j is not None and j != i:
                    successors[j].add(i)
        return DependencyGraph(txs=txs, successors=successors)


class ConstraintIndex:
    """Incremental read-from constraint index (Fabric++ / FabricSharp).

    Constraint semantics (see :mod:`repro.execution.reorder`): an edge
    ``b -> a`` whenever transaction ``b`` *read* a key transaction ``a``
    *writes* — ``b`` is only valid if it commits before ``a``,
    regardless of which was endorsed first. Each ingest records the
    edges the new transaction completes: to earlier pending writers of
    its read keys, and from earlier pending readers of its write keys.
    """

    def __init__(self) -> None:
        self._readers = _AccessLists()
        self._writers = _AccessLists()
        self._cleared = 0
        #: Per-uid out-edge targets (writers this tx must precede).
        self._out: list[list[int]] = []

    @property
    def ingested(self) -> int:
        return len(self._out)

    def ingest(
        self, read_keys: Iterable[str], write_keys: Iterable[str]
    ) -> int:
        """Index one endorsed read/write set; returns its uid."""
        uid = len(self._out)
        out: list[int] = []
        self._out.append(out)
        for key in read_keys:
            for writer in self._writers.live(key):
                if writer != uid:
                    out.append(writer)
            self._readers.append(key, uid)
        for key in write_keys:
            for reader in self._readers.live(key):
                if reader != uid:
                    self._out[reader].append(uid)
            self._writers.append(key, uid)
        return uid

    def seal(self, boundary: int) -> None:
        """Every uid below ``boundary`` is in a decided block; prune."""
        self._readers.seal(boundary)
        self._writers.seal(boundary)
        for uid in range(self._cleared, min(boundary, len(self._out))):
            self._out[uid] = []
        self._cleared = max(self._cleared, min(boundary, len(self._out)))

    def edges_among(self, uids: Sequence[int]) -> dict[int, set[int]]:
        """Constraint edges restricted to ``uids``, as local indices.

        Matches ``_constraint_edges`` over the same transactions: keys
        are 0..len(uids)-1, values the local targets each must precede.
        """
        local = {uid: i for i, uid in enumerate(uids)}
        edges: dict[int, set[int]] = {i: set() for i in range(len(uids))}
        for i, uid in enumerate(uids):
            bucket = edges[i]
            for target in self._out[uid]:
                j = local.get(target)
                if j is not None and j != i:
                    bucket.add(j)
        return edges


class SealTracker:
    """Turns out-of-order block decisions into a monotone seal boundary.

    Blocks are contiguous uid ranges in practice, but the consensus
    decide order is not guaranteed here; the tracker advances the
    low-water mark only through uids actually decided, so a seal can
    never outrun a still-pending transaction.
    """

    __slots__ = ("_decided", "_next")

    def __init__(self) -> None:
        self._decided: set[int] = set()
        self._next = 0

    def decide(self, uids: Iterable[int]) -> int:
        """Record decided uids; returns the new seal boundary."""
        self._decided.update(uids)
        while self._next in self._decided:
            self._decided.discard(self._next)
            self._next += 1
        return self._next


def wave_is_conflict_free(txs: Sequence) -> bool:
    """Do the declared sets of ``txs`` really commute (no write-write or
    read-write overlap)?

    Defence-in-depth for the process-pool wave executor: a wave produced
    by the dependency graph is conflict-free *by construction of the
    declared sets*, so a violation here means a transaction's declaration
    is inconsistent with the graph that scheduled it — executing such a
    wave concurrently would be unsound, and the caller degrades to
    inline serial execution instead. Built on two :class:`KeyLockIndex`
    tables (writers and readers), so the check is O(keys touched).
    """
    writers = KeyLockIndex()
    readers = KeyLockIndex()
    for tx in txs:
        write_keys = tx.write_keys
        read_keys = tx.read_keys
        if (
            writers.conflicts(write_keys)
            or readers.conflicts(write_keys)
            or writers.conflicts(read_keys)
        ):
            return False
        writers.acquire(write_keys, tx.tx_id)
        readers.acquire(read_keys, tx.tx_id)
    return True


class KeyLockIndex:
    """No-wait lock table with O(touched) probes and O(held) release.

    Drop-in for the sharded systems' per-shard ``dict[key, holder]``
    whose conflict check rebuilt a set of every held key per
    transaction and whose release scanned the whole table.
    """

    __slots__ = ("_holder_of", "_keys_of")

    def __init__(self) -> None:
        self._holder_of: dict[str, str] = {}
        self._keys_of: dict[str, list[str]] = {}

    def __len__(self) -> int:
        return len(self._holder_of)

    def __contains__(self, key: str) -> bool:
        return key in self._holder_of

    def holder(self, key: str) -> str | None:
        return self._holder_of.get(key)

    def conflicts(self, keys: Iterable[str]) -> bool:
        """Is any of ``keys`` currently locked?"""
        holder_of = self._holder_of
        return any(key in holder_of for key in keys)

    def acquire(self, keys: Iterable[str], holder: str) -> None:
        """Grant ``keys`` to ``holder`` (caller checked conflicts)."""
        held = self._keys_of.setdefault(holder, [])
        for key in keys:
            self._holder_of[key] = holder
            held.append(key)

    def release(self, holder: str) -> None:
        """Free every key ``holder`` still owns."""
        for key in self._keys_of.pop(holder, ()):
            if self._holder_of.get(key) == holder:
                del self._holder_of[key]
