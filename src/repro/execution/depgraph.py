"""Dependency graphs and parallel scheduling — the OXII execute phase.

ParBlockchain (paper section 2.3.3): after ordering a block, the orderers
generate a dependency graph giving "a partial order based on the conflicts
between transactions", enabling parallel execution of non-conflicting
transactions. Conflicts are detected from *declared* read/write sets,
which is why OXII can build the graph before execution.

Two schedulers are provided: :func:`schedule_waves` (topological levels,
easy to reason about) and :func:`schedule_parallel` (event-driven list
scheduling on a fixed executor pool, the makespan model used by the
benchmarks). Everything on this path is linear in vertices + edges:
:meth:`DependencyGraph.waves` is one forward pass (Kahn-style level
propagation over the stored successors), predecessors and adjacency are
computed once and cached, and the schedulers keep executor lanes in
heaps instead of rebuilding per-step sets.

Per-block graphs are built incrementally by
:class:`~repro.execution.conflict_index.BlockConflictIndex`;
:func:`build_dependency_graph` remains as the one-shot form (it streams
the block through a fresh index).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.common.types import Transaction


@dataclass
class DependencyGraph:
    """Conflict edges among the transactions of one block.

    ``successors[i]`` holds indices j > i that conflict with i — the
    edge direction follows block order, so the graph is acyclic by
    construction and any schedule respecting it is equivalent to serial
    execution in block order.

    Derived views (:meth:`predecessors`, :meth:`sorted_successors`,
    :meth:`indegrees`, :meth:`waves`) are cached on first use; the graph
    is treated as frozen once any of them is computed.
    """

    txs: list[Transaction]
    successors: dict[int, set[int]] = field(default_factory=dict)
    _preds: dict[int, set[int]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _adjacency: tuple[tuple[int, ...], ...] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        for i in range(len(self.txs)):
            self.successors.setdefault(i, set())

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def predecessors(self) -> dict[int, set[int]]:
        """Reverse adjacency, computed once and cached."""
        if self._preds is None:
            preds: dict[int, set[int]] = {i: set() for i in range(len(self.txs))}
            for i, succs in self.successors.items():
                for j in succs:
                    preds[j].add(i)
            self._preds = preds
        return self._preds

    def sorted_successors(self) -> tuple[tuple[int, ...], ...]:
        """Successor lists in ascending order, computed once and cached
        (the schedulers' inner loop; avoids a sort per scheduling step)."""
        if self._adjacency is None:
            self._adjacency = tuple(
                tuple(sorted(self.successors[i])) for i in range(len(self.txs))
            )
        return self._adjacency

    def indegrees(self) -> list[int]:
        """Fresh per-vertex predecessor counts (callers mutate them)."""
        counts = [0] * len(self.txs)
        for succs in self.successors.values():
            for j in succs:
                counts[j] += 1
        return counts

    def waves(self) -> list[list[int]]:
        """Topological levels: wave k holds txs whose longest dependency
        chain has length k. Txs within a wave are mutually conflict-free.

        One forward pass over the stored successors — indices are
        already topological, so each vertex's level is final before its
        out-edges are relaxed: O(V + E), not O(V²).
        """
        n = len(self.txs)
        level = [0] * n
        depth = 0
        for i in range(n):
            base = level[i] + 1
            for j in self.successors[i]:
                if level[j] < base:
                    level[j] = base
            if level[i] > depth:
                depth = level[i]
        result: list[list[int]] = [[] for _ in range(depth + 1 if n else 0)]
        for i in range(n):
            result[level[i]].append(i)
        return result


def build_dependency_graph(txs: list[Transaction]) -> DependencyGraph:
    """Edges between conflicting transactions, directed by block order.

    One-shot form of the incremental path: streams the block through a
    fresh :class:`~repro.execution.conflict_index.BlockConflictIndex`,
    so the cost is proportional to actual conflicts rather than O(n²)
    key comparisons. Systems that see transactions arrive one at a time
    (``repro.core.oxii``) keep a persistent index instead and pay only
    the new transaction's edges.
    """
    from repro.execution.conflict_index import BlockConflictIndex

    index = BlockConflictIndex()
    uids = []
    for tx in txs:
        if not tx.declared_ops:
            raise ExecutionError(
                f"OXII requires declared operations; tx {tx.tx_id} has none"
            )
        uids.append(index.ingest(tx.read_keys, tx.write_keys))
    return index.graph_for(uids, list(txs))


def partition_wave(
    wave: list[int], workers: int
) -> list[list[int]]:
    """Deterministic round-robin split of one wave across worker lanes.

    Returns exactly ``workers`` chunks (some possibly empty) with chunk
    ``k`` holding ``wave[k::workers]`` — a pure function of the wave and
    the worker count, so the process-pool backend's task assignment (and
    therefore its merge order and IPC shape) is reproducible run to run.
    Round-robin keeps lane loads within one transaction of each other
    for uniform costs, the common case for a single contract family.
    """
    if workers < 1:
        raise ExecutionError(f"need at least one worker, got {workers}")
    return [list(wave[k::workers]) for k in range(workers)]


def schedule_waves(graph: DependencyGraph, costs: list[float]) -> float:
    """Makespan with unbounded executors and a barrier between waves."""
    total = 0.0
    for wave in graph.waves():
        total += max((costs[i] for i in wave), default=0.0)
    return total


def schedule_parallel(
    graph: DependencyGraph, costs: list[float], executors: int
) -> tuple[float, list[int]]:
    """Event-driven list scheduling on ``executors`` workers.

    Transactions become ready when every predecessor finished; ready
    transactions are started in block order (deterministic). Returns
    ``(makespan, completion_order)``.
    """
    if executors < 1:
        raise ExecutionError(f"need at least one executor, got {executors}")
    n = len(graph.txs)
    if n == 0:
        return 0.0, []
    adjacency = graph.sorted_successors()
    remaining = graph.indegrees()
    ready = [i for i in range(n) if remaining[i] == 0]
    heapq.heapify(ready)
    # (finish_time, tx_index) heap of running transactions.
    running: list[tuple[float, int]] = []
    completion_order: list[int] = []
    now = 0.0
    free = executors
    while ready or running:
        while ready and free > 0:
            tx_index = heapq.heappop(ready)
            heapq.heappush(running, (now + costs[tx_index], tx_index))
            free -= 1
        finish, tx_index = heapq.heappop(running)
        now = finish
        free += 1
        completion_order.append(tx_index)
        for succ in adjacency[tx_index]:
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, succ)
    return now, completion_order


def schedule_multi_enterprise(
    graph: DependencyGraph,
    costs: list[float],
    owners: list[str],
    executors_per_enterprise: int,
    cross_enterprise_latency: float = 0.002,
    pools: dict[str, int] | None = None,
) -> tuple[float, list[int]]:
    """ParBlockchain's multi-enterprise execution model.

    "In a multi-enterprise system, each enterprise has its own set of
    executor nodes where the transactions of each enterprise are
    executed by the corresponding executor nodes" (paper section 2.3.3).

    Each enterprise owns a pool of ``executors_per_enterprise`` lanes
    (override per enterprise with ``pools``, a mapping from enterprise
    to lane count — its iteration order is irrelevant, lanes are only
    ever looked up by owner) and executes only its own transactions. A
    dependency edge between transactions of *different* enterprises
    additionally pays ``cross_enterprise_latency`` — the producing
    executor must ship the updated state to the consuming enterprise's
    executors before the successor may start. Lane availability is kept
    in a per-enterprise heap (O(log lanes) per claim, no per-step
    scans). Returns ``(makespan, completion_order)``.
    """
    if executors_per_enterprise < 1:
        raise ExecutionError("need at least one executor per enterprise")
    n = len(graph.txs)
    if n == 0:
        return 0.0, []
    if len(owners) != n or len(costs) != n:
        raise ExecutionError("owners and costs must match the tx count")
    if pools is not None:
        missing = sorted(set(owners) - set(pools))
        if missing:
            raise ExecutionError(f"no executor pool for enterprises {missing}")
        if any(lanes < 1 for lanes in pools.values()):
            raise ExecutionError("need at least one executor per enterprise")
    adjacency = graph.sorted_successors()
    remaining = graph.indegrees()
    # earliest moment tx i's inputs are available at its enterprise.
    ready_at = [0.0] * n
    # (ready_time, tx_index) of schedulable transactions.
    ready: list[tuple[float, int]] = [
        (0.0, i) for i in range(n) if remaining[i] == 0
    ]
    heapq.heapify(ready)
    # min-heap of lane free times per enterprise.
    pool_free: dict[str, list[float]] = {}
    for owner in owners:
        if owner not in pool_free:
            lanes = pools[owner] if pools is not None else executors_per_enterprise
            pool_free[owner] = [0.0] * lanes
    running: list[tuple[float, int]] = []
    completion_order: list[int] = []
    makespan = 0.0
    while ready or running:
        if ready:
            ready_time, tx_index = heapq.heappop(ready)
            lanes = pool_free[owners[tx_index]]
            lane_free = heapq.heappop(lanes)
            start = max(ready_time, lane_free)
            finish = start + costs[tx_index]
            heapq.heappush(lanes, finish)
            heapq.heappush(running, (finish, tx_index))
            continue
        finish, tx_index = heapq.heappop(running)
        makespan = max(makespan, finish)
        completion_order.append(tx_index)
        owner = owners[tx_index]
        for succ in adjacency[tx_index]:
            handoff = finish
            if owners[succ] != owner:
                handoff += cross_enterprise_latency
            if handoff > ready_at[succ]:
                ready_at[succ] = handoff
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (ready_at[succ], succ))
    return makespan, completion_order
