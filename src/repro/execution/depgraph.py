"""Dependency graphs and parallel scheduling — the OXII execute phase.

ParBlockchain (paper section 2.3.3): after ordering a block, the orderers
generate a dependency graph giving "a partial order based on the conflicts
between transactions", enabling parallel execution of non-conflicting
transactions. Conflicts are detected from *declared* read/write sets,
which is why OXII can build the graph before execution.

Two schedulers are provided: :func:`schedule_waves` (topological levels,
easy to reason about) and :func:`schedule_parallel` (event-driven list
scheduling on a fixed executor pool, the makespan model used by the
benchmarks).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

from repro.common.errors import ExecutionError
from repro.common.types import Transaction


@dataclass
class DependencyGraph:
    """Conflict edges among the transactions of one block.

    ``successors[i]`` holds indices j > i that conflict with i — the
    edge direction follows block order, so the graph is acyclic by
    construction and any schedule respecting it is equivalent to serial
    execution in block order.
    """

    txs: list[Transaction]
    successors: dict[int, set[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        for i in range(len(self.txs)):
            self.successors.setdefault(i, set())

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self.successors.values())

    def predecessors(self) -> dict[int, set[int]]:
        preds: dict[int, set[int]] = {i: set() for i in range(len(self.txs))}
        for i, succs in self.successors.items():
            for j in succs:
                preds[j].add(i)
        return preds

    def waves(self) -> list[list[int]]:
        """Topological levels: wave k holds txs whose longest dependency
        chain has length k. Txs within a wave are mutually conflict-free."""
        level: dict[int, int] = {}
        for i in range(len(self.txs)):  # indices are already topological
            preds = [p for p, succs in self.successors.items() if i in succs]
            level[i] = 1 + max((level[p] for p in preds), default=-1)
        result: list[list[int]] = [[] for _ in range(max(level.values(), default=-1) + 1)]
        for i, lvl in level.items():
            result[lvl].append(i)
        return result


def build_dependency_graph(txs: list[Transaction]) -> DependencyGraph:
    """Edges between conflicting transactions, directed by block order.

    Uses per-key access lists instead of all-pairs comparison, so the
    cost is proportional to actual conflicts rather than O(n^2) keys.
    """
    graph = DependencyGraph(txs=list(txs))
    writers: dict[str, list[int]] = {}
    readers: dict[str, list[int]] = {}
    for i, tx in enumerate(txs):
        if not tx.declared_ops:
            raise ExecutionError(
                f"OXII requires declared operations; tx {tx.tx_id} has none"
            )
        for key in tx.write_keys:
            # write-write and read-write against all earlier accessors
            for earlier in writers.get(key, ()):
                graph.successors[earlier].add(i)
            for earlier in readers.get(key, ()):
                graph.successors[earlier].add(i)
            writers.setdefault(key, []).append(i)
        for key in tx.read_keys:
            for earlier in writers.get(key, ()):
                if earlier != i:
                    graph.successors[earlier].add(i)
            readers.setdefault(key, []).append(i)
    for i in graph.successors:
        graph.successors[i].discard(i)
    return graph


def schedule_waves(graph: DependencyGraph, costs: list[float]) -> float:
    """Makespan with unbounded executors and a barrier between waves."""
    total = 0.0
    for wave in graph.waves():
        total += max((costs[i] for i in wave), default=0.0)
    return total


def schedule_parallel(
    graph: DependencyGraph, costs: list[float], executors: int
) -> tuple[float, list[int]]:
    """Event-driven list scheduling on ``executors`` workers.

    Transactions become ready when every predecessor finished; ready
    transactions are started in block order (deterministic). Returns
    ``(makespan, completion_order)``.
    """
    if executors < 1:
        raise ExecutionError(f"need at least one executor, got {executors}")
    n = len(graph.txs)
    if n == 0:
        return 0.0, []
    preds = graph.predecessors()
    remaining = {i: len(preds[i]) for i in range(n)}
    ready = [i for i in range(n) if remaining[i] == 0]
    heapq.heapify(ready)
    # (finish_time, tx_index) heap of running transactions.
    running: list[tuple[float, int]] = []
    completion_order: list[int] = []
    now = 0.0
    free = executors
    while ready or running:
        while ready and free > 0:
            tx_index = heapq.heappop(ready)
            heapq.heappush(running, (now + costs[tx_index], tx_index))
            free -= 1
        finish, tx_index = heapq.heappop(running)
        now = finish
        free += 1
        completion_order.append(tx_index)
        for succ in sorted(graph.successors[tx_index]):
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, succ)
    return now, completion_order


def schedule_multi_enterprise(
    graph: DependencyGraph,
    costs: list[float],
    owners: list[str],
    executors_per_enterprise: int,
    cross_enterprise_latency: float = 0.002,
) -> tuple[float, list[int]]:
    """ParBlockchain's multi-enterprise execution model.

    "In a multi-enterprise system, each enterprise has its own set of
    executor nodes where the transactions of each enterprise are
    executed by the corresponding executor nodes" (paper section 2.3.3).

    Each enterprise owns a pool of ``executors_per_enterprise`` lanes and
    executes only its own transactions. A dependency edge between
    transactions of *different* enterprises additionally pays
    ``cross_enterprise_latency`` — the producing executor must ship the
    updated state to the consuming enterprise's executors before the
    successor may start. Returns ``(makespan, completion_order)``.
    """
    if executors_per_enterprise < 1:
        raise ExecutionError("need at least one executor per enterprise")
    n = len(graph.txs)
    if n == 0:
        return 0.0, []
    if len(owners) != n or len(costs) != n:
        raise ExecutionError("owners and costs must match the tx count")
    preds = graph.predecessors()
    remaining = {i: len(preds[i]) for i in range(n)}
    # earliest moment tx i's inputs are available at its enterprise.
    ready_at = {i: 0.0 for i in range(n)}
    # (ready_time, tx_index) of schedulable transactions.
    ready: list[tuple[float, int]] = [
        (0.0, i) for i in range(n) if remaining[i] == 0
    ]
    heapq.heapify(ready)
    pool_free: dict[str, list[float]] = {}
    for owner in owners:
        pool_free.setdefault(owner, [0.0] * executors_per_enterprise)
    running: list[tuple[float, int]] = []
    completion_order: list[int] = []
    makespan = 0.0
    while ready or running:
        if ready:
            ready_time, tx_index = heapq.heappop(ready)
            lanes = pool_free[owners[tx_index]]
            lane = min(range(len(lanes)), key=lanes.__getitem__)
            start = max(ready_time, lanes[lane])
            finish = start + costs[tx_index]
            lanes[lane] = finish
            heapq.heappush(running, (finish, tx_index))
            continue
        finish, tx_index = heapq.heappop(running)
        makespan = max(makespan, finish)
        completion_order.append(tx_index)
        for succ in sorted(graph.successors[tx_index]):
            handoff = finish
            if owners[succ] != owners[tx_index]:
                handoff += cross_enterprise_latency
            ready_at[succ] = max(ready_at[succ], handoff)
            remaining[succ] -= 1
            if remaining[succ] == 0:
                heapq.heappush(ready, (ready_at[succ], succ))
    return makespan, completion_order
