"""Real multi-core block execution: process-pool wave execution.

Everything "parallel" elsewhere in the execution layer is *modelled* on
the simulator's virtual timeline inside one Python process, so wall-clock
throughput is capped by a single core. This module escapes that box
while keeping the modelled serial timeline as the correctness oracle
(ParBlockchain's premise — arXiv:1902.01457 — that declared read/write
sets make transaction parallelism safe; Geyer & Mayer's arXiv:2311.15433
end-to-end wall-clock methodology).

Design (pool-per-shard with batched IPC, not process-per-transaction):

* The coordinator builds the block's dependency graph from declared
  read/write sets (:func:`~repro.execution.depgraph.build_dependency_graph`)
  and decomposes it into conflict-free waves.
* A fixed pool of forked worker processes — one long-lived "shard" each —
  holds a replica view of the state: the copy-on-write
  :class:`~repro.ledger.store.StateSnapshot` inherited at fork time plus
  a local overlay fed exclusively by coordinator deltas.
* Each wave costs exactly **one IPC round**: every worker receives one
  message carrying the writes committed since the previous wave (the
  delta) and its deterministic round-robin chunk of the wave
  (:func:`~repro.execution.depgraph.partition_wave`), and replies with
  one batch of captured read/write sets. Workers never apply their own
  results — the coordinator is the single writer, so replicas can never
  diverge from the authoritative store.
* The coordinator merges replies in block order (deterministic whatever
  the workers' finishing order), applies committed writes with the
  transaction's original ``Version(height, tx_index)``, and — because
  every intra-block conflict is an edge in the graph — the result is
  equivalent to serial execution in block order. That claim is *checked*,
  not assumed: :meth:`ParallelExecutor.execute_block` replays the block
  serially against the pre-block snapshot and asserts identical commit
  sets, abort decisions, read/write-set digests, and state digest.

Failure handling is graceful degradation, never a wedged pool: a worker
that raises ships the traceback back (the wave re-runs inline, where a
genuine contract bug propagates exactly as the serial engine would
propagate it); a worker that times out or dies takes the pool down and
every remaining wave runs inline, counted in
``hotpath_counters()["exec.wave_fallbacks"]``.

Worker count resolution honors ``REPRO_BENCH_WORKERS`` (the same knob as
``repro.bench.harness``) but — unlike the sweep harness, which quietly
falls back to serial — rejects invalid values (0, negative, non-integer)
with a :class:`~repro.common.errors.ConfigError` instead of a pool
crash, because here the value sizes a real process pool.
"""

from __future__ import annotations

import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence

import multiprocessing

from repro.common.errors import ConfigError, ExecutionError
from repro.common.types import Transaction
from repro.crypto.digests import sha256_hex
from repro.execution.conflict_index import wave_is_conflict_free
from repro.execution.contracts import ContractContext, ContractRegistry
from repro.execution.depgraph import build_dependency_graph, partition_wave
from repro.execution.pipeline import ExecutionPipeline
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.ledger.block import Block
from repro.ledger.store import (
    NEVER_WRITTEN,
    StateSnapshot,
    StateStore,
    Version,
    VersionedValue,
)

#: Same environment knob as ``repro.bench.harness.WORKERS_ENV`` (not
#: imported from there: the harness imports ``repro.core``, which imports
#: this package — a literal avoids the cycle).
WORKERS_ENV = "REPRO_BENCH_WORKERS"

#: Seconds the coordinator waits for a wave reply before declaring the
#: pool dead and degrading to inline execution.
DEFAULT_WAVE_TIMEOUT = 30.0

#: Live counters surfaced as ``exec.*`` by
#: ``repro.bench.profiling.hotpath_counters``. Plain module state, like
#: STORE_COUNTERS: forked children get their own copies, so worker-side
#: activity never double-counts in the parent.
EXEC_COUNTERS = {
    "blocks_executed": 0,
    "waves_executed": 0,
    "waves_pooled": 0,
    "wave_fallbacks": 0,
    "pool_failures": 0,
    "tasks_shipped": 0,
    "delta_entries_shipped": 0,
    "remote_txs": 0,
    "remote_fallbacks": 0,
    "oracle_checks": 0,
    "oracle_mismatches": 0,
}


def reset_exec_counters() -> None:
    for key in EXEC_COUNTERS:
        EXEC_COUNTERS[key] = 0


def resolve_workers(workers: int | None = None) -> int:
    """The worker count to size the pool with.

    Explicit ``workers`` wins; otherwise :data:`WORKERS_ENV` is
    consulted; otherwise 1 (in-process serial execution, no pool).
    Invalid values — 0, negative, booleans, non-integers — raise
    :class:`ConfigError` naming the offender, never crash the pool.
    """
    if workers is None:
        raw = os.environ.get(WORKERS_ENV)
        if raw is None or raw == "":
            return 1
        try:
            value = int(raw)
        except ValueError:
            raise ConfigError(
                f"{WORKERS_ENV} must be a positive integer, got {raw!r}"
            ) from None
        if value < 1:
            raise ConfigError(
                f"{WORKERS_ENV} must be a positive integer, got {value}"
            )
        return value
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigError(
            f"workers must be a positive integer, got {workers!r}"
        )
    if workers < 1:
        raise ConfigError(f"workers must be a positive integer, got {workers}")
    return workers


# -- replica views -------------------------------------------------------------

#: What a replica returns for keys that are absent or deleted — value
#: None at NEVER_WRITTEN, exactly what ``StateStore.get_versioned``
#: reports for missing keys, so captured read versions match bit for bit.
_DELETED = VersionedValue(None, NEVER_WRITTEN)

#: Overlay-miss sentinel (None is a legal overlay entry via _DELETED).
_ABSENT = object()


class ReplicaStateView:
    """A shard-local replica: COW snapshot base plus a delta-fed overlay.

    Workers read through one of these (base = the snapshot inherited at
    fork, overlay = every delta the coordinator shipped since); the
    serial oracle replays through another (base = the pre-block
    snapshot, overlay = its own writes). ``base=None`` supports the
    remote single-transaction path, where the coordinator ships explicit
    entries for every declared key instead of a whole snapshot.
    """

    __slots__ = ("_base", "_overlay")

    def __init__(
        self,
        base: StateSnapshot | None = None,
        overlay: dict[str, VersionedValue] | None = None,
    ) -> None:
        self._base = base
        self._overlay = overlay if overlay is not None else {}

    def get_versioned(self, key: str) -> VersionedValue:
        entry = self._overlay.get(key, _ABSENT)
        if entry is not _ABSENT:
            return entry
        if self._base is None:
            return _DELETED
        return self._base.get_versioned(key)

    def get(self, key: str, default: Any = None) -> Any:
        entry = self.get_versioned(key)
        return entry.value if entry.value is not None else default

    def apply_writes(self, writes: dict[str, Any], version: Version) -> None:
        """Install a committed write set (None values mean delete)."""
        for key, value in writes.items():
            self._overlay[key] = (
                _DELETED if value is None
                else VersionedValue(value, version)
            )

    def apply_delta(self, delta: "Delta") -> None:
        """Apply a coordinator delta batch, in shipped (= commit) order."""
        for key, value, height, tx_index in delta:
            self._overlay[key] = (
                _DELETED if value is None
                else VersionedValue(value, Version(height, tx_index))
            )


# -- IPC payloads --------------------------------------------------------------

#: One committed write: ``(key, value_or_None_for_delete, height, tx_index)``.
DeltaEntry = tuple[str, Any, int, int]
#: The writes committed since a worker last heard from the coordinator.
Delta = list[DeltaEntry]
#: One transaction to execute: ``(tx_index, tx_id, contract, args)``.
WaveTask = tuple[int, str, str, tuple]
#: One captured outcome: ``(tx_index, ok, reads, writes, result, cost)``.
ResultRow = tuple[int, bool, dict[str, Version], dict[str, Any], Any, float]


def pack_wave_tasks(
    indexes: Iterable[int], txs: Sequence[Transaction]
) -> list[WaveTask]:
    """The compact per-transaction payload shipped to workers."""
    return [
        (i, txs[i].tx_id, txs[i].contract, txs[i].args) for i in indexes
    ]


def _capture_task(
    registry: ContractRegistry, task: WaveTask, view: Any
) -> ResultRow:
    """Run one shipped task against ``view``; business-rule aborts are
    captured (ok=False, no writes), anything else propagates."""
    index, _tx_id, contract, args = task
    ctx = ContractContext(view)
    cost = registry.cost(contract)
    fn = registry.contract(contract)
    try:
        result = fn(ctx, *args)
    except ExecutionError:
        return (index, False, ctx.reads, {}, None, cost)
    return (index, True, ctx.reads, ctx.writes, result, cost)


def _row_to_rwset(row: ResultRow, tx_id: str) -> RWSet:
    index, ok, reads, writes, result, cost = row
    return RWSet(
        tx_id=tx_id, reads=reads, writes=writes, ok=ok, result=result,
        cost=cost,
    )


# -- worker process ------------------------------------------------------------

# Set in the coordinator immediately before forking, inherited by the
# children through fork, cleared afterwards — the same idiom as the
# bench harness's _ACTIVE_JOB: nothing here is ever pickled.
_FORK_REGISTRY: ContractRegistry | None = None
_FORK_SNAPSHOT: StateSnapshot | None = None


def _worker_main(conn) -> None:
    """Worker loop: apply deltas, execute chunks, reply in one batch.

    Message protocol (one request, one reply, in order):

    * ``("wave", delta, tasks)`` -> ``("ok", rows)`` — sync the replica
      with ``delta``, execute ``tasks`` against the synced view (results
      are buffered, never self-applied), reply with every row.
    * ``("tx", task, entries)`` -> ``("ok", row)`` — the remote
      single-transaction path: execute against exactly the shipped
      entries, no persistent state.
    * ``("stop",)`` — exit.

    Unexpected exceptions reply ``("err", traceback)`` and keep the loop
    alive: the replica is still consistent because results are only ever
    applied coordinator-side.
    """
    registry = _FORK_REGISTRY
    base = _FORK_SNAPSHOT
    replica = ReplicaStateView(base)
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            return
        kind = message[0]
        if kind == "stop":
            conn.close()
            return
        try:
            if kind == "wave":
                _kind, delta, tasks = message
                replica.apply_delta(delta)
                view = ReplicaStateView(base, replica._overlay)
                rows = [_capture_task(registry, t, view) for t in tasks]
                reply = ("ok", rows)
            elif kind == "tx":
                _kind, task, entries = message
                scratch = ReplicaStateView()
                scratch.apply_delta(entries)
                reply = ("ok", _capture_task(registry, task, scratch))
            else:
                reply = ("err", f"unknown message kind {kind!r}")
        except BaseException:
            reply = ("err", traceback.format_exc())
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            return


def _fork_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return None


# -- reports -------------------------------------------------------------------


@dataclass
class ParallelExecutionReport:
    """Outcome of executing one block through the parallel backend."""

    rwsets: list[RWSet] = field(default_factory=list)
    committed: int = 0
    failed: int = 0
    #: Serial sum of modelled contract costs (identical to the serial
    #: engine's ``modelled_cost`` — parallelism never changes it).
    modelled_cost: float = 0.0
    #: Modelled makespan with ``workers`` lanes and a barrier per wave.
    modelled_parallel_seconds: float = 0.0
    #: Host wall-clock seconds of the parallel execution phase (the
    #: oracle replay is excluded — it is the checker, not the workload).
    wall_seconds: float = 0.0
    workers: int = 1
    backend: str = "serial"
    n_waves: int = 0
    #: Waves that degraded to inline execution (crash/timeout/verify).
    fallback_waves: int = 0
    oracle_checked: bool = False
    oracle_matches: bool = True
    commit_indexes: list[int] = field(default_factory=list)
    #: Digest over the block's net committed effects (key, value,
    #: version) — equal digests mean byte-identical state transitions.
    state_digest: str = ""

    @property
    def wall_tps(self) -> float:
        done = self.committed + self.failed
        return done / self.wall_seconds if self.wall_seconds > 0 else 0.0


def block_effects_digest(rwsets: Sequence[RWSet], height: int) -> str:
    """Digest of a block's cumulative committed effects.

    Folds every committed write (in block order, so last-writer-wins per
    key) plus each transaction's commit/abort decision. Two execution
    paths with equal digests produced byte-identical state transitions
    and identical abort decisions.
    """
    effects: dict[str, tuple[Any, int, int]] = {}
    decisions = []
    for index, rwset in enumerate(rwsets):
        decisions.append((index, rwset.ok))
        if rwset.ok:
            for key, value in rwset.writes.items():
                effects[key] = (repr(value), height, index)
    material = f"{sorted(effects.items())!r}|{decisions!r}"
    return sha256_hex(material)


# -- the executor --------------------------------------------------------------


class ParallelExecutor:
    """Process-pool wave executor bound to one registry and one store.

    The pool forks at construction, inheriting an O(1) COW snapshot of
    ``store``; after that, **every write to the store must flow through**
    :meth:`execute_block` (or be announced via
    :meth:`note_external_writes`) so worker replicas stay in sync — the
    coordinator ships each wave's committed writes as the next wave's
    delta, one IPC round per wave.

    Use as a context manager, or call :meth:`close`; workers are daemonic
    either way, so leaked executors cannot outlive the parent.
    """

    def __init__(
        self,
        registry: ContractRegistry,
        store: StateStore,
        workers: int | None = None,
        *,
        wave_timeout: float = DEFAULT_WAVE_TIMEOUT,
        check_oracle: bool = True,
        verify_waves: bool = True,
    ) -> None:
        self.registry = registry
        self.store = store
        self.workers = resolve_workers(workers)
        self.wave_timeout = wave_timeout
        self.check_oracle = check_oracle
        self.verify_waves = verify_waves
        self.backend = "serial"
        self._procs: list[Any] = []
        self._conns: list[Any] = []
        self._unshipped: Delta = []
        if self.workers > 1:
            self._start_pool()

    # -- lifecycle -----------------------------------------------------------

    def _start_pool(self) -> None:
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            EXEC_COUNTERS["pool_failures"] += 1
            return
        global _FORK_REGISTRY, _FORK_SNAPSHOT
        _FORK_REGISTRY = self.registry
        _FORK_SNAPSHOT = self.store.snapshot()
        try:
            for _ in range(self.workers):
                parent_conn, child_conn = context.Pipe()
                proc = context.Process(
                    target=_worker_main, args=(child_conn,), daemon=True
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
            self.backend = "process-pool"
        finally:
            _FORK_REGISTRY = None
            _FORK_SNAPSHOT = None

    @property
    def pool_alive(self) -> bool:
        return self.backend == "process-pool" and bool(self._conns)

    def _mark_broken(self) -> None:
        """Kill the pool; every later wave runs inline (degraded mode)."""
        EXEC_COUNTERS["pool_failures"] += 1
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        for proc in self._procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self._procs:
            proc.join(timeout=5.0)
        self._procs = []
        self._conns = []
        self.backend = "serial-degraded"

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        self._procs = []
        self._conns = []
        if self.backend == "process-pool":
            self.backend = "serial"

    def __enter__(self) -> "ParallelExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- state sync ----------------------------------------------------------

    def note_external_writes(
        self, writes: dict[str, Any], version: Version
    ) -> None:
        """Record writes applied to the store outside this executor, so
        worker replicas receive them with the next wave's delta."""
        for key, value in writes.items():
            self._unshipped.append(
                (key, value, version.height, version.tx_index)
            )

    # -- block execution -----------------------------------------------------

    def execute_block(self, block: Block) -> ParallelExecutionReport:
        """Execute ``block`` against the bound store, wave by wave.

        Equivalent to
        :func:`~repro.execution.serial.execute_block_serially` in commit
        sets, abort decisions, captured read/write sets, and resulting
        state — asserted against the serial oracle when ``check_oracle``
        is on (an :class:`ExecutionError` on divergence, counted in
        ``exec.oracle_mismatches``).
        """
        txs = list(block.transactions)
        height = block.height
        n = len(txs)
        report = ParallelExecutionReport(
            workers=self.workers, backend=self.backend
        )
        EXEC_COUNTERS["blocks_executed"] += 1
        if n == 0:
            report.oracle_checked = self.check_oracle
            report.state_digest = block_effects_digest([], height)
            return report
        graph = build_dependency_graph(txs)
        waves = graph.waves()
        costs = [self.registry.cost(tx.contract) for tx in txs]
        report.n_waves = len(waves)
        report.modelled_parallel_seconds = self._modelled_makespan(
            waves, costs
        )
        oracle_rwsets: list[RWSet] | None = None
        if self.check_oracle:
            oracle_rwsets = self._serial_oracle(txs, height)

        start = time.perf_counter()
        rwsets: list[RWSet | None] = [None] * n
        for wave in waves:
            EXEC_COUNTERS["waves_executed"] += 1
            rows = self._run_wave(wave, txs, report)
            self._merge_wave(rows, rwsets, height)
        report.wall_seconds = time.perf_counter() - start

        report.rwsets = [rwset for rwset in rwsets if rwset is not None]
        for index, rwset in enumerate(report.rwsets):
            report.modelled_cost += rwset.cost
            if rwset.ok:
                report.committed += 1
                report.commit_indexes.append(index)
            else:
                report.failed += 1
        report.state_digest = block_effects_digest(report.rwsets, height)
        report.backend = self.backend

        if oracle_rwsets is not None:
            report.oracle_checked = True
            report.oracle_matches = self._check_oracle(
                report, oracle_rwsets, height
            )
        return report

    # -- wave plumbing -------------------------------------------------------

    def _run_wave(
        self,
        wave: list[int],
        txs: list[Transaction],
        report: ParallelExecutionReport,
    ) -> list[tuple[int, RWSet]]:
        if self.pool_alive:
            if self.verify_waves and not wave_is_conflict_free(
                [txs[i] for i in wave]
            ):
                # Declared sets lied about conflict-freedom; shipping
                # this wave to concurrent workers would be unsound.
                EXEC_COUNTERS["wave_fallbacks"] += 1
                report.fallback_waves += 1
            else:
                rows = self._execute_wave_pooled(wave, txs)
                if rows is not None:
                    EXEC_COUNTERS["waves_pooled"] += 1
                    return rows
                EXEC_COUNTERS["wave_fallbacks"] += 1
                report.fallback_waves += 1
        elif self.workers > 1:
            # Pool was requested but is gone — degraded mode.
            EXEC_COUNTERS["wave_fallbacks"] += 1
            report.fallback_waves += 1
        return self._execute_wave_inline(wave, txs)

    def _execute_wave_pooled(
        self, wave: list[int], txs: list[Transaction]
    ) -> list[tuple[int, RWSet]] | None:
        """One batched IPC round; None means fall back to inline."""
        chunks = partition_wave(wave, len(self._conns))
        delta = self._unshipped
        self._unshipped = []
        EXEC_COUNTERS["tasks_shipped"] += len(wave)
        EXEC_COUNTERS["delta_entries_shipped"] += len(delta) * len(
            self._conns
        )
        try:
            for conn, chunk in zip(self._conns, chunks):
                conn.send(("wave", delta, pack_wave_tasks(chunk, txs)))
        except (BrokenPipeError, OSError):
            self._mark_broken()
            return None
        deadline = time.monotonic() + self.wave_timeout
        rows: list[tuple[int, RWSet]] = []
        worker_error: str | None = None
        for conn in self._conns:
            remaining = deadline - time.monotonic()
            try:
                if remaining <= 0 or not conn.poll(remaining):
                    self._mark_broken()
                    return None
                reply = conn.recv()
            except (EOFError, OSError):
                self._mark_broken()
                return None
            if reply[0] != "ok":
                # Worker replied with a traceback: its replica is still
                # consistent (results are never self-applied), so the
                # pool survives; this wave re-runs inline where a real
                # contract bug propagates like the serial engine's.
                worker_error = reply[1]
                continue
            for row in reply[1]:
                rows.append((row[0], _row_to_rwset(row, txs[row[0]].tx_id)))
        if worker_error is not None:
            return None
        return rows

    def _execute_wave_inline(
        self, wave: list[int], txs: list[Transaction]
    ) -> list[tuple[int, RWSet]]:
        """In-process execution of one wave against the live store.

        Nothing is applied until the merge step, so every member sees the
        pre-wave state — the same view pooled workers get.
        """
        return [
            (i, execute_with_capture(self.registry, txs[i], self.store))
            for i in wave
        ]

    def _merge_wave(
        self,
        rows: list[tuple[int, RWSet]],
        rwsets: list[RWSet | None],
        height: int,
    ) -> None:
        """Deterministic merge: block order, original versions, and the
        delta buffer for the next wave's worker sync."""
        rows.sort(key=lambda row: row[0])
        for index, rwset in rows:
            rwsets[index] = rwset
            if rwset.ok:
                version = Version(height=height, tx_index=index)
                self.store.apply_writes(rwset.writes, version)
                for key, value in rwset.writes.items():
                    self._unshipped.append((key, value, height, index))

    def _modelled_makespan(
        self, waves: list[list[int]], costs: list[float]
    ) -> float:
        """Modelled wall time with ``workers`` lanes, barrier per wave."""
        pipeline = ExecutionPipeline(depth=self.workers)
        barrier = 0.0
        for wave in waves:
            for i in wave:
                pipeline.claim(barrier, costs[i])
            barrier = pipeline.last_done
            pipeline.reset(barrier)
        return barrier

    # -- the serial oracle ---------------------------------------------------

    def _serial_oracle(
        self, txs: list[Transaction], height: int
    ) -> list[RWSet]:
        """The modelled serial timeline: strict block order against the
        pre-block snapshot, each commit applied before the next read."""
        EXEC_COUNTERS["oracle_checks"] += 1
        view = ReplicaStateView(self.store.snapshot())
        rwsets = []
        for index, tx in enumerate(txs):
            rwset = execute_with_capture(self.registry, tx, view)
            if rwset.ok:
                view.apply_writes(
                    rwset.writes, Version(height=height, tx_index=index)
                )
            rwsets.append(rwset)
        return rwsets

    def _check_oracle(
        self,
        report: ParallelExecutionReport,
        oracle_rwsets: list[RWSet],
        height: int,
    ) -> bool:
        oracle_digest = block_effects_digest(oracle_rwsets, height)
        divergence = None
        if len(oracle_rwsets) != len(report.rwsets):
            divergence = (
                f"row counts differ ({len(report.rwsets)} parallel vs "
                f"{len(oracle_rwsets)} serial)"
            )
        else:
            for index, (mine, theirs) in enumerate(
                zip(report.rwsets, oracle_rwsets)
            ):
                if mine.ok != theirs.ok:
                    divergence = (
                        f"tx {index} ({mine.tx_id}): parallel "
                        f"{'committed' if mine.ok else 'aborted'}, serial "
                        f"{'committed' if theirs.ok else 'aborted'}"
                    )
                    break
                if mine.digest() != theirs.digest():
                    divergence = (
                        f"tx {index} ({mine.tx_id}): read/write sets "
                        "diverge between parallel and serial execution"
                    )
                    break
            if divergence is None and report.state_digest != oracle_digest:
                divergence = "cumulative state digests diverge"
        if divergence is None:
            return True
        EXEC_COUNTERS["oracle_mismatches"] += 1
        raise ExecutionError(
            "parallel execution diverged from the serial oracle: "
            + divergence
            + " (a transaction touched keys outside its declared "
            "read/write set?)"
        )


def execute_block_parallel(
    block: Block,
    store: StateStore,
    registry: ContractRegistry,
    workers: int | None = None,
    **kwargs: Any,
) -> ParallelExecutionReport:
    """One-shot convenience: pool up, execute ``block``, tear down.

    Reuse a :class:`ParallelExecutor` instead when executing many blocks
    — pool forking is the expensive part, and a held executor ships only
    per-wave deltas.
    """
    with ParallelExecutor(registry, store, workers, **kwargs) as executor:
        return executor.execute_block(block)


# -- remote single-transaction backend (the sharding seam) ---------------------


class RemoteContractRunner:
    """A one-worker process pool for single contract invocations.

    The ``execution_backend="process-pool"`` seam of the sharded
    systems: the coordinator ships the transaction plus explicit entries
    for every *declared* key (a per-transaction micro-delta — no
    persistent worker state), and gets the captured read/write set back.
    If the contract turns out to read keys it never declared, the result
    is discarded and the caller re-executes inline (counted in
    ``exec.remote_fallbacks``) — shipped state was incomplete, so the
    remote answer cannot be trusted.
    """

    def __init__(
        self,
        registry: ContractRegistry,
        *,
        timeout: float = DEFAULT_WAVE_TIMEOUT,
    ) -> None:
        self.registry = registry
        self.timeout = timeout
        self._proc = None
        self._conn = None
        context = _fork_context()
        if context is None:  # pragma: no cover - non-POSIX platforms
            EXEC_COUNTERS["pool_failures"] += 1
            return
        global _FORK_REGISTRY, _FORK_SNAPSHOT
        _FORK_REGISTRY = registry
        _FORK_SNAPSHOT = None
        try:
            parent_conn, child_conn = context.Pipe()
            proc = context.Process(
                target=_worker_main, args=(child_conn,), daemon=True
            )
            proc.start()
            child_conn.close()
            self._proc = proc
            self._conn = parent_conn
        finally:
            _FORK_REGISTRY = None
            _FORK_SNAPSHOT = None

    @property
    def alive(self) -> bool:
        return self._conn is not None

    def _mark_broken(self) -> None:
        EXEC_COUNTERS["pool_failures"] += 1
        if self._conn is not None:
            try:
                self._conn.close()
            except OSError:  # pragma: no cover - already gone
                pass
        if self._proc is not None and self._proc.is_alive():
            self._proc.terminate()
            self._proc.join(timeout=5.0)
        self._conn = None
        self._proc = None

    def close(self) -> None:
        if self._conn is not None:
            try:
                self._conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if self._proc is not None:
            self._proc.join(timeout=5.0)
            if self._proc.is_alive():  # pragma: no cover - stuck worker
                self._proc.terminate()
        self._conn = None
        self._proc = None

    def execute(self, tx: Transaction, view: Any) -> RWSet | None:
        """Execute ``tx`` remotely against its declared keys' entries.

        Returns None when the caller must fall back to inline execution
        (dead worker, timeout, worker-side error, or an undeclared
        read); the runner never raises on infrastructure failure.
        """
        if self._conn is None:
            EXEC_COUNTERS["remote_fallbacks"] += 1
            return None
        EXEC_COUNTERS["remote_txs"] += 1
        shipped_keys = {op.key for op in tx.declared_ops}
        entries: Delta = []
        for key in sorted(shipped_keys):
            entry = view.get_versioned(key)
            entries.append(
                (key, entry.value, entry.version.height,
                 entry.version.tx_index)
            )
        task: WaveTask = (0, tx.tx_id, tx.contract, tx.args)
        try:
            self._conn.send(("tx", task, entries))
            if not self._conn.poll(self.timeout):
                self._mark_broken()
                EXEC_COUNTERS["remote_fallbacks"] += 1
                return None
            reply = self._conn.recv()
        except (BrokenPipeError, EOFError, OSError):
            self._mark_broken()
            EXEC_COUNTERS["remote_fallbacks"] += 1
            return None
        if reply[0] != "ok":
            EXEC_COUNTERS["remote_fallbacks"] += 1
            return None
        row: ResultRow = reply[1]
        if set(row[2]) - shipped_keys:
            # The contract read keys it never declared; the worker saw
            # them as missing, so its answer may be wrong — re-execute
            # inline against the real view.
            EXEC_COUNTERS["remote_fallbacks"] += 1
            return None
        return _row_to_rwset(row, tx.tx_id)
