"""Transaction execution engines.

"Order" and "execute" are the two main phases of processing transactions
in permissioned blockchains (paper section 1). This package provides the
building blocks every architecture in ``repro.core`` composes:

* a smart-contract registry with read/write-set capture,
* the serial executor used by order-execute (OX) systems,
* the dependency-graph parallel executor used by OXII (ParBlockchain),
* incremental per-key conflict indexes feeding the OXII dependency
  graphs, the reorderers' constraint analysis, and the sharded systems'
  lock tables,
* MVCC endorsement/validation used by XOV (Fabric),
* the Fabric++ / FabricSharp block-reordering algorithms,
* the pipelined block-validation timeline (FastFabric-style overlap),
* the XOX post-order re-execution step.
"""

from repro.execution.conflict_index import (
    BlockConflictIndex,
    ConstraintIndex,
    KeyLockIndex,
    SealTracker,
    wave_is_conflict_free,
)
from repro.execution.contracts import ContractContext, ContractRegistry
from repro.execution.endorsement import (
    And,
    EndorsementPolicy,
    EndorsingPeerGroup,
    KOutOf,
    Or,
    Org,
    all_of,
    any_of,
    majority_of,
)
from repro.execution.depgraph import (
    DependencyGraph,
    build_dependency_graph,
    partition_wave,
    schedule_multi_enterprise,
    schedule_parallel,
    schedule_waves,
)
from repro.execution.parallel_backend import (
    ParallelExecutionReport,
    ParallelExecutor,
    RemoteContractRunner,
    ReplicaStateView,
    block_effects_digest,
    execute_block_parallel,
    resolve_workers,
)
from repro.execution.mvcc import EndorsedTx, endorse, validate_endorsement
from repro.execution.pipeline import ExecutionPipeline
from repro.execution.reorder import (
    ReorderOutcome,
    partition_endorsed,
    reorder_fabricpp,
    reorder_fabricsharp,
)
from repro.execution.reexec import ReexecutionReport, reexecute_invalidated
from repro.execution.rwsets import RWSet, execute_with_capture
from repro.execution.serial import SerialExecutionReport, execute_block_serially

__all__ = [
    "And",
    "BlockConflictIndex",
    "ConstraintIndex",
    "ContractContext",
    "ContractRegistry",
    "DependencyGraph",
    "EndorsedTx",
    "EndorsementPolicy",
    "EndorsingPeerGroup",
    "ExecutionPipeline",
    "KOutOf",
    "KeyLockIndex",
    "Or",
    "Org",
    "ParallelExecutionReport",
    "ParallelExecutor",
    "RWSet",
    "ReexecutionReport",
    "RemoteContractRunner",
    "ReorderOutcome",
    "ReplicaStateView",
    "SealTracker",
    "SerialExecutionReport",
    "all_of",
    "any_of",
    "block_effects_digest",
    "build_dependency_graph",
    "endorse",
    "execute_block_parallel",
    "execute_block_serially",
    "execute_with_capture",
    "majority_of",
    "partition_endorsed",
    "partition_wave",
    "reexecute_invalidated",
    "reorder_fabricpp",
    "reorder_fabricsharp",
    "resolve_workers",
    "schedule_multi_enterprise",
    "schedule_parallel",
    "schedule_waves",
    "validate_endorsement",
    "wave_is_conflict_free",
]
