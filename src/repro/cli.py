"""Command-line interface: explore the reproduction without writing code.

    python -m repro list                 # what can run
    python -m repro quickstart           # Figure 1 in one command
    python -m repro compare --skew 0.9   # OX/OXII/XOV + Fabric family
    python -m repro consensus --n 7      # protocol comparison
    python -m repro shard --clusters 4   # the four sharded systems
    python -m repro resilience           # fault-injection sweep
"""

from __future__ import annotations

import argparse

from repro.bench import (
    compare_systems,
    compare_systems_parallel,
    env_workers,
    print_table,
    profiled,
    run_architecture,
)
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.core import SYSTEMS, OxSystem, SystemConfig
from repro.sharding import (
    AhlSystem,
    ResilientDbSystem,
    SaguaroConfig,
    SaguaroSystem,
    ShardedConfig,
    SharPerSystem,
)
from repro.workloads import KvWorkload, SmallBankWorkload, smallbank_registry


def cmd_list(_args) -> None:
    print("architectures:", ", ".join(sorted(SYSTEMS)))
    print("consensus protocols:", ", ".join(sorted(PROTOCOLS)))
    print("sharded systems: sharper, ahl, saguaro, resilientdb")
    print("experiments: see benchmarks/ (pytest benchmarks/ --benchmark-only)")


def cmd_quickstart(args) -> None:
    system = OxSystem(
        SystemConfig(orderers=5, protocol="pbft", block_size=20, seed=args.seed)
    )
    for i in range(args.txs):
        system.submit(Transaction.create("kv_set", (f"key{i}", i)))
    result = system.run()
    print_table([result.to_row()], title="Figure 1: five-node OX over PBFT")


def cmd_compare(args) -> None:
    def make_workload():
        return KvWorkload(
            n_keys=5000, theta=args.skew, read_fraction=0.3,
            rmw_fraction=0.5, seed=args.seed,
        ).generate(args.txs)

    def make_config():
        return SystemConfig(block_size=50, seed=args.seed)

    names = sorted(SYSTEMS)
    workers = args.workers or env_workers()
    if workers > 1:
        rows = compare_systems_parallel(
            names, make_workload, make_config, workers=workers
        )
    else:
        rows = compare_systems(names, make_workload, make_config)
    print_table(rows, title=f"architectures at Zipf skew {args.skew}")


def cmd_consensus(args) -> None:
    rows = []
    for name in sorted(PROTOCOLS):
        cls, byzantine = PROTOCOLS[name]
        n = args.n if byzantine else max(3, args.n - 1)
        cluster = ConsensusCluster(cls, n=n, byzantine=byzantine,
                                   seed=args.seed)
        for i in range(args.txs):
            cluster.submit(f"{name}-{i}")
        ok = cluster.run_until_decided(args.txs, timeout=120)
        rows.append(
            {
                "protocol": name,
                "n": n,
                "fault_model": "byzantine" if byzantine else "crash",
                "decided": ok,
                "msgs_per_decision": round(
                    cluster.message_count() / max(1, args.txs), 1
                ),
            }
        )
    print_table(rows, title=f"consensus protocols ({args.txs} decisions)")


def cmd_resilience(args) -> None:
    from repro.bench.resilience import resilience_cases, sweep_resilience

    protocols = args.protocols.split(",") if args.protocols else None
    cases = resilience_cases(protocols)
    rows = sweep_resilience(cases, workers=args.workers or env_workers())
    display = [
        {
            "case": row["case"],
            "model": row["fault_model"],
            "recovered": row["recovered"],
            "t_recover": row["time_to_recover"]
            if row["time_to_recover"] is not None
            else "-",
            "committed": row["committed"],
            "during_fault": row["decided_during_fault"],
            "tput": row["throughput"],
            "safe": row["safety_ok"],
        }
        for row in rows
    ]
    print_table(
        display, title="resilience: crash / partition / loss fault regimes"
    )


_SHARD_SYSTEMS = {
    "sharper": SharPerSystem,
    "ahl": AhlSystem,
    "saguaro": SaguaroSystem,
    "resilientdb": ResilientDbSystem,
}


def cmd_shard(args) -> None:
    rows = []
    for name, cls in _SHARD_SYSTEMS.items():
        workload = SmallBankWorkload(
            n_customers=200, n_shards=args.clusters,
            cross_shard_fraction=args.cross, seed=args.seed,
        )

        def shard_of_key(key, wl=workload):
            return wl.shard_of(key.split(":")[1])

        config_cls = SaguaroConfig if name == "saguaro" else ShardedConfig
        system = cls(
            smallbank_registry(), shard_of_key,
            config_cls(n_clusters=args.clusters, seed=args.seed),
        )
        for tx in workload.setup_transactions() + workload.generate(args.txs):
            system.submit(tx)
        result = system.run()
        rows.append(
            {
                "system": name,
                "committed": result.committed,
                "throughput_tps": round(result.throughput, 1),
                "intra_latency": round(result.extra["intra_mean_latency"], 4),
                "cross_latency": round(result.extra["cross_mean_latency"], 4),
            }
        )
    print_table(
        rows,
        title=f"sharded systems ({args.clusters} clusters, "
        f"{args.cross:.0%} cross-shard)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Permissioned blockchains (SIGMOD'21 tutorial) "
        "reproduction CLI",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the command with cProfile and print the hotspots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable systems").set_defaults(
        fn=cmd_list
    )

    quickstart = sub.add_parser("quickstart", help="Figure 1 end to end")
    quickstart.add_argument("--txs", type=int, default=100)
    quickstart.add_argument("--seed", type=int, default=0)
    quickstart.set_defaults(fn=cmd_quickstart)

    compare = sub.add_parser("compare", help="compare the 7 architectures")
    compare.add_argument("--skew", type=float, default=0.9)
    compare.add_argument("--txs", type=int, default=200)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--workers", type=int, default=0,
        help="fan systems out over N worker processes "
        "(default: $REPRO_BENCH_WORKERS, else serial)",
    )
    compare.set_defaults(fn=cmd_compare)

    consensus = sub.add_parser("consensus", help="compare the 6 protocols")
    consensus.add_argument("--n", type=int, default=4)
    consensus.add_argument("--txs", type=int, default=10)
    consensus.add_argument("--seed", type=int, default=0)
    consensus.set_defaults(fn=cmd_consensus)

    shard = sub.add_parser("shard", help="compare the 4 sharded systems")
    shard.add_argument("--clusters", type=int, default=4)
    shard.add_argument("--cross", type=float, default=0.15)
    shard.add_argument("--txs", type=int, default=150)
    shard.add_argument("--seed", type=int, default=0)
    shard.set_defaults(fn=cmd_shard)

    resilience = sub.add_parser(
        "resilience",
        help="sweep crash/partition/loss faults over the 6 protocols",
    )
    resilience.add_argument(
        "--protocols", default="",
        help="comma-separated subset (default: all six)",
    )
    resilience.add_argument(
        "--workers", type=int, default=0,
        help="fan fault cases out over N worker processes "
        "(default: $REPRO_BENCH_WORKERS, else serial)",
    )
    resilience.set_defaults(fn=cmd_resilience)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with profiled(enabled=args.profile):
        args.fn(args)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
