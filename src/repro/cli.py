"""Command-line interface: explore the reproduction without writing code.

    python -m repro list                 # what can run
    python -m repro quickstart           # Figure 1 in one command
    python -m repro compare --skew 0.9   # OX/OXII/XOV + Fabric family
    python -m repro consensus --n 7      # protocol comparison
    python -m repro shard --clusters 4   # the four sharded systems
    python -m repro resilience           # fault-injection sweep
    python -m repro gateway --loads 500,1000,2000   # open-loop latency
    python -m repro fuzz --protocol raft --runs 50 --seed 7
    python -m repro recover --torn-disk  # crash-restart a durable node
    python -m repro replay capsule.json  # re-run a saved failing schedule
    python -m repro explore --protocol pbft --budget 60
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.bench import (
    compare_systems,
    compare_systems_parallel,
    env_workers,
    print_table,
    profiled,
    run_architecture,
)
from repro.common.types import Transaction
from repro.consensus import PROTOCOLS, ConsensusCluster
from repro.core import SYSTEMS, OxSystem, SystemConfig
from repro.simtest import (
    FuzzConfig,
    ScenarioSpec,
    default_axes,
    explore,
    replay_capsule,
    replay_matches_expectation,
    run_fuzz,
    save_capsule,
)
from repro.sharding import (
    AhlSystem,
    ResilientDbSystem,
    SaguaroConfig,
    SaguaroSystem,
    ShardedConfig,
    SharPerSystem,
)
from repro.workloads import KvWorkload, SmallBankWorkload, smallbank_registry


def cmd_list(_args) -> None:
    print("architectures:", ", ".join(sorted(SYSTEMS)))
    print("consensus protocols:", ", ".join(sorted(PROTOCOLS)))
    print("sharded systems: sharper, ahl, saguaro, resilientdb")
    print("experiments: see benchmarks/ (pytest benchmarks/ --benchmark-only)")


def cmd_quickstart(args) -> None:
    system = OxSystem(
        SystemConfig(orderers=5, protocol="pbft", block_size=20, seed=args.seed)
    )
    for i in range(args.txs):
        system.submit(Transaction.create("kv_set", (f"key{i}", i)))
    result = system.run()
    print_table([result.to_row()], title="Figure 1: five-node OX over PBFT")


def cmd_compare(args) -> None:
    def make_workload():
        return KvWorkload(
            n_keys=5000, theta=args.skew, read_fraction=0.3,
            rmw_fraction=0.5, seed=args.seed,
        ).generate(args.txs)

    def make_config():
        return SystemConfig(block_size=50, seed=args.seed)

    names = sorted(SYSTEMS)
    workers = args.workers or env_workers()
    if workers > 1:
        rows = compare_systems_parallel(
            names, make_workload, make_config, workers=workers
        )
    else:
        rows = compare_systems(names, make_workload, make_config)
    print_table(rows, title=f"architectures at Zipf skew {args.skew}")


def cmd_exec(args) -> int:
    """One block through the serial engine and the process-pool backend.

    Prints wall/modelled throughput side by side and verifies the two
    paths commit identical transaction sets with identical effects (the
    serial-oracle equivalence the backend enforces internally, plus an
    end-state comparison here). Worker count comes from ``--workers``,
    else $REPRO_BENCH_WORKERS (invalid values are rejected loudly).
    """
    from repro.execution import ParallelExecutor, resolve_workers
    from repro.execution.contracts import standard_registry
    from repro.execution.serial import execute_block_serially
    from repro.ledger.block import Block, GENESIS_PREV_HASH
    from repro.ledger.store import StateStore, Version

    workers = resolve_workers(args.workers if args.workers else None)
    if args.workload == "smallbank":
        workload = SmallBankWorkload(
            n_customers=max(2, args.txs // 5), seed=args.seed
        )
        registry_factory = smallbank_registry
        setup = workload.setup_transactions()
    else:
        workload = KvWorkload(
            n_keys=2 * args.txs, theta=args.skew, read_fraction=0.2,
            rmw_fraction=0.6, seed=args.seed,
        )
        registry_factory = standard_registry
        setup = []
    txs = workload.generate(args.txs)
    block = Block.create(
        height=1, prev_hash=GENESIS_PREV_HASH, transactions=txs
    )

    def seeded_store() -> StateStore:
        store = StateStore()
        registry = registry_factory()
        for index, tx in enumerate(setup):
            from repro.execution.rwsets import execute_with_capture

            rwset = execute_with_capture(registry, tx, store)
            if rwset.ok:
                store.apply_writes(rwset.writes, Version(0, index))
        return store

    import time as _time

    serial_store = seeded_store()
    start = _time.perf_counter()
    serial = execute_block_serially(block, serial_store, registry_factory())
    serial_wall = _time.perf_counter() - start

    parallel_store = seeded_store()
    with ParallelExecutor(
        registry_factory(), parallel_store, workers
    ) as executor:
        report = executor.execute_block(block)

    identical = serial_store.as_dict() == parallel_store.as_dict()
    rows = [
        {
            "backend": "serial",
            "workers": 1,
            "waves": "-",
            "wall_seconds": round(serial_wall, 4),
            "wall_tps": round(len(txs) / serial_wall, 1)
            if serial_wall > 0 else 0.0,
            "committed": serial.committed,
            "fallback_waves": 0,
        },
        {
            "backend": report.backend,
            "workers": report.workers,
            "waves": report.n_waves,
            "wall_seconds": round(report.wall_seconds, 4),
            "wall_tps": round(report.wall_tps, 1),
            "committed": report.committed,
            "fallback_waves": report.fallback_waves,
        },
    ]
    print_table(
        rows,
        title=f"{args.workload} block of {len(txs)} txs, "
        f"{workers} worker(s)",
    )
    print(
        "equivalence: oracle "
        + ("OK" if report.oracle_matches else "MISMATCH")
        + ", end state "
        + ("identical" if identical else "DIVERGED")
    )
    return 0 if (report.oracle_matches and identical) else 1


def cmd_consensus(args) -> None:
    rows = []
    for name in sorted(PROTOCOLS):
        cls, byzantine = PROTOCOLS[name]
        n = args.n if byzantine else max(3, args.n - 1)
        cluster = ConsensusCluster(cls, n=n, byzantine=byzantine,
                                   seed=args.seed)
        for i in range(args.txs):
            cluster.submit(f"{name}-{i}")
        ok = cluster.run_until_decided(args.txs, timeout=120)
        rows.append(
            {
                "protocol": name,
                "n": n,
                "fault_model": "byzantine" if byzantine else "crash",
                "decided": ok,
                "msgs_per_decision": round(
                    cluster.message_count() / max(1, args.txs), 1
                ),
            }
        )
    print_table(rows, title=f"consensus protocols ({args.txs} decisions)")


def cmd_resilience(args) -> None:
    from repro.bench.resilience import resilience_cases, sweep_resilience

    protocols = args.protocols.split(",") if args.protocols else None
    cases = resilience_cases(protocols)
    rows = sweep_resilience(cases, workers=args.workers or env_workers())
    display = [
        {
            "case": row["case"],
            "model": row["fault_model"],
            "recovered": row["recovered"],
            "t_recover": row["time_to_recover"]
            if row["time_to_recover"] is not None
            else "-",
            "committed": row["committed"],
            "during_fault": row["decided_during_fault"],
            "tput": row["throughput"],
            "safe": row["safety_ok"],
        }
        for row in rows
    ]
    print_table(
        display, title="resilience: crash / partition / loss fault regimes"
    )


def cmd_gateway(args) -> None:
    """Open-loop offered-load sweep through the front-door gateway.

    Each cell fires a Poisson arrival schedule (ramp + steady phases,
    Zipf-skewed clients) through the admission tier into one
    architecture and reports end-to-end p50/p95/p99 latency, goodput,
    and the shed accounting — push ``--loads`` past an architecture's
    capacity to see the saturation knee.
    """
    from repro.gateway import GatewayConfig, GatewayRun
    from repro.workloads.openloop import (
        OpenLoopConfig,
        OpenLoopWorkload,
        ramp_steady_burst,
    )

    names = (
        sorted(SYSTEMS) if args.systems == "all"
        else args.systems.split(",")
    )
    loads = [float(x) for x in args.loads.split(",")]
    rows = []
    for name in names:
        for load in loads:
            workload = OpenLoopWorkload(OpenLoopConfig(
                clients=args.clients,
                invalid_fraction=args.invalid,
                phases=ramp_steady_burst(load, steady=args.duration),
                seed=args.seed,
            ))
            run = GatewayRun(
                name,
                workload,
                gateway_config=GatewayConfig(
                    rate=args.client_rate,
                    burst=10.0,
                    queue_capacity=args.queue,
                    max_in_flight=args.in_flight,
                    max_retries=args.retries,
                ),
                system_config=SystemConfig(
                    seed=args.seed,
                    max_time=workload.config.duration + 60.0,
                ),
            )
            report = run.run()
            row = report.to_row()
            row["fingerprint"] = report.fingerprint[:12]
            rows.append(row)
    print_table(
        rows, title="end-to-end latency through the gateway (open loop)"
    )


_SHARD_SYSTEMS = {
    "sharper": SharPerSystem,
    "ahl": AhlSystem,
    "saguaro": SaguaroSystem,
    "resilientdb": ResilientDbSystem,
}


def cmd_shard(args) -> None:
    rows = []
    for name, cls in _SHARD_SYSTEMS.items():
        workload = SmallBankWorkload(
            n_customers=200, n_shards=args.clusters,
            cross_shard_fraction=args.cross, seed=args.seed,
        )

        def shard_of_key(key, wl=workload):
            return wl.shard_of(key.split(":")[1])

        config_cls = SaguaroConfig if name == "saguaro" else ShardedConfig
        system = cls(
            smallbank_registry(), shard_of_key,
            config_cls(n_clusters=args.clusters, seed=args.seed),
        )
        for tx in workload.setup_transactions() + workload.generate(args.txs):
            system.submit(tx)
        result = system.run()
        rows.append(
            {
                "system": name,
                "committed": result.committed,
                "throughput_tps": round(result.throughput, 1),
                "intra_latency": round(result.extra["intra_mean_latency"], 4),
                "cross_latency": round(result.extra["cross_mean_latency"], 4),
            }
        )
    print_table(
        rows,
        title=f"sharded systems ({args.clusters} clusters, "
        f"{args.cross:.0%} cross-shard)",
    )


def _scenario_from_args(args) -> ScenarioSpec:
    flags = []
    if getattr(args, "ghost_timers", False):
        flags.append("ghost-timers")
    if getattr(args, "torn_disk", False):
        flags.append("torn-disk")
    if getattr(args, "lying_disk", False):
        flags.append("lying-disk")
    if getattr(args, "paged", False):
        flags.append("paged")
    if getattr(args, "tiered", False):
        flags.append("tiered")
    if getattr(args, "spill", False):
        flags.append("spill")
    flags = tuple(flags)
    return ScenarioSpec(
        target=args.target,
        protocol=args.protocol,
        architecture=args.architecture,
        n=args.n,
        txs=args.txs,
        seed=0,  # per-run seeds come from the campaign master seed
        flags=flags,
    )


def _save_failure_capsules(failures, save_dir: str) -> list[str]:
    directory = Path(save_dir)
    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for failure in failures:
        capsule = failure["capsule"]
        seed = capsule["scenario"]["seed"]
        name = f"capsule-{capsule['scenario']['protocol']}-{seed}.json"
        paths.append(str(save_capsule(directory / name, capsule)))
    return paths


def cmd_fuzz(args) -> int:
    """Seeded fuzz campaign; output is byte-identical for equal args."""
    config = FuzzConfig(
        scenario=_scenario_from_args(args),
        runs=args.runs,
        seed=args.seed,
        max_faults=args.max_faults,
        shrink=not args.no_shrink,
    )
    report = run_fuzz(config)
    print(json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    if report.failures and args.save_dir:
        for path in _save_failure_capsules(report.failures, args.save_dir):
            print(f"saved: {path}", file=sys.stderr)
    return 1 if report.violations else 0


def cmd_explore(args) -> int:
    """Bounded deterministic sweep of the perturbation axes."""
    scenario = _scenario_from_args(args)
    axes = default_axes(scenario, density=args.density)
    report = explore(scenario, axes, budget=args.budget)
    print(json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    if report.failures and args.save_dir:
        for path in _save_failure_capsules(report.failures, args.save_dir):
            print(f"saved: {path}", file=sys.stderr)
    return 1 if report.violations else 0


def _disk_drill(args) -> dict:
    """Multi-node crash/restart drill against real files under
    ``--data-dir``.

    One seeded schedule drives ``--n`` independent durable nodes, each
    against its own subdirectory: every node commits the canonical
    chain through a :class:`DurableLedger` on an :class:`OsBackend`
    (spilling snapshots on the configured interval, plus any overlay
    byte budget), crashes at seeded block heights (dropping the open
    handles, exactly the process-death model), recovers with a *fresh*
    ledger — replaying its WAL tail and garbage-collecting orphaned run
    files — and resumes from the recovered height. The report carries
    per-node replay/orphan-GC telemetry; the drill passes iff every
    node ends with the canonical tip hash and the no-crash serial
    state root.
    """
    import random as random_module

    from repro.execution.contracts import standard_registry
    from repro.execution.serial import execute_block_serially
    from repro.ledger.store import STORE_COUNTERS, StateStore, Version
    from repro.storage import (
        DurableLedger,
        OsBackend,
        PagedStateStore,
        SpillBuffer,
        build_canonical_chain,
        release_data_dir,
        resolve_data_dir,
        state_root,
    )

    def make_ledger(backend) -> DurableLedger:
        return DurableLedger(
            backend,
            policy=args.policy,
            snapshot_interval=args.snapshot_interval,
            paged=getattr(args, "paged", False),
            cache_bytes=getattr(args, "cache_bytes", 4 * 1024 * 1024),
            compaction="tiered" if getattr(args, "tiered", False) else "full",
            overlay_budget_bytes=getattr(args, "overlay_budget", 0),
        )

    base_dir = resolve_data_dir(args.data_dir)
    chain = build_canonical_chain(args.txs, args.seed)
    # One seeded schedule: every node's crash heights come from this
    # RNG, so the whole drill is a pure function of (seed, txs, n).
    rng = random_module.Random(args.seed + 0xD121)
    crashes_per_node = max(0, min(args.drill_crashes, chain.height - 1))
    nodes: list[dict] = []
    held_dirs = [base_dir]
    try:
        for i in range(max(1, args.n)):
            node_dir = resolve_data_dir(base_dir / f"node{i}")
            held_dirs.append(node_dir)
            backend = OsBackend(node_dir)
            for name in backend.list():  # a re-run starts from scratch
                backend.delete(name)
            crash_heights = sorted(
                rng.sample(range(1, chain.height), crashes_per_node)
            ) if crashes_per_node else []
            ledger = make_ledger(backend)
            store: StateStore = StateStore()
            spill = SpillBuffer()
            registry = standard_registry()
            budget_spills_before = STORE_COUNTERS["budget_spills"]
            pending = list(crash_heights)
            telemetry = {
                "recoveries": 0, "replayed": 0, "orphans_removed": 0,
                "torn": False, "resync": False,
            }
            height, root = 0, ""
            while height < chain.height:
                block = chain.block(height + 1)
                outcome = execute_block_serially(block, store, registry)
                for index, rwset in enumerate(outcome.rwsets):
                    if rwset.ok:
                        spill.apply_writes(
                            rwset.writes, Version(block.height, index)
                        )
                root = state_root(store)
                ledger.commit_block(block, root)
                if ledger.maybe_snapshot(block, root, spill):
                    spill = SpillBuffer()
                    if isinstance(store, PagedStateStore):
                        manifest = ledger.snapshots.read_manifest() or {}
                        store.collapse(manifest.get("runs", ()))
                height = block.height
                if pending and height == pending[0]:
                    pending.pop(0)
                    backend.simulate_crash()
                    ledger = make_ledger(OsBackend(node_dir))
                    result = ledger.recover(standard_registry)
                    store, spill = result.store, result.spill
                    registry = standard_registry()
                    height = result.tail.height
                    telemetry["recoveries"] += 1
                    telemetry["replayed"] += result.replayed
                    telemetry["orphans_removed"] += result.orphans_removed
                    telemetry["torn"] = telemetry["torn"] or result.torn
                    telemetry["resync"] = (
                        telemetry["resync"] or result.resync
                    )
            ledger.flush()
            # Final restart: the post-drill state must be recoverable
            # too, and the recovered store is what gets audited.
            backend.simulate_crash()
            final = make_ledger(OsBackend(node_dir)).recover(
                standard_registry
            )
            nodes.append({
                "node": f"node{i}",
                "data_dir": str(node_dir),
                "crash_heights": crash_heights,
                **telemetry,
                "final_replayed": final.replayed,
                "final_orphans_removed": final.orphans_removed,
                "budget_spills": (
                    STORE_COUNTERS["budget_spills"] - budget_spills_before
                ),
                "recovered_height": final.tail.height,
                "tip_matches": final.tail.tip_hash() == chain.tip_hash(),
                # With --paged this walks every key through the paged
                # read path — the strongest oracle equivalence check.
                "state_root_matches": state_root(final.store) == root,
            })
        return {
            "data_dir": str(base_dir),
            "blocks": chain.height,
            "paged": getattr(args, "paged", False),
            "compaction": (
                "tiered" if getattr(args, "tiered", False) else "full"
            ),
            "overlay_budget_bytes": getattr(args, "overlay_budget", 0),
            "nodes": nodes,
            "all_match": all(
                node["tip_matches"] and node["state_root_matches"]
                for node in nodes
            ),
        }
    finally:
        for directory in held_dirs:
            release_data_dir(directory)


def cmd_recover(args) -> int:
    """Crash-restart recovery, end to end.

    Runs a seeded chaos schedule against a durable cluster — crash one
    node mid-stream, recover it, let it replay its WAL and catch back up
    — then audits the recovered ledger and Merkle state root against
    the no-crash serial oracle. With ``--data-dir`` it additionally
    runs a multi-node restart drill against real files: ``--n`` durable
    nodes, each crashed at seeded heights (``--drill-crashes`` per
    node) and restarted, with per-node WAL-replay and orphan-GC
    telemetry in the report. Exit 0 iff every audit is clean.
    """
    from repro.simtest.plan import FaultSpec, PlanSpec, _round
    from repro.simtest.scenarios import run_scenario

    flags = []
    if args.torn_disk:
        flags.append("torn-disk")
    if args.lying_disk:
        flags.append("lying-disk")
    if args.paged:
        flags.append("paged")
    if args.tiered:
        flags.append("tiered")
    if args.spill:
        flags.append("spill")
    scenario = ScenarioSpec(
        target="durable", n=args.n, txs=args.txs, seed=args.seed,
        flags=tuple(flags),
    )
    victim = scenario.replica_ids[0]
    plan = PlanSpec((
        FaultSpec(kind="crash", time=_round(args.crash_time), node=victim),
        FaultSpec(kind="recover", time=_round(args.recover_time),
                  node=victim),
    ))
    result = run_scenario(scenario, plan)
    summary = {
        "scenario": scenario.to_dict(),
        "plan": plan.to_jsonable(),
        "decided": result.decided,
        "committed_height": result.committed,
        "violations": result.violations,
    }
    ok = result.decided and not result.violations
    if args.data_dir:
        disk = _disk_drill(args)
        summary["disk"] = disk
        ok = ok and disk["all_match"]
    print(json.dumps(summary, indent=2, sort_keys=True))
    return 0 if ok else 1


def cmd_replay(args) -> int:
    """Re-run saved capsules; exit 0 iff every replay matches its
    ``expect`` field (violation capsules must still violate, clean
    capsules must still pass)."""
    exit_code = 0
    for path in args.capsules:
        result, capsule = replay_capsule(path)
        matched = replay_matches_expectation(result, capsule)
        expect = capsule.get("expect", "violation")
        got = "clean" if result.ok else "violation"
        status = "OK" if matched else "MISMATCH"
        print(f"{status}: {path} (expect={expect}, got={got})")
        for violation in result.violations:
            print("  " + violation.replace("\n", "\n  "))
        if not matched:
            exit_code = 1
    return exit_code


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Permissioned blockchains (SIGMOD'21 tutorial) "
        "reproduction CLI",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="profile the command with cProfile and print the hotspots",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list runnable systems").set_defaults(
        fn=cmd_list
    )

    quickstart = sub.add_parser("quickstart", help="Figure 1 end to end")
    quickstart.add_argument("--txs", type=int, default=100)
    quickstart.add_argument("--seed", type=int, default=0)
    quickstart.set_defaults(fn=cmd_quickstart)

    compare = sub.add_parser("compare", help="compare the 7 architectures")
    compare.add_argument("--skew", type=float, default=0.9)
    compare.add_argument("--txs", type=int, default=200)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument(
        "--workers", type=int, default=0,
        help="fan systems out over N worker processes "
        "(default: $REPRO_BENCH_WORKERS, else serial)",
    )
    compare.set_defaults(fn=cmd_compare)

    exec_p = sub.add_parser(
        "exec",
        help="execute one block on the multi-core process-pool backend "
        "vs. the serial engine",
    )
    exec_p.add_argument("--txs", type=int, default=2000)
    exec_p.add_argument(
        "--workers", type=int, default=0,
        help="process-pool size (default: $REPRO_BENCH_WORKERS, else 1)",
    )
    exec_p.add_argument(
        "--workload", choices=("kv", "smallbank"), default="kv"
    )
    exec_p.add_argument("--skew", type=float, default=0.2)
    exec_p.add_argument("--seed", type=int, default=0)
    exec_p.set_defaults(fn=cmd_exec)

    consensus = sub.add_parser("consensus", help="compare the 6 protocols")
    consensus.add_argument("--n", type=int, default=4)
    consensus.add_argument("--txs", type=int, default=10)
    consensus.add_argument("--seed", type=int, default=0)
    consensus.set_defaults(fn=cmd_consensus)

    shard = sub.add_parser("shard", help="compare the 4 sharded systems")
    shard.add_argument("--clusters", type=int, default=4)
    shard.add_argument("--cross", type=float, default=0.15)
    shard.add_argument("--txs", type=int, default=150)
    shard.add_argument("--seed", type=int, default=0)
    shard.set_defaults(fn=cmd_shard)

    resilience = sub.add_parser(
        "resilience",
        help="sweep crash/partition/loss faults over the 6 protocols",
    )
    resilience.add_argument(
        "--protocols", default="",
        help="comma-separated subset (default: all six)",
    )
    resilience.add_argument(
        "--workers", type=int, default=0,
        help="fan fault cases out over N worker processes "
        "(default: $REPRO_BENCH_WORKERS, else serial)",
    )
    resilience.set_defaults(fn=cmd_resilience)

    gateway = sub.add_parser(
        "gateway",
        help="open-loop end-to-end latency through the admission tier",
    )
    gateway.add_argument(
        "--systems", default="ox",
        help="comma-separated architectures, or 'all'",
    )
    gateway.add_argument(
        "--loads", default="250,500,1000,2000",
        help="comma-separated offered loads (tx/s)",
    )
    gateway.add_argument("--duration", type=float, default=2.0,
                         help="steady-phase length per cell (sim seconds)")
    gateway.add_argument("--clients", type=int, default=100_000,
                         help="simulated client population")
    gateway.add_argument("--client-rate", type=float, default=100.0,
                         help="per-client token-bucket refill (tx/s)")
    gateway.add_argument("--queue", type=int, default=300,
                         help="gateway batch-queue capacity")
    gateway.add_argument("--in-flight", type=int, default=600,
                         help="gateway end-to-end admission window")
    gateway.add_argument("--retries", type=int, default=0,
                         help="client retries after a retryable shed")
    gateway.add_argument("--invalid", type=float, default=0.0,
                         help="fraction of forged-signature submissions")
    gateway.add_argument("--seed", type=int, default=0)
    gateway.set_defaults(fn=cmd_gateway)

    def add_scenario_args(p) -> None:
        p.add_argument(
            "--target",
            choices=("consensus", "system", "durable", "gateway"),
            default="consensus",
        )
        p.add_argument("--protocol", default="raft",
                       help="consensus protocol (and system orderer)")
        p.add_argument("--architecture", default="xov",
                       help="system architecture "
                       "(with --target system/gateway)")
        p.add_argument("--n", type=int, default=4, help="cluster size")
        p.add_argument("--txs", type=int, default=4)
        p.add_argument(
            "--ghost-timers", action="store_true",
            help="re-introduce the fixed ghost-timer kernel bug "
            "(regression target for the fuzzer itself)",
        )
        p.add_argument(
            "--torn-disk", action="store_true",
            help="durable target: inject partial writes and bit flips "
            "into the storage backend",
        )
        p.add_argument(
            "--lying-disk", action="store_true",
            help="durable target: fsyncs may report success without "
            "persisting",
        )
        p.add_argument(
            "--paged", action="store_true",
            help="durable target: recovery serves reads straight from "
            "blocked run files (paged store) instead of materializing",
        )
        p.add_argument(
            "--tiered", action="store_true",
            help="durable target: size-tiered band compaction instead "
            "of full merges",
        )
        p.add_argument(
            "--spill", action="store_true",
            help="durable target: tiny overlay byte budget forcing "
            "mid-interval snapshot spills",
        )
        p.add_argument(
            "--save-dir", default="",
            help="write a repro capsule per failure into this directory",
        )

    fuzz = sub.add_parser(
        "fuzz", help="seeded random fault-plan fuzzing with auto-shrink"
    )
    add_scenario_args(fuzz)
    fuzz.add_argument("--runs", type=int, default=50)
    fuzz.add_argument("--seed", type=int, default=0,
                      help="campaign master seed (fixes the whole run)")
    fuzz.add_argument("--max-faults", type=int, default=4)
    fuzz.add_argument("--no-shrink", action="store_true")
    fuzz.set_defaults(fn=cmd_fuzz)

    explore_p = sub.add_parser(
        "explore", help="bounded enumeration of schedule perturbations"
    )
    add_scenario_args(explore_p)
    explore_p.add_argument("--budget", type=int, default=100,
                           help="max plans to enumerate")
    explore_p.add_argument("--density", type=int, default=3,
                           help="crash-time samples per victim")
    explore_p.set_defaults(fn=cmd_explore)

    recover = sub.add_parser(
        "recover",
        help="crash-restart a durable node and audit WAL-replay recovery",
    )
    recover.add_argument("--n", type=int, default=3, help="durable nodes")
    recover.add_argument("--txs", type=int, default=12)
    recover.add_argument("--seed", type=int, default=0)
    recover.add_argument("--crash-time", type=float, default=0.9)
    recover.add_argument("--recover-time", type=float, default=1.6)
    recover.add_argument(
        "--torn-disk", action="store_true",
        help="inject partial writes and bit flips",
    )
    recover.add_argument(
        "--lying-disk", action="store_true",
        help="fsyncs may report success without persisting",
    )
    recover.add_argument(
        "--paged", action="store_true",
        help="recover into a paged store reading blocked run files "
        "directly (larger-than-RAM state path)",
    )
    recover.add_argument(
        "--tiered", action="store_true",
        help="size-tiered band compaction instead of full merges",
    )
    recover.add_argument(
        "--spill", action="store_true",
        help="tiny overlay byte budget forcing mid-interval spills "
        "(simulated cluster only; --data-dir uses --overlay-budget)",
    )
    recover.add_argument(
        "--cache-bytes", type=int, default=4 * 1024 * 1024,
        help="block-cache byte budget for --paged (default 4MB)",
    )
    recover.add_argument(
        "--data-dir", default="",
        help="also run the multi-node restart drill through real files "
        "in this directory (one subdirectory per node)",
    )
    recover.add_argument(
        "--policy", default="group:2",
        help="fsync policy for --data-dir: per-block, group:N, or async",
    )
    recover.add_argument("--snapshot-interval", type=int, default=3)
    recover.add_argument(
        "--overlay-budget", type=int, default=0,
        help="--data-dir drill: overlay byte budget; past it the ledger "
        "spills a snapshot early (0 = unbounded)",
    )
    recover.add_argument(
        "--drill-crashes", type=int, default=2,
        help="--data-dir drill: seeded crash/restart cycles per node",
    )
    recover.set_defaults(fn=cmd_recover)

    replay = sub.add_parser(
        "replay", help="re-run saved repro capsules and check expectations"
    )
    replay.add_argument("capsules", nargs="+", metavar="capsule.json")
    replay.set_defaults(fn=cmd_replay)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    with profiled(enabled=args.profile):
        code = args.fn(args)
    return int(code or 0)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
