"""Front-door gateway tier: admission, rate limiting, batching, and the
end-to-end latency ledger (ROADMAP item 1; experiment family E22)."""

from repro.gateway.core import (
    RETRYABLE_REASONS,
    SHED_REASONS,
    AdmissionDecision,
    Gateway,
    GatewayConfig,
    TokenBucket,
)
from repro.gateway.ledger import LatencyLedger, LatencyReport, TxTrace
from repro.gateway.run import GatewayReport, GatewayRun

__all__ = [
    "RETRYABLE_REASONS",
    "SHED_REASONS",
    "AdmissionDecision",
    "Gateway",
    "GatewayConfig",
    "GatewayReport",
    "GatewayRun",
    "LatencyLedger",
    "LatencyReport",
    "TokenBucket",
    "TxTrace",
]
