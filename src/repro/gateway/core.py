"""The front-door admission tier: the client-facing edge of a peer.

Every deployed permissioned system puts a gateway between clients and
the ordering service (Fabric's peer gateway service, Diem's JSON-RPC
front end, the API servers the end-to-end comparison of Geyer et al.
(arXiv:2311.15433) drives its load through). This module models that
tier *inside* the deterministic simulator, so overload behaviour is a
measurable, reproducible experiment instead of an ops anecdote:

* **Signature pre-check** — a forged or revoked submission is rejected
  at the edge via :class:`~repro.crypto.signatures.MembershipService`
  (whose :class:`~repro.crypto.sigcache.SignatureCache` makes repeat
  verdicts cheap) before it costs ordering or execution work.
* **Per-client token buckets** — rate ``rate`` tokens/s, capacity
  ``burst``; a client exceeding its budget gets an explicit
  ``rate-limited`` rejection carrying ``retry_after`` (the backpressure
  signal), never a silent drop.
* **Bounded queues + overload shedding** — at most ``queue_capacity``
  admitted transactions may wait for a batch and at most
  ``max_in_flight`` may be unresolved inside the system; beyond either
  bound the gateway sheds with ``queue-full`` / ``overloaded``. Bounded
  queues are what keep tail latency finite at saturation: goodput
  plateaus and the excess is *counted*, the E22 gate's knee shape.
* **Batcher** — admitted transactions are assembled into batches of
  ``batch_size`` (or after ``batch_interval``) and released to a sink —
  the ordering queue of any :class:`~repro.core.base.BlockchainSystem`.

The gateway holds no RNG: given the same arrival schedule on the same
virtual clock, every admit/shed decision, stamp, and batch boundary is
identical — the property the byte-identical-ledger gate asserts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.common.errors import ConfigError
from repro.common.types import Transaction
from repro.execution.pipeline import ExecutionPipeline
from repro.gateway.ledger import LatencyLedger

#: Rejection reasons the gateway can emit. A shed always carries one.
SHED_REASONS = ("bad-signature", "rate-limited", "queue-full", "overloaded")

#: Reasons worth a client retry (a bad signature never becomes valid).
RETRYABLE_REASONS = frozenset({"rate-limited", "queue-full", "overloaded"})


@dataclass
class GatewayConfig:
    """Admission-tier knobs.

    Attributes:
        rate: Token-bucket refill rate per client (tx/s).
        burst: Token-bucket capacity per client (max burst size).
        queue_capacity: Max admitted transactions waiting for a batch
            (including those still paying ``admit_cost``).
        max_in_flight: Max admitted-but-unresolved transactions inside
            the backing system (the end-to-end admission window).
        batch_size: Transactions per released batch.
        batch_interval: Max time a partial batch waits before release.
        admit_cost: Modelled CPU seconds the gateway spends admitting
            one transaction (signature check, dedup, routing).
        admission_lanes: Parallel admission lanes sharing that work.
        verify_signatures: Pre-check client signatures at the edge.
        max_retries: Client-side retries after a retryable rejection
            (0 = open-loop measurement mode: every shed is final).
        retry_backoff: Base delay before a retry; the gateway's
            ``retry_after`` hint is honoured when larger.
    """

    rate: float = 100.0
    burst: float = 10.0
    queue_capacity: int = 256
    max_in_flight: int = 1024
    batch_size: int = 50
    batch_interval: float = 0.05
    admit_cost: float = 0.00002
    admission_lanes: int = 4
    verify_signatures: bool = True
    max_retries: int = 0
    retry_backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.rate <= 0:
            raise ConfigError("gateway rate must be positive")
        if self.burst < 1:
            raise ConfigError("gateway burst must be >= 1 token")
        if self.queue_capacity < 1:
            raise ConfigError("queue_capacity must be >= 1")
        if self.max_in_flight < 1:
            raise ConfigError("max_in_flight must be >= 1")
        if self.batch_size < 1:
            raise ConfigError("batch_size must be >= 1")
        if self.batch_interval <= 0:
            raise ConfigError("batch_interval must be positive")
        if self.admit_cost < 0:
            raise ConfigError("admit_cost must be non-negative")
        if self.admission_lanes < 1:
            raise ConfigError("admission_lanes must be >= 1")
        if self.max_retries < 0:
            raise ConfigError("max_retries must be non-negative")
        if self.retry_backoff <= 0:
            raise ConfigError("retry_backoff must be positive")


class TokenBucket:
    """Lazily refilled token bucket; rate/burst shared via the config."""

    __slots__ = ("tokens", "refilled_at")

    def __init__(self, burst: float, now: float) -> None:
        self.tokens = burst
        self.refilled_at = now

    def refill(self, now: float, rate: float, burst: float) -> None:
        elapsed = now - self.refilled_at
        if elapsed > 0:
            self.tokens = min(burst, self.tokens + elapsed * rate)
            self.refilled_at = now


@dataclass(frozen=True)
class AdmissionDecision:
    """What the gateway told the client, loudly."""

    admitted: bool
    reason: str | None = None
    retry_after: float | None = None
    will_retry: bool = False


class Gateway:
    """Deterministic request-admission front door on a virtual clock.

    ``sink(batch)`` is called whenever a batch releases — in system
    integration that forwards each transaction into the architecture's
    ingest path; standalone tests pass a collector. ``on_shed(tx,
    reason)`` fires exactly once per finally-shed transaction, after
    retries (if any) are exhausted.
    """

    def __init__(
        self,
        sim,
        config: GatewayConfig,
        sink: Callable[[list[Transaction]], None],
        ledger: LatencyLedger | None = None,
        membership=None,
        on_shed: Callable[[Transaction, str], None] | None = None,
    ) -> None:
        self.sim = sim
        self.config = config
        self.ledger = ledger if ledger is not None else LatencyLedger()
        self._sink = sink
        self._membership = membership
        self._on_shed = on_shed
        self._buckets: dict[str, TokenBucket] = {}
        self._queue: list[Transaction] = []  # admitted, awaiting a batch
        self._in_admission = 0  # admitted, still paying admit_cost
        self._in_flight = 0  # admitted, unresolved in the system
        self._admitted_ids: set[str] = set()
        self._batch_timer = None
        self._admission = ExecutionPipeline(depth=config.admission_lanes)
        # Telemetry (the queue-bound invariant tests read these).
        self.counters = {
            "arrivals": 0,
            "admitted": 0,
            "batches": 0,
            "retries": 0,
            "shed.bad-signature": 0,
            "shed.rate-limited": 0,
            "shed.queue-full": 0,
            "shed.overloaded": 0,
        }
        self.max_queued_seen = 0
        self.max_in_flight_seen = 0

    # -- client API ---------------------------------------------------------

    def submit(
        self,
        tx: Transaction,
        signature: bytes | None = None,
        _retries_left: int | None = None,
    ) -> AdmissionDecision:
        """One submission attempt at ``sim.now``; sheds loudly or admits."""
        now = self.sim.now
        first_attempt = _retries_left is None
        if first_attempt:
            self.counters["arrivals"] += 1
            self.ledger.submitted(tx.tx_id, tx.submitter, now)
            _retries_left = self.config.max_retries

        if self.config.verify_signatures and self._membership is not None:
            if signature is None or not self._membership.verify(
                tx.submitter, tx.digest().encode(), signature
            ):
                return self._shed(tx, "bad-signature", None, 0, signature)

        bucket = self._buckets.get(tx.submitter)
        if bucket is None:
            bucket = self._buckets[tx.submitter] = TokenBucket(
                self.config.burst, now
            )
        else:
            bucket.refill(now, self.config.rate, self.config.burst)
        if bucket.tokens < 1.0:
            retry_after = (1.0 - bucket.tokens) / self.config.rate
            return self._shed(
                tx, "rate-limited", retry_after, _retries_left, signature
            )

        pending = len(self._queue) + self._in_admission
        if pending >= self.config.queue_capacity:
            return self._shed(
                tx, "queue-full", self.config.batch_interval,
                _retries_left, signature,
            )
        if self._in_flight >= self.config.max_in_flight:
            return self._shed(
                tx, "overloaded", self.config.batch_interval,
                _retries_left, signature,
            )

        # Admitted: consume the token and book admission-lane time; the
        # transaction joins the batch queue when its admission work is
        # done (stamped then — admit latency includes lane queueing).
        bucket.tokens -= 1.0
        self.counters["admitted"] += 1
        self._admitted_ids.add(tx.tx_id)
        self._in_flight += 1
        self._in_admission += 1
        if self._in_flight > self.max_in_flight_seen:
            self.max_in_flight_seen = self._in_flight
        ready_at = self._admission.claim(now, self.config.admit_cost)
        self.sim.schedule_at(ready_at, self._enqueue_admitted, tx)
        return AdmissionDecision(admitted=True)

    def resolve(self, tx_id: str) -> None:
        """The system reached a terminal state for an admitted tx —
        release its slot in the in-flight window."""
        if tx_id in self._admitted_ids:
            self._admitted_ids.discard(tx_id)
            self._in_flight -= 1

    # -- shedding / retry ---------------------------------------------------

    def _shed(
        self,
        tx: Transaction,
        reason: str,
        retry_after: float | None,
        retries_left: int,
        signature: bytes | None,
    ) -> AdmissionDecision:
        if reason in RETRYABLE_REASONS and retries_left > 0:
            delay = max(self.config.retry_backoff, retry_after or 0.0)
            self.counters["retries"] += 1
            self.ledger.retried(tx.tx_id)
            self.sim.schedule(
                delay, self.submit, tx, signature, retries_left - 1
            )
            return AdmissionDecision(
                admitted=False, reason=reason,
                retry_after=retry_after, will_retry=True,
            )
        self.counters[f"shed.{reason}"] += 1
        self.ledger.shed(tx.tx_id, reason, self.sim.now)
        if self._on_shed is not None:
            self._on_shed(tx, reason)
        return AdmissionDecision(
            admitted=False, reason=reason, retry_after=retry_after
        )

    # -- batcher ------------------------------------------------------------

    def _enqueue_admitted(self, tx: Transaction) -> None:
        self._in_admission -= 1
        self.ledger.admitted(tx.tx_id, self.sim.now)
        self._queue.append(tx)
        if len(self._queue) > self.max_queued_seen:
            self.max_queued_seen = len(self._queue)
        if len(self._queue) >= self.config.batch_size:
            self._release_batch()
        elif self._batch_timer is None:
            self._batch_timer = self.sim.schedule(
                self.config.batch_interval, self._release_partial
            )

    def _release_partial(self) -> None:
        self._batch_timer = None
        if self._queue:
            self._release_batch()

    def _release_batch(self) -> None:
        batch, self._queue = (
            self._queue[: self.config.batch_size],
            self._queue[self.config.batch_size:],
        )
        if self._batch_timer is not None:
            self._batch_timer.cancel()
            self._batch_timer = None
        if self._queue:
            self._batch_timer = self.sim.schedule(
                self.config.batch_interval, self._release_partial
            )
        self.counters["batches"] += 1
        self._sink(batch)

    def flush(self) -> None:
        """Release any partial batch immediately (end-of-run drain)."""
        if self._queue:
            self._release_batch()

    # -- telemetry ----------------------------------------------------------

    @property
    def queued(self) -> int:
        return len(self._queue) + self._in_admission

    @property
    def in_flight(self) -> int:
        return self._in_flight

    def shed_counts(self) -> dict[str, int]:
        return {
            reason: self.counters[f"shed.{reason}"]
            for reason in SHED_REASONS
        }
