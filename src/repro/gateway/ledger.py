"""The per-transaction latency ledger behind the E22 experiments.

End-to-end latency methodology (Geyer et al., arXiv:2311.15433): every
client request is stamped at each pipeline stage — **submit** (the open
loop fires it at the gateway), **admit** (the gateway accepts it past
signature check, rate limit and queue bounds), **order** (the block
holding it is totally ordered by consensus), **commit** (its effects are
final on the peer) — and the report derives p50/p95/p99 latency and
goodput from the stamp deltas instead of trusting any single counter.

Every transaction reaches exactly one terminal status, loudly:

* ``committed`` — full path, carries all four stamps.
* ``aborted`` — admitted but rejected by the *system* (e.g. an MVCC
  conflict in the XOV family); carries the system's abort reason.
* ``shed`` — rejected by the *gateway* with an explicit reason
  (``bad-signature`` / ``rate-limited`` / ``queue-full`` /
  ``overloaded``); never entered the system.
* ``timeout`` — admitted but unresolved when the run's horizon closed
  (e.g. its block was stranded by a crash fault).

:meth:`LatencyLedger.finalize` converts every leftover into ``timeout``,
so "silently lost" is structurally impossible — the DST invariant for
the gateway target audits exactly this accounting.

The ledger is deterministic: stamps come off the virtual clock, ids off
the workload's deterministic naming, and :meth:`LatencyLedger.fingerprint`
hashes the canonical JSON — same-seed runs (serial or forked-parallel)
must produce byte-identical ledgers.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Iterator

from repro.common.errors import ConfigError
from repro.common.metrics import LatencyRecorder

#: Terminal statuses a trace may reach (exactly one, exactly once).
TERMINAL_STATUSES = ("committed", "aborted", "shed", "timeout")

#: Stamps are rounded to this many decimals in serialized ledgers so the
#: canonical JSON stays readable; 9 decimals ≈ nanosecond resolution,
#: far below any modelled delay, so rounding never merges two stamps.
STAMP_DECIMALS = 9


def _stamp(value: float) -> float:
    return round(float(value), STAMP_DECIMALS)


class TxTrace:
    """Lifecycle stamps of one transaction through the front door."""

    __slots__ = (
        "tx_id", "client", "submit", "admit", "order", "commit",
        "status", "reason", "attempts",
    )

    def __init__(self, tx_id: str, client: str, submit: float) -> None:
        self.tx_id = tx_id
        self.client = client
        self.submit = submit
        self.admit: float | None = None
        self.order: float | None = None
        self.commit: float | None = None
        self.status = "pending"
        self.reason: str | None = None
        self.attempts = 1

    @property
    def terminal(self) -> bool:
        return self.status in TERMINAL_STATUSES

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "tx_id": self.tx_id,
            "client": self.client,
            "submit": _stamp(self.submit),
            "status": self.status,
        }
        for name in ("admit", "order", "commit"):
            value = getattr(self, name)
            if value is not None:
                out[name] = _stamp(value)
        if self.reason is not None:
            out["reason"] = self.reason
        if self.attempts != 1:
            out["attempts"] = self.attempts
        return out


@dataclass
class LatencyReport:
    """Percentiles + goodput summary derived from one ledger."""

    arrivals: int = 0
    admitted: int = 0
    committed: int = 0
    aborted: int = 0
    timeouts: int = 0
    sheds: dict[str, int] = field(default_factory=dict)
    duration: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    mean: float = 0.0
    admit_p99: float = 0.0
    goodput_tps: float = 0.0

    @property
    def shed_total(self) -> int:
        return sum(self.sheds.values())

    def to_row(self) -> dict[str, Any]:
        return {
            "arrivals": self.arrivals,
            "admitted": self.admitted,
            "committed": self.committed,
            "aborted": self.aborted,
            "shed": self.shed_total,
            "timeouts": self.timeouts,
            "goodput_tps": round(self.goodput_tps, 2),
            "p50_latency": round(self.p50, 5),
            "p95_latency": round(self.p95, 5),
            "p99_latency": round(self.p99, 5),
        }

    def to_jsonable(self) -> dict[str, Any]:
        out = self.to_row()
        out["mean_latency"] = round(self.mean, 6)
        out["admit_p99"] = round(self.admit_p99, 6)
        out["duration"] = round(self.duration, 6)
        out["sheds"] = dict(sorted(self.sheds.items()))
        return out


class LatencyLedger:
    """Append-mostly registry of :class:`TxTrace` records.

    The gateway owns the ``submit``/``admit``/``shed`` transitions; the
    system integration (``repro.gateway.run``) owns ``order``/``commit``/
    ``abort``; :meth:`finalize` closes whatever is left as ``timeout``.
    Double terminal transitions raise — an accounting bug should fail
    the run, not skew a percentile.
    """

    def __init__(self) -> None:
        self._traces: dict[str, TxTrace] = {}

    def __len__(self) -> int:
        return len(self._traces)

    def __iter__(self) -> Iterator[TxTrace]:
        return iter(self._traces.values())

    def trace(self, tx_id: str) -> TxTrace:
        return self._traces[tx_id]

    # -- gateway-side transitions ------------------------------------------

    def submitted(self, tx_id: str, client: str, now: float) -> TxTrace:
        if tx_id in self._traces:
            raise ConfigError(f"duplicate ledger submit for {tx_id}")
        trace = TxTrace(tx_id, client, now)
        self._traces[tx_id] = trace
        return trace

    def retried(self, tx_id: str) -> None:
        self._traces[tx_id].attempts += 1

    def admitted(self, tx_id: str, now: float) -> None:
        trace = self._traces[tx_id]
        if trace.terminal:
            raise ConfigError(f"admit after terminal state for {tx_id}")
        trace.admit = now
        trace.status = "admitted"

    def shed(self, tx_id: str, reason: str, now: float) -> None:
        trace = self._traces[tx_id]
        if trace.terminal:
            raise ConfigError(f"shed after terminal state for {tx_id}")
        trace.status = "shed"
        trace.reason = reason

    # -- system-side transitions -------------------------------------------

    def ordered(self, tx_id: str, now: float) -> None:
        trace = self._traces.get(tx_id)
        if trace is not None and trace.order is None and not trace.terminal:
            trace.order = now

    def committed(self, tx_id: str, now: float) -> None:
        trace = self._traces[tx_id]
        if trace.terminal:
            raise ConfigError(f"commit after terminal state for {tx_id}")
        trace.commit = now
        trace.status = "committed"

    def aborted(self, tx_id: str, reason: str, now: float) -> None:
        trace = self._traces[tx_id]
        if trace.terminal:
            raise ConfigError(f"abort after terminal state for {tx_id}")
        trace.status = "aborted"
        trace.reason = reason

    def finalize(self, now: float) -> int:
        """Close every non-terminal trace as ``timeout``; returns how
        many were closed. After this, every trace is terminal."""
        closed = 0
        for trace in self._traces.values():
            if not trace.terminal:
                trace.status = "timeout"
                trace.reason = trace.reason or "horizon"
                closed += 1
        return closed

    # -- reporting ----------------------------------------------------------

    def report(self) -> LatencyReport:
        report = LatencyReport(arrivals=len(self._traces))
        end_to_end = LatencyRecorder()
        admit_lat = LatencyRecorder()
        first_submit, last_event = None, 0.0
        for trace in self._traces.values():
            if first_submit is None or trace.submit < first_submit:
                first_submit = trace.submit
            last_event = max(last_event, trace.submit)
            if trace.admit is not None:
                report.admitted += 1
                admit_lat.record(max(0.0, trace.admit - trace.submit))
                last_event = max(last_event, trace.admit)
            if trace.status == "committed":
                report.committed += 1
                end_to_end.record(max(0.0, trace.commit - trace.submit))
                last_event = max(last_event, trace.commit)
            elif trace.status == "aborted":
                report.aborted += 1
            elif trace.status == "shed":
                reason = trace.reason or "unknown"
                report.sheds[reason] = report.sheds.get(reason, 0) + 1
            elif trace.status == "timeout":
                report.timeouts += 1
        report.duration = (
            last_event - first_submit if first_submit is not None else 0.0
        )
        if end_to_end:
            report.p50 = end_to_end.percentile(50)
            report.p95 = end_to_end.percentile(95)
            report.p99 = end_to_end.percentile(99)
            report.mean = end_to_end.mean()
        if admit_lat:
            report.admit_p99 = admit_lat.percentile(99)
        if report.duration > 0:
            report.goodput_tps = report.committed / report.duration
        return report

    def to_jsonable(self) -> list[dict[str, Any]]:
        """Canonical serialization: traces in submit order (ties broken
        by tx_id), every float rounded to :data:`STAMP_DECIMALS`."""
        return [
            trace.to_dict()
            for trace in sorted(
                self._traces.values(), key=lambda t: (t.submit, t.tx_id)
            )
        ]

    def fingerprint(self) -> str:
        """SHA-256 over the canonical JSON — the byte-identity gate."""
        canonical = json.dumps(
            self.to_jsonable(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode()).hexdigest()
